//! Quickstart: embed a small mesh of nodes with the sans-I/O `StableNode`
//! engine, compare the estimated round-trip times against the ground truth,
//! and demonstrate snapshot/restore mid-run.
//!
//! Every observation travels the way it would in a deployment: the prober
//! builds a `ProbeRequest`, the probed node answers it with `respond`, the
//! "network" (here: the trace generator) supplies the measured RTT, and the
//! prober digests the stamped `ProbeResponse` into a stream of typed
//! `Event`s.
//!
//! Run with: `cargo run --release --example quickstart`

use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::trace::{TraceConfig, TraceGenerator};
use stable_network_coordinates::{Event, NodeConfig, StableNode, WireMessage};

fn main() {
    // A 16-node synthetic wide-area network (heavy-tailed observations and
    // all) and one StableNode per host, using the paper's default stack:
    // MP filter (h=4, p=25) -> Vivaldi (3-D) -> ENERGY application updates.
    let network = PlanetLabConfig::small(16).with_seed(7);
    let mut generator = TraceGenerator::new(TraceConfig::new(network, 1_800.0, 1.0));
    let node_count = generator.topology().len();
    let mut nodes: Vec<StableNode<usize>> = (0..node_count)
        .map(|_| StableNode::new(NodeConfig::paper_defaults()))
        .collect();

    // Feed the ping trace through the wire protocol: each record becomes one
    // request/response exchange, timed by the trace. Every ~33rd probe is
    // "lost in the network" — the prober never hears back, its pending-probe
    // entry expires on the next tick, and the engine reports a typed
    // ProbeLost event instead of stalling the round-robin schedule.
    let mut app_updates_node0 = 0u64;
    let mut probes_lost = 0u64;
    let mut snapshot_blob: Option<String> = None;
    for (index, record) in generator.generate().into_iter().enumerate() {
        let now_ms = (record.time_s * 1_000.0) as u64;
        let request = nodes[record.src].probe_request_for(record.dst, now_ms);
        if index % 33 == 17 {
            // Dropped probe: expire everything older than a 10 s timeout,
            // exactly as a daemon's timer tick would.
            probes_lost += nodes[record.src]
                .expire_pending(now_ms.saturating_add(10_000), 10_000)
                .iter()
                .filter(|e| matches!(e, Event::ProbeLost { .. }))
                .count() as u64;
            continue;
        }
        let mut response = nodes[record.dst].respond(&request);
        response.rtt_ms = record.rtt_ms; // the driver measures the round trip
        let events = nodes[record.src].handle_response(&response);
        if record.src == 0 {
            app_updates_node0 += events
                .iter()
                .filter(|e| matches!(e, Event::ApplicationUpdated { .. }))
                .count() as u64;
        }

        // Halfway through the run, persist node 0 exactly as a daemon would
        // before a restart.
        if snapshot_blob.is_none() && record.time_s >= 900.0 {
            snapshot_blob = Some(nodes[0].snapshot().encode());
        }
    }

    println!("pair        true RTT    estimated    relative error");
    println!("----------------------------------------------------");
    let mut total_err = 0.0;
    let mut pairs = 0;
    for a in 0..node_count {
        for b in (a + 1)..node_count.min(a + 4) {
            let truth = generator.topology().base_rtt_ms(a, b);
            let estimate = nodes[a].estimate_rtt_ms(nodes[b].system_coordinate());
            let err = (estimate - truth).abs() / truth;
            total_err += err;
            pairs += 1;
            println!("{a:2} <-> {b:2}   {truth:8.1} ms  {estimate:8.1} ms   {err:8.2}");
        }
    }
    println!(
        "\nmean relative error over {pairs} sampled pairs: {:.3}",
        total_err / pairs as f64
    );
    println!(
        "node 0 published {} application-level updates for {} observations",
        app_updates_node0,
        nodes[0].view().observations
    );
    println!("{probes_lost} probes were dropped by the network and expired as ProbeLost");

    // Restore the mid-run snapshot into a fresh engine: the revived node
    // carries the exact coordinate, filter windows and probe schedule the
    // original had at persist time.
    let blob = snapshot_blob.expect("run is longer than the snapshot point");
    let snapshot = stable_network_coordinates::NodeSnapshot::<usize>::decode(&blob)
        .expect("snapshot decodes under the same protocol version");
    let restored = StableNode::restore(NodeConfig::paper_defaults(), &snapshot)
        .expect("same configuration restores");
    println!(
        "\nsnapshot taken at t=900s: {} bytes of JSON, {} neighbours, revived at {}",
        blob.len(),
        snapshot.neighbor_count(),
        restored.system_coordinate()
    );
}
