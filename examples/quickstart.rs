//! Quickstart: embed a small mesh of nodes with `StableNode` and compare the
//! estimated round-trip times against the ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::trace::{TraceConfig, TraceGenerator};
use stable_nc::{NodeConfig, StableNode};

fn main() {
    // A 16-node synthetic wide-area network (heavy-tailed observations and
    // all) and one StableNode per host, using the paper's default stack:
    // MP filter (h=4, p=25) -> Vivaldi (3-D) -> ENERGY application updates.
    let network = PlanetLabConfig::small(16).with_seed(7);
    let mut generator = TraceGenerator::new(TraceConfig::new(network, 1_800.0, 1.0));
    let node_count = generator.topology().len();
    let mut nodes: Vec<StableNode<usize>> = (0..node_count)
        .map(|_| StableNode::new(NodeConfig::paper_defaults()))
        .collect();

    // Feed the ping trace: each node probes its peers round-robin once per
    // second for half an hour of simulated time.
    for record in generator.generate() {
        let (remote_coord, remote_error) = {
            let remote = &nodes[record.dst];
            (remote.system_coordinate().clone(), remote.error_estimate())
        };
        nodes[record.src].observe(record.dst, remote_coord, remote_error, record.rtt_ms);
    }

    println!("pair        true RTT    estimated    relative error");
    println!("----------------------------------------------------");
    let mut total_err = 0.0;
    let mut pairs = 0;
    for a in 0..node_count {
        for b in (a + 1)..node_count.min(a + 4) {
            let truth = generator.topology().base_rtt_ms(a, b);
            let estimate = nodes[a].estimate_rtt_ms(nodes[b].system_coordinate());
            let err = (estimate - truth).abs() / truth;
            total_err += err;
            pairs += 1;
            println!("{a:2} <-> {b:2}   {truth:8.1} ms  {estimate:8.1} ms   {err:8.2}");
        }
    }
    println!("\nmean relative error over {pairs} sampled pairs: {:.3}", total_err / pairs as f64);
    println!(
        "node 0 published {} application-level updates for {} observations",
        nodes[0].application_update_count(),
        nodes[0].observations()
    );
}
