//! A five-node UDP cluster on loopback, behind the delay-injecting harness.
//!
//! Run with `cargo run --example udp_cluster`. Five real node runtimes
//! (real sockets, real threads, binary datagrams) measure each other across
//! an emulated network — per-link delays, jitter, 3% loss, 3% duplication —
//! converge to the emulated round trips, and one node is killed and
//! restarted from its persisted snapshot to show that it rejoins with its
//! coordinate intact. For one-node-per-process deployments, see the
//! `nc-node` binary (`cargo run -p nc-transport --bin nc-node -- --help`).

use std::net::UdpSocket;
use std::time::Duration;

use nc_transport::{DelayHarness, LinkSpec, NodeRuntime, RuntimeConfig};
use stable_nc::NodeConfig;

const NODES: usize = 5;

/// Node positions on a plane (milliseconds): the emulated RTT of a pair is
/// their euclidean distance.
const POSITIONS: [(f64, f64); NODES] = [
    (0.0, 0.0),
    (30.0, 0.0),
    (0.0, 40.0),
    (60.0, 45.0),
    (25.0, 70.0),
];

fn planar_rtt(a: usize, b: usize) -> f64 {
    let (ax, ay) = POSITIONS[a];
    let (bx, by) = POSITIONS[b];
    ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
}

fn main() -> std::io::Result<()> {
    // Bind the real sockets first: the harness needs their addresses.
    let sockets: Vec<UdpSocket> = (0..NODES)
        .map(|_| UdpSocket::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    let real_addrs: Vec<_> = sockets
        .iter()
        .map(|socket| socket.local_addr())
        .collect::<std::io::Result<_>>()?;

    let mut builder = DelayHarness::builder(NODES).seed(7);
    for a in 0..NODES {
        for b in (a + 1)..NODES {
            builder = builder.link(
                a,
                b,
                LinkSpec::from_rtt(planar_rtt(a, b))
                    .with_jitter(1.0)
                    .with_loss(0.03)
                    .with_duplication(0.03),
            );
        }
    }
    let harness = builder.start(&real_addrs)?;

    let snapshot_dir = std::env::temp_dir().join(format!("nc-udp-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&snapshot_dir)?;
    let config_for = |index: usize| RuntimeConfig {
        node: NodeConfig::paper_defaults(),
        seeds: (0..NODES)
            .filter(|&peer| peer != index)
            .map(|peer| harness.public_addr(peer))
            .collect(),
        advertised_addr: Some(harness.public_addr(index)),
        probe_interval_ms: 5,
        probe_timeout_ms: 500,
        stats_interval_ms: 0,
        snapshot_path: Some(snapshot_dir.join(format!("node-{index}.snapshot"))),
    };

    println!("starting {NODES} nodes behind the delay harness ...");
    let mut runtimes: Vec<NodeRuntime> = Vec::new();
    for (index, socket) in sockets.into_iter().enumerate() {
        runtimes.push(NodeRuntime::start(socket, config_for(index))?);
    }

    println!("converging for 4 s of real probing (3% loss, 3% duplication) ...");
    std::thread::sleep(Duration::from_secs(4));

    let coordinates: Vec<_> = runtimes.iter().map(|r| r.coordinate().0).collect();
    println!("\n  pair   emulated   estimated    error");
    for a in 0..NODES {
        for b in (a + 1)..NODES {
            let actual = harness.emulated_rtt_ms(a, b);
            let estimated = coordinates[a].distance(&coordinates[b]);
            println!(
                "  {a} ↔ {b}   {actual:6.1} ms  {estimated:6.1} ms  {:5.1}%",
                100.0 * (estimated - actual).abs() / actual
            );
        }
    }
    let ignored: u64 = runtimes.iter().map(|r| r.stats().responses_ignored).sum();
    println!(
        "\nharness: {} datagrams forwarded, {} dropped, {} duplicated; \
         engines ignored {ignored} uncorrelated replies",
        harness.forwarded(),
        harness.dropped(),
        harness.duplicated()
    );

    // Kill node 0 and restart it from its snapshot on a fresh socket.
    println!("\nkilling node 0 and restarting it from its snapshot ...");
    let node0 = runtimes.remove(0);
    let snapshot = node0.shutdown()?;
    let parked = snapshot.system_coordinate().clone();
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    harness.update_real_addr(0, socket.local_addr()?);
    let node0 = NodeRuntime::start(socket, config_for(0))?;
    let (restored, _) = node0.coordinate();
    println!(
        "  snapshot coordinate:  {:?}\n  restored coordinate:  {:?}  ({:.2} ms apart)",
        parked.components(),
        restored.components(),
        restored.distance(&parked)
    );
    std::thread::sleep(Duration::from_millis(500));
    let stats = node0.stats();
    println!(
        "  after 500 ms back in the overlay: sent={} recv={} — rejoined without resetting",
        stats.probes_sent, stats.responses_received
    );

    node0.shutdown()?;
    for runtime in runtimes {
        runtime.shutdown()?;
    }
    std::fs::remove_dir_all(&snapshot_dir).ok();
    Ok(())
}
