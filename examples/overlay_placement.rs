//! Overlay operator placement driven by application-level coordinates — the
//! paper's motivating application.
//!
//! The authors built network coordinates for a stream-based overlay network
//! in which a coordinate change can "initiate a cascade of events,
//! culminating in one or more heavyweight process migrations". This example
//! models that consumer: an overlay that keeps each client attached to its
//! nearest service replica *according to the coordinates it is given*, and
//! migrates the attachment whenever the coordinates say another replica is
//! closer.
//!
//! Feeding the overlay raw (system-level) coordinates causes constant
//! re-evaluation and many spurious migrations; feeding it application-level
//! coordinates (ENERGY heuristic) produces almost the same final attachments
//! with a fraction of the churn.
//!
//! The coordinate layer below runs entirely through the sans-I/O engine: the
//! simulator exchanges `ProbeRequest`/`ProbeResponse` messages between nodes
//! and folds the engines' `Event` streams into the tracked trajectories this
//! example replays. In a deployment the overlay would subscribe to
//! `Event::ApplicationUpdated` instead of polling coordinates.
//!
//! Run with: `cargo run --release --example overlay_placement`

use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::Scenario;
use nc_netsim::sim::{SimConfig, Simulator};
use nc_vivaldi::Coordinate;
use stable_nc::NodeConfig;

/// Picks the closest replica (by coordinate distance) for every client.
fn attachments(client_coords: &[Coordinate], replica_coords: &[(usize, Coordinate)]) -> Vec<usize> {
    client_coords
        .iter()
        .map(|client| {
            replica_coords
                .iter()
                .min_by(|(_, a), (_, b)| {
                    client
                        .distance(a)
                        .partial_cmp(&client.distance(b))
                        .expect("distances are finite")
                })
                .map(|(id, _)| *id)
                .expect("at least one replica")
        })
        .collect()
}

fn main() {
    // Simulate the coordinate layer: 24 nodes, the first 4 of which host
    // service replicas. Two stacks run on identical observation streams so
    // the comparison is apples-to-apples.
    let workload = PlanetLabConfig::small(24).with_seed(11);
    let node_count = workload.node_count();
    let replicas: Vec<usize> = (0..4).collect();
    let tracked: Vec<usize> = (0..node_count).collect();
    let sim_config = SimConfig::new(3_000.0, 5.0)
        .with_measurement_start(600.0)
        .with_tracked_nodes(tracked, 30.0);
    let configs = vec![
        (
            "application-level (ENERGY)".to_string(),
            NodeConfig::paper_defaults(),
        ),
        (
            "system-level (raw coordinates)".to_string(),
            NodeConfig::builder()
                .heuristic(stable_nc::HeuristicConfig::FollowSystem)
                .build(),
        ),
    ];
    // Mid-run churn: one replica host crashes for five minutes and restarts
    // from the snapshot taken at the instant it died — the overlay must ride
    // through the outage without a migration storm when it follows
    // application-level coordinates.
    let scenario = Scenario::crash_restart(vec![3], 1_500.0, 1_800.0);

    println!(
        "simulating the coordinate layer for 24 overlay nodes (4 replicas);\n\
         replica 3 crashes at t=1500s and restarts from its snapshot at t=1800s ...\n"
    );
    let report = Simulator::new(workload, sim_config, configs)
        .with_scenario(scenario)
        .run();

    for (name, metrics) in report.iter() {
        // Replay the tracked coordinate snapshots: at every snapshot the
        // overlay re-evaluates each client's nearest replica and migrates it
        // if the answer changed.
        let mut times: Vec<f64> = metrics.tracked.iter().map(|t| t.time_s).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times.dedup();

        let mut migrations = 0usize;
        let mut previous: Option<Vec<usize>> = None;
        let mut final_assignment: Vec<usize> = Vec::new();
        for &t in &times {
            let snapshot: Vec<Option<&nc_netsim::metrics::TrackedCoordinate>> = (0..node_count)
                .map(|node| {
                    metrics
                        .tracked
                        .iter()
                        .find(|c| c.node == node && c.time_s == t)
                })
                .collect();
            if snapshot.iter().any(|s| s.is_none()) {
                continue;
            }
            let coords: Vec<Coordinate> = snapshot
                .iter()
                .map(|s| s.expect("checked above").application.clone())
                .collect();
            let replica_coords: Vec<(usize, Coordinate)> =
                replicas.iter().map(|&r| (r, coords[r].clone())).collect();
            let assignment = attachments(&coords, &replica_coords);
            if let Some(prev) = &previous {
                migrations += assignment
                    .iter()
                    .zip(prev.iter())
                    .filter(|(a, b)| a != b)
                    .count();
            }
            final_assignment = assignment.clone();
            previous = Some(assignment);
        }

        let attached_to_first = final_assignment.iter().filter(|&&r| r == 0).count();
        println!(
            "{name}:\n  client->replica migrations over the run: {migrations}\n  \
             final attachment spread: {attached_to_first}/{} clients on replica 0\n  \
             application-level coordinate updates per node-second: {:.4}\n",
            node_count,
            metrics.application_updates_per_node_second()
        );
    }
    println!(
        "application-level coordinates give the overlay the same placements with far fewer migrations."
    );
}
