//! PlanetLab-style comparison: the full paper stack versus the original
//! Vivaldi on identical observation streams.
//!
//! This is a compact version of the paper's §VI deployment experiment
//! (Figure 13): two coordinate systems run side by side on the same synthetic
//! PlanetLab workload and the accuracy/stability metrics are printed for the
//! second half of the run.
//!
//! The simulator drives every node through the sans-I/O engine API — each
//! probe is a `ProbeRequest`/`ProbeResponse` exchange delivered through the
//! discrete-event queue (probes spend half the RTT in flight each way), and
//! the metrics are folded from the engine's `Event` stream, so this doubles
//! as an end-to-end exercise of the wire protocol at 32-node scale. Links
//! drop 2% of packets per direction, the way a real PlanetLab mesh would;
//! the lost probes time out, surface as `Event::ProbeLost` and are counted
//! in the report without ever stalling the probe schedule.
//!
//! Run with: `cargo run --release --example planetlab_sim`

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::NodeConfig;

fn main() {
    let workload = PlanetLabConfig::small(32)
        .with_seed(20050624)
        .with_link_config(LinkModelConfig::default().with_loss_probability(0.02));
    let sim_config = SimConfig::new(3_600.0, 5.0).with_measurement_start(1_800.0);
    let configs = vec![
        (
            "enhanced (MP filter + ENERGY)".to_string(),
            NodeConfig::paper_defaults(),
        ),
        (
            "original Vivaldi (raw, no suppression)".to_string(),
            NodeConfig::original_vivaldi(),
        ),
    ];

    println!("simulating 32 nodes for one hour (measurement: second half) ...");
    let report = Simulator::new(workload, sim_config, configs).run();

    println!(
        "\n{:44} {:>18} {:>18} {:>14} {:>12}",
        "configuration", "median rel. error", "95th pct rel. err", "instability", "probes lost"
    );
    println!("{}", "-".repeat(111));
    for (name, metrics) in report.iter() {
        println!(
            "{:44} {:>18.3} {:>18.3} {:>11.1} ms/s {:>12}",
            name,
            metrics.median_of_application_median_relative_error(),
            metrics.median_of_application_p95_relative_error(),
            metrics.aggregate_application_instability(),
            metrics.total_probes_lost(),
        );
    }

    let enhanced = report.config("enhanced (MP filter + ENERGY)").unwrap();
    let original = report
        .config("original Vivaldi (raw, no suppression)")
        .unwrap();
    let error_reduction = (1.0
        - enhanced.median_of_application_p95_relative_error()
            / original.median_of_application_p95_relative_error())
        * 100.0;
    let stability_reduction = (1.0
        - enhanced.aggregate_application_instability()
            / original.aggregate_application_instability())
        * 100.0;
    println!(
        "\nenhancements reduce the median 95th-percentile relative error by {error_reduction:.0}% \
         and instability by {stability_reduction:.0}% (paper: 54% and 96%)"
    );
}
