//! Confidence building on a low-latency cluster (the paper's §IV-B / Figure 6
//! scenario).
//!
//! Three nodes on the same rack measure each other once per second. Because
//! the real latency (~1 ms) is at the resolution of the measurement software,
//! ordinary Vivaldi never becomes confident; allowing a small
//! measurement-error margin fixes that.
//!
//! This example deliberately drives the bare `VivaldiState` layer — the
//! substrate *below* the sans-I/O `StableNode` engine — to isolate the
//! confidence-building mechanism from filtering and change detection.
//!
//! Run with: `cargo run --release --example cluster_confidence`

use nc_netsim::cluster::ClusterModel;
use nc_vivaldi::{RemoteObservation, VivaldiConfig, VivaldiState};

fn run_cluster(margin_ms: Option<f64>, seed: u64) -> Vec<f64> {
    let config = VivaldiConfig::paper_defaults().with_confidence_building(margin_ms);
    let mut nodes: Vec<VivaldiState> = (0..3)
        .map(|i| VivaldiState::new(config.clone().with_seed(seed + i)))
        .collect();
    let mut model = ClusterModel::paper_cluster(seed);
    let mut confidence = Vec::new();
    for second in 0..600 {
        for i in 0..3 {
            let j = (i + 1 + second % 2) % 3;
            let rtt = model.sample();
            let obs = RemoteObservation::new(
                nodes[j].coordinate().clone(),
                nodes[j].error_estimate(),
                rtt,
            );
            nodes[i].observe(&obs);
        }
        confidence.push(nodes[0].confidence());
    }
    confidence
}

fn main() {
    println!("three-node cluster, one probe per second, ten minutes\n");
    let with_margin = run_cluster(Some(3.0), 42);
    let without_margin = run_cluster(None, 42);

    println!("minute   confidence (with 3 ms margin)   confidence (without)");
    println!("--------------------------------------------------------------");
    for minute in 0..10 {
        let idx = (minute * 60 + 59).min(with_margin.len() - 1);
        println!(
            "{:6}   {:29.3}   {:20.3}",
            minute + 1,
            with_margin[idx],
            without_margin[idx]
        );
    }

    let mean = |v: &[f64]| v[v.len() / 2..].iter().sum::<f64>() / (v.len() - v.len() / 2) as f64;
    println!(
        "\nsteady-state confidence: {:.3} with confidence building, {:.3} without \
         (the paper reports ~1.0 vs ~0.75)",
        mean(&with_margin),
        mean(&without_margin)
    );
}
