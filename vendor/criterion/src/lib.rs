//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Compiles the workspace's benches unchanged and, when run via
//! `cargo bench`, executes each benchmark body a small number of times and
//! prints a coarse mean wall-clock time. It performs no statistical
//! analysis, outlier rejection or HTML reporting — it exists so that the
//! benchmark targets stay buildable and runnable without network access to
//! the real crate.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so `black_box` can be imported from either location.
pub use std::hint::black_box;

/// How batched inputs are grouped between setup calls. The stand-in runs one
/// setup per iteration regardless, so the variants only exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// The benchmark driver handed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Number of samples per benchmark (coarse; default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            // An unset sample size (the `Default` construction) measures five
            // times; an explicit `sample_size(n)` is honoured exactly, so
            // heavyweight macro-benches can opt into fewer iterations.
            iters: if self.sample_size == 0 {
                5
            } else {
                self.sample_size
            },
        };
        f(&mut bencher);
        bencher.report(&id);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks sharing coarse configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stand-in ignores measurement time.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in ignores warm-up time.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Times the closure a benchmark hands it.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Runs `routine` over fresh inputs produced by `setup`, timing only the
    /// routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<60} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{id:<60} mean {mean:>12.3?} over {} samples",
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
