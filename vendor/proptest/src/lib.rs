//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: the [`proptest!`]
//! macro, `prop_assert!` / `prop_assert_eq!`, range and collection
//! [`Strategy`](strategy::Strategy)s and `prop_map`. Each property runs a fixed number of
//! deterministic random cases (no shrinking — a failing case panics with the
//! generated inputs visible in the assertion message).

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Number of random cases each property is exercised with.
pub const CASES: u32 = 64;

/// Re-exports that `use proptest::prelude::*;` is expected to provide.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Strategies: descriptions of how to generate random values of a type.
pub mod strategy {
    use super::*;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Sizes accepted by [`vec()`]: a fixed length or a range of lengths.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        length: L,
    }

    /// Builds a strategy for vectors whose elements come from `element` and
    /// whose length is drawn from `length` (a `usize` or a range).
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, length: L) -> VecStrategy<S, L> {
        VecStrategy { element, length }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.length.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Creates the deterministic generator a property runs with. Used by the
/// expansion of [`proptest!`]; not part of the public API surface.
#[doc(hidden)]
pub fn new_rng(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

/// Derives a deterministic per-property seed from the test function's name so
/// every property explores a distinct but reproducible stream.
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each function body runs [`CASES`] times with
/// inputs drawn from the strategies named in its argument list.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::new_rng($crate::seed_for(stringify!($name)));
                for __case in 0..$crate::CASES {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_honours_length(
            values in crate::collection::vec(0.0f64..1.0, 3usize),
            more in crate::collection::vec(0u32..9, 1..4),
        ) {
            prop_assert_eq!(values.len(), 3);
            prop_assert!((1..4).contains(&more.len()));
        }

        #[test]
        fn prop_map_transforms(v in (0.0f64..1.0).prop_map(|x| x + 10.0)) {
            prop_assert!((10.0..11.0).contains(&v));
        }
    }
}
