//! Derive macros for the offline `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes this workspace uses: structs with named fields, tuple and
//! unit structs, and enums whose variants are unit, struct-like or tuple
//! shaped. Items may carry simple type parameters (each parameter is given a
//! `Serialize`/`Deserialize` bound). `#[serde(...)]` attributes are not
//! supported and produce a compile error rather than being silently ignored.
//!
//! The macro is written directly against `proc_macro::TokenTree` because the
//! usual helper crates (`syn`, `quote`) are unavailable offline; the
//! supported grammar is deliberately small and fails loudly outside it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the stand-in `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Item {
    name: String,
    generics: Vec<String>,
    data: Data,
}

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => generate_serialize(&item),
                Mode::Deserialize => generate_deserialize(&item),
            };
            code.parse().expect("generated impl should be valid Rust")
        }
        Err(message) => format!("compile_error!({message:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    // Leading attributes (doc comments arrive as `#[doc = "..."]`).
    while matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if tokens.iter().skip(pos).take(2).any(|t| {
            matches!(t, TokenTree::Group(g)
                if g.delimiter() == Delimiter::Bracket
                    && g.stream().to_string().starts_with("serde"))
        }) {
            return Err(
                "#[serde(...)] attributes are not supported by the offline stand-in".into(),
            );
        }
        pos += 2; // `#` and the bracketed group
    }

    // Visibility.
    if matches!(tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        pos += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" || i.to_string() == "enum" => {
            i.to_string()
        }
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected an item name, found {other:?}")),
    };
    pos += 1;

    // Generic parameters: collect the parameter names, skip bounds.
    let mut generics = Vec::new();
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        pos += 1;
        let mut depth = 1usize;
        let mut at_param_start = true;
        while depth > 0 {
            match tokens.get(pos) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    at_param_start = true;
                    pos += 1;
                    continue;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    return Err("lifetimes are not supported by the offline serde derive".into());
                }
                Some(TokenTree::Ident(i)) if at_param_start && depth == 1 => {
                    if i.to_string() == "const" {
                        return Err(
                            "const generics are not supported by the offline serde derive".into(),
                        );
                    }
                    generics.push(i.to_string());
                    at_param_start = false;
                }
                None => return Err("unterminated generic parameter list".into()),
                _ => {}
            }
            pos += 1;
        }
    }

    // Optional where-clause: skip everything up to the body.
    while let Some(token) = tokens.get(pos) {
        match token {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                let data = if kind == "struct" {
                    Data::NamedStruct(parse_named_fields(body)?)
                } else {
                    Data::Enum(parse_variants(body)?)
                };
                return Ok(Item {
                    name,
                    generics,
                    data,
                });
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && kind == "struct" => {
                return Ok(Item {
                    name,
                    generics,
                    data: Data::TupleStruct(count_top_level_fields(g.stream())),
                });
            }
            TokenTree::Punct(p) if p.as_char() == ';' && kind == "struct" => {
                return Ok(Item {
                    name,
                    generics,
                    data: Data::UnitStruct,
                });
            }
            _ => pos += 1,
        }
    }
    Err(format!("could not find the body of `{name}`"))
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        // Attributes on the field.
        while matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            pos += 2;
        }
        if pos >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            pos += 1;
            if matches!(tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                pos += 1;
            }
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected a field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0isize;
        while let Some(token) = tokens.get(pos) {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            pos += 1;
        }
        pos += 1; // consume the comma (or run off the end)
        fields.push(name);
    }
    Ok(fields)
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0isize;
    let mut fields = 1usize;
    let mut saw_content = false;
    for (i, token) in tokens.iter().enumerate() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                // A trailing comma does not start a new field.
                if i + 1 < tokens.len() {
                    fields += 1;
                }
            }
            _ => saw_content = true,
        }
    }
    if saw_content {
        fields
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        while matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            pos += 2;
        }
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected a variant name, found {other:?}")),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                pos += 1;
                VariantFields::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_top_level_fields(g.stream());
                pos += 1;
                VariantFields::Tuple(count)
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while let Some(token) = tokens.get(pos) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let params = item.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{params}>",
            bounded.join(", "),
            item.name
        )
    }
}

fn generate_serialize(item: &Item) -> String {
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Data::TupleStruct(0) | Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(&item.name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn serialize_variant_arm(item_name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.fields {
        VariantFields::Unit => format!(
            "{item_name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
        ),
        VariantFields::Named(fields) => {
            let bindings = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{item_name}::{vname} {{ {bindings} }} => ::serde::Value::Map(vec![\
                 (::std::string::String::from({vname:?}), ::serde::Value::Map(vec![{}]))]),",
                entries.join(", ")
            )
        }
        VariantFields::Tuple(n) => {
            let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let entries: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
            };
            format!(
                "{item_name}::{vname}({}) => ::serde::Value::Map(vec![\
                 (::std::string::String::from({vname:?}), {payload})]),",
                bindings.join(", ")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::de_field(value, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::TupleStruct(0) | Data::UnitStruct => {
            format!(
                "match value {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
                 other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"expected null for unit struct {name}, found {{}}\", other.kind()))) }}"
            )
        }
        Data::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Data::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{ ::serde::Value::Seq(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})), \
                 other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"expected a {n}-element sequence for {name}, found {{}}\", other.kind()))) }}",
                inits.join(", ")
            )
        }
        Data::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "{} {{ fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| match &v.fields {
            VariantFields::Unit => None,
            VariantFields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::de_field(payload, {f:?})?)?"
                        )
                    })
                    .collect();
                Some(format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                    inits.join(", "),
                    vname = v.name
                ))
            }
            VariantFields::Tuple(1) => Some(format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(payload)?)),",
                vname = v.name
            )),
            VariantFields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                Some(format!(
                    "{vname:?} => match payload {{ \
                     ::serde::Value::Seq(items) if items.len() == {n} => \
                     ::std::result::Result::Ok({name}::{vname}({inits})), \
                     other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                     \"expected a {n}-element sequence for variant {vname}, found {{}}\", other.kind()))) }},",
                    inits = inits.join(", "),
                    vname = v.name
                ))
            }
        })
        .collect();
    format!(
        "match value {{ \
         ::serde::Value::Str(tag) => match tag.as_str() {{ \
             {units} \
             other => ::std::result::Result::Err(::serde::Error::msg(format!(\
             \"unknown variant `{{other}}` of {name}\"))) }}, \
         ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
             let (tag, payload) = &entries[0]; \
             match tag.as_str() {{ \
                 {tagged} \
                 other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` of {name}\"))) }} }}, \
         other => ::std::result::Result::Err(::serde::Error::msg(format!(\
         \"expected a variant of {name}, found {{}}\", other.kind()))) }}",
        units = unit_arms.join(" "),
        tagged = tagged_arms.join(" "),
    )
}
