//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This crate implements the surface the workspace uses — seeded
//! [`rngs::StdRng`], the [`Rng`] extension methods `gen_range` / `gen_bool`,
//! and [`SeedableRng::seed_from_u64`] — on top of the xoshiro256++
//! generator (Blackman & Vigna), seeded through SplitMix64 exactly as the
//! reference implementation recommends.
//!
//! The streams are **not** bit-compatible with the real `rand` crate; all
//! workspace code only relies on determinism for a given seed and on basic
//! statistical quality, both of which xoshiro256++ provides.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A random number generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Extension methods over a raw bit source: typed uniform sampling.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a uniformly distributed value of `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from raw bits via [`Rng::gen`].
pub trait Standard {
    /// Produces one sample from 64 uniform random bits.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> Self {
        unit_f64(bits)
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let span = self.end - self.start;
        let v = self.start + unit_f64(rng.next_u64()) * span;
        // Floating-point rounding can land exactly on `end`; clamp back into
        // the half-open interval.
        if v >= self.end {
            self.end - self.end.abs() * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample an empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias over a 64-bit source is irrelevant for the
                // simulation workloads here.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++.
    ///
    /// Unlike the real `rand`'s ChaCha-based `StdRng` this is not
    /// cryptographically secure; the workspace only uses it for simulation
    /// workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one fixed point of the generator.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&v));
            let w = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all buckets should be hit: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
