//! A small, strict JSON writer and reader for the [`Value`] data model.
//!
//! The writer emits compact JSON; floats use Rust's shortest round-trip
//! formatting, so `from_str(&to_string(&x))` reproduces `x` exactly for all
//! finite values. Non-finite floats are written as `null`.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> String {
    to_string_value(&value.to_value())
}

/// Serializes an already-lowered [`Value`] to a compact JSON string.
pub fn to_string_value(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

/// Parses a JSON string and decodes it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Parses a JSON string into the [`Value`] data model.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let formatted = format!("{f}");
                out.push_str(&formatted);
                // `1.0` formats as "1"; keep a float marker so integers and
                // floats stay distinguishable when read back.
                if !formatted.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of JSON input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in JSON string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unsupported \\u escape (surrogate)"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated JSON string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0, -2.5e-17, 123456.789, f64::MIN_POSITIVE, 1e300] {
            let text = to_string(&f);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash \t end".to_string();
        let text = to_string(&s);
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::Int(1), Value::Null])),
            ("b".into(), Value::Float(2.5)),
        ]);
        let text = to_string_value(&value);
        assert_eq!(parse_value(&text).unwrap(), value);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }

    #[test]
    fn integers_keep_exact_width() {
        let text = to_string(&u64::MAX);
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
    }
}
