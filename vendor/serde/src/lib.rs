//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no network access, so the
//! real `serde` cannot be fetched from crates.io. This crate provides the
//! subset the workspace relies on with compatible spelling — `use
//! serde::{Serialize, Deserialize};` and `#[derive(Serialize, Deserialize)]`
//! work unchanged — built on a small self-describing [`Value`] data model
//! plus a JSON reader/writer in [`json`].
//!
//! The design intentionally mirrors `serde_json`'s externally-tagged
//! conventions so that swapping the real serde back in later only changes
//! the plumbing, not the wire format:
//!
//! * structs serialize to maps of field name → value;
//! * unit enum variants serialize to their name as a string;
//! * data-carrying variants serialize to a single-entry map
//!   `{ "Variant": ... }` (newtype payloads inline, struct variants nest a
//!   map, tuple variants nest a sequence);
//! * `Option` serializes to `null` / the inner value;
//! * maps serialize to sequences of `[key, value]` pairs so non-string keys
//!   round-trip.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// The self-describing data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`; also the encoding of `None` and of non-finite floats.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value does not fit `i64`).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field or variant names).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Value`] cannot be decoded into the requested type.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Attempts to build `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Fetches a struct field from a map value, with a helpful error. Used by the
/// derive macro's generated code.
pub fn de_field<'v>(value: &'v Value, field: &str) -> Result<&'v Value, Error> {
    match value {
        Value::Map(_) => value
            .get(field)
            .ok_or_else(|| Error::msg(format!("missing field `{field}`"))),
        other => Err(Error::msg(format!(
            "expected a map with field `{field}`, found {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{} out of range for {}", i, stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(format!("{} out of range for {}", u, stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected an integer for {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{} out of range for {}", i, stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(format!("{} out of range for {}", u, stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected an integer for {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!(
                "expected a bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // JSON has no NaN/Infinity literal; non-finite floats round-trip
            // through null (deserialized back as NaN).
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected a single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!(
                "expected a 2-element sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!(
                "expected a 3-element sequence, found {}",
                other.kind()
            ))),
        }
    }
}

// Maps serialize to a sequence of `[key, value]` pairs so that non-string
// keys survive the JSON round trip.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect();
        // Deterministic output regardless of hash order.
        pairs.sort_by_key(json::to_string_value);
        Value::Seq(pairs)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(<(K, V)>::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected a sequence of [key, value] pairs, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn composites_round_trip() {
        let v: Vec<(u32, f64)> = vec![(1, 2.0), (3, 4.0)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        assert_eq!(
            HashMap::<String, u32>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(de_field(&Value::Map(vec![]), "missing").is_err());
        assert!(de_field(&Value::Null, "f").is_err());
    }
}
