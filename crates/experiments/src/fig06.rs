//! Figure 6: confidence building on a low-latency cluster.
//!
//! Three nodes on a local cluster measure each other once per second for ten
//! minutes. Because the true latency (≈ 0.4–1.2 ms) is at the resolution of
//! the measurement software, the 5 % of samples above 1.2 ms look like huge
//! *relative* errors and keep knocking a node's confidence down. With the
//! confidence-building margin (treat prediction and observation within 3 ms
//! as equal), the node reaches and holds ~100 % confidence; without it,
//! confidence hovers around 75 %.

use nc_netsim::cluster::ClusterModel;
use nc_vivaldi::{RemoteObservation, VivaldiConfig, VivaldiState};

use crate::workloads::Scale;

/// Configuration of the Figure 6 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig06Config {
    /// Duration of the run in seconds (the paper shows ten minutes).
    pub duration_s: usize,
    /// Measurement-error margin in milliseconds used by the
    /// confidence-building variant.
    pub margin_ms: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Fig06Config {
    /// Seconds-scale run for tests (two simulated minutes).
    pub fn quick() -> Self {
        Fig06Config {
            duration_s: 120,
            margin_ms: 3.0,
            seed: 42,
        }
    }

    /// The paper's ten-minute run.
    pub fn standard() -> Self {
        Fig06Config {
            duration_s: 600,
            margin_ms: 3.0,
            seed: 42,
        }
    }

    /// Alias so every experiment exposes the same preset trio.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self::quick(),
            Scale::Standard | Scale::Paper => Self::standard(),
        }
    }
}

/// Confidence of the observed node over time, for one variant.
#[derive(Debug, Clone)]
pub struct ConfidenceSeries {
    /// `(time_s, confidence)` samples, one per second.
    pub samples: Vec<(f64, f64)>,
}

impl ConfidenceSeries {
    /// Mean confidence over the second half of the run (after start-up).
    pub fn steady_state_mean(&self) -> f64 {
        let half = self.samples.len() / 2;
        let tail = &self.samples[half..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|(_, c)| c).sum::<f64>() / tail.len() as f64
    }
}

/// Result of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig06Result {
    /// Confidence over time with the measurement-error margin enabled.
    pub with_building: ConfidenceSeries,
    /// Confidence over time without it.
    pub without_building: ConfidenceSeries,
}

impl Fig06Result {
    /// Renders both series and the steady-state summary.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 6: confidence on a 3-node cluster (1 s sampling)\n\n");
        out.push_str("time_s  with_building  without_building\n");
        let step = (self.with_building.samples.len() / 40).max(1);
        for (i, ((t, with), (_, without))) in self
            .with_building
            .samples
            .iter()
            .zip(self.without_building.samples.iter())
            .enumerate()
        {
            if i % step == 0 {
                out.push_str(&format!("{t:6.0}  {with:13.3}  {without:16.3}\n"));
            }
        }
        out.push_str(&format!(
            "\nsteady-state mean confidence: with building {:.3} (paper ~1.0), without {:.3} (paper ~0.75)\n",
            self.with_building.steady_state_mean(),
            self.without_building.steady_state_mean()
        ));
        out
    }
}

fn run_variant(config: &Fig06Config, margin: Option<f64>) -> ConfidenceSeries {
    let vivaldi_config = VivaldiConfig::paper_defaults().with_confidence_building(margin);
    let mut nodes: Vec<VivaldiState> = (0..3)
        .map(|i| VivaldiState::new(vivaldi_config.clone().with_seed(config.seed + i)))
        .collect();
    let mut model = ClusterModel::paper_cluster(config.seed);
    let mut samples = Vec::with_capacity(config.duration_s);
    for second in 0..config.duration_s {
        // Every node samples one neighbour per second, round-robin.
        for i in 0..3 {
            let j = (i + 1 + second % 2) % 3;
            let rtt = model.sample();
            let observation = RemoteObservation::new(
                nodes[j].coordinate().clone(),
                nodes[j].error_estimate(),
                rtt,
            );
            nodes[i].observe(&observation);
        }
        samples.push((second as f64, nodes[0].confidence()));
    }
    ConfidenceSeries { samples }
}

/// Runs the Figure 6 experiment: the same cluster workload with and without
/// confidence building.
pub fn run(config: Fig06Config) -> Fig06Result {
    Fig06Result {
        with_building: run_variant(&config, Some(config.margin_ms)),
        without_building: run_variant(&config, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_building_reaches_full_confidence() {
        let result = run(Fig06Config::quick());
        let with = result.with_building.steady_state_mean();
        assert!(with > 0.9, "with building: {with:.3}");
    }

    #[test]
    fn without_building_confidence_is_depressed() {
        let result = run(Fig06Config::quick());
        let with = result.with_building.steady_state_mean();
        let without = result.without_building.steady_state_mean();
        assert!(
            without < with,
            "without building ({without:.3}) should trail with building ({with:.3})"
        );
        assert!(
            without < 0.95,
            "jitter should keep confidence below ~95%: {without:.3}"
        );
    }

    #[test]
    fn series_cover_the_whole_run() {
        let config = Fig06Config::quick();
        let result = run(config);
        assert_eq!(result.with_building.samples.len(), config.duration_s);
        assert_eq!(result.without_building.samples.len(), config.duration_s);
        assert!(result.render().contains("steady-state"));
    }
}
