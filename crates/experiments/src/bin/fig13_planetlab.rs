//! Figure 13: deployment comparison (headline result).
//!
//! Usage: `cargo run --release --bin fig13_planetlab [quick|standard|paper]`

use nc_experiments::fig13::{run, Fig13Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig13 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig13Config::quick(),
        _ => Fig13Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
