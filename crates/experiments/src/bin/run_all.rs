//! Runs every figure and table experiment and prints each rendered result,
//! separated by headers. This regenerates the complete evaluation of the
//! paper in one command.
//!
//! The experiments are mutually independent (each builds its own simulator
//! from its own seeds), so they execute **in parallel** on scoped threads;
//! the rendered outputs are buffered and printed in figure order, so the
//! report reads identically to a sequential run.
//!
//! Usage: `cargo run --release --bin run_all [quick|standard|paper]`

use nc_experiments::{
    fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14,
    fig15, table1, Scale,
};
use nc_netsim::sim::SimConfig;

fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}\n", "=".repeat(78));
}

fn main() {
    let scale = nc_experiments::scale_from_args();
    // Fail fast with a readable diagnostic (instead of a mid-run panic) if
    // the scale's simulation schedule is not runnable. Built as a literal —
    // the panicking constructors never run — so validate() is the single
    // checkpoint.
    let schedule = SimConfig {
        duration_s: scale.duration_s(),
        probe_interval_s: scale.probe_interval_s(),
        measurement_start_s: scale.measurement_start_s(),
        initial_neighbors: 8,
        gossip: true,
        track_nodes: Vec::new(),
        track_interval_s: 60.0,
        protocol_seed: 0xF00D,
        probe_timeout_s: scale.probe_interval_s() * 3.0,
        adversary: None,
        query_index: false,
    };
    if let Err(error) = schedule.validate() {
        eprintln!("invalid simulation schedule for scale '{scale}': {error}");
        std::process::exit(2);
    }
    eprintln!("running the full evaluation at scale '{scale}' in parallel ...");
    let quick = scale == Scale::Quick;

    // One closure per experiment, in report order. Each renders to a String
    // on its own thread; nothing is printed until every title can appear in
    // order.
    type Job<'a> = (&'a str, Box<dyn FnOnce() -> String + Send + 'a>);
    let jobs: Vec<Job> = vec![
        (
            "Figure 2",
            Box::new(move || {
                fig02::run(if quick {
                    fig02::Fig02Config::quick()
                } else {
                    fig02::Fig02Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 3",
            Box::new(move || {
                fig03::run(if quick {
                    fig03::Fig03Config::quick()
                } else {
                    fig03::Fig03Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 4",
            Box::new(move || {
                fig04::run(if quick {
                    fig04::Fig04Config::quick()
                } else {
                    fig04::Fig04Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 5",
            Box::new(move || {
                fig05::run(if quick {
                    fig05::Fig05Config::quick()
                } else {
                    fig05::Fig05Config::standard()
                })
                .render()
            }),
        ),
        (
            "Table I",
            Box::new(move || {
                table1::run(if quick {
                    table1::Table1Config::quick()
                } else {
                    table1::Table1Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 6",
            Box::new(move || fig06::run(fig06::Fig06Config::for_scale(scale)).render()),
        ),
        (
            "Figure 7",
            Box::new(move || {
                fig07::run(if quick {
                    fig07::Fig07Config::quick()
                } else {
                    fig07::Fig07Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 8",
            Box::new(move || {
                fig08::run(if quick {
                    fig08::Fig08Config::quick()
                } else {
                    fig08::Fig08Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 9",
            Box::new(move || {
                fig09::run(if quick {
                    fig09::Fig09Config::quick()
                } else {
                    fig09::Fig09Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 10",
            Box::new(move || {
                fig10::run(if quick {
                    fig10::Fig10Config::quick()
                } else {
                    fig10::Fig10Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 11",
            Box::new(move || {
                fig11::run(if quick {
                    fig11::Fig11Config::quick()
                } else {
                    fig11::Fig11Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 12",
            Box::new(move || {
                fig12::run(if quick {
                    fig12::Fig12Config::quick()
                } else {
                    fig12::Fig12Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 13",
            Box::new(move || {
                fig13::run(if quick {
                    fig13::Fig13Config::quick()
                } else {
                    fig13::Fig13Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 14",
            Box::new(move || {
                fig14::run(if quick {
                    fig14::Fig14Config::quick()
                } else {
                    fig14::Fig14Config::standard()
                })
                .render()
            }),
        ),
        (
            "Figure 15",
            Box::new(move || {
                fig15::run(if quick {
                    fig15::Fig15Config::quick()
                } else {
                    fig15::Fig15Config::standard()
                })
                .render()
            }),
        ),
    ];

    let rendered: Vec<(&str, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(title, job)| (title, scope.spawn(job)))
            .collect();
        handles
            .into_iter()
            .map(|(title, handle)| {
                (
                    title,
                    handle
                        .join()
                        .unwrap_or_else(|_| panic!("experiment '{title}' panicked")),
                )
            })
            .collect()
    });

    for (title, output) in rendered {
        banner(title);
        println!("{output}");
    }
}
