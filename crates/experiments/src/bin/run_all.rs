//! Runs every figure and table experiment in sequence and prints each
//! rendered result, separated by headers. This regenerates the complete
//! evaluation of the paper in one command.
//!
//! Usage: `cargo run --release --bin run_all [quick|standard|paper]`

use nc_experiments::{
    fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14,
    table1, Scale,
};
use nc_netsim::sim::SimConfig;

fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}\n", "=".repeat(78));
}

fn main() {
    let scale = nc_experiments::scale_from_args();
    // Fail fast with a readable diagnostic (instead of a mid-run panic) if
    // the scale's simulation schedule is not runnable. Built as a literal —
    // the panicking constructors never run — so validate() is the single
    // checkpoint.
    let schedule = SimConfig {
        duration_s: scale.duration_s(),
        probe_interval_s: scale.probe_interval_s(),
        measurement_start_s: scale.measurement_start_s(),
        initial_neighbors: 8,
        gossip: true,
        track_nodes: Vec::new(),
        track_interval_s: 60.0,
        protocol_seed: 0xF00D,
        probe_timeout_s: scale.probe_interval_s() * 3.0,
    };
    if let Err(error) = schedule.validate() {
        eprintln!("invalid simulation schedule for scale '{scale}': {error}");
        std::process::exit(2);
    }
    eprintln!("running the full evaluation at scale '{scale}' ...");
    let quick = scale == Scale::Quick;

    banner("Figure 2");
    println!(
        "{}",
        fig02::run(if quick {
            fig02::Fig02Config::quick()
        } else {
            fig02::Fig02Config::standard()
        })
        .render()
    );
    banner("Figure 3");
    println!(
        "{}",
        fig03::run(if quick {
            fig03::Fig03Config::quick()
        } else {
            fig03::Fig03Config::standard()
        })
        .render()
    );
    banner("Figure 4");
    println!(
        "{}",
        fig04::run(if quick {
            fig04::Fig04Config::quick()
        } else {
            fig04::Fig04Config::standard()
        })
        .render()
    );
    banner("Figure 5");
    println!(
        "{}",
        fig05::run(if quick {
            fig05::Fig05Config::quick()
        } else {
            fig05::Fig05Config::standard()
        })
        .render()
    );
    banner("Table I");
    println!(
        "{}",
        table1::run(if quick {
            table1::Table1Config::quick()
        } else {
            table1::Table1Config::standard()
        })
        .render()
    );
    banner("Figure 6");
    println!(
        "{}",
        fig06::run(fig06::Fig06Config::for_scale(scale)).render()
    );
    banner("Figure 7");
    println!(
        "{}",
        fig07::run(if quick {
            fig07::Fig07Config::quick()
        } else {
            fig07::Fig07Config::standard()
        })
        .render()
    );
    banner("Figure 8");
    println!(
        "{}",
        fig08::run(if quick {
            fig08::Fig08Config::quick()
        } else {
            fig08::Fig08Config::standard()
        })
        .render()
    );
    banner("Figure 9");
    println!(
        "{}",
        fig09::run(if quick {
            fig09::Fig09Config::quick()
        } else {
            fig09::Fig09Config::standard()
        })
        .render()
    );
    banner("Figure 10");
    println!(
        "{}",
        fig10::run(if quick {
            fig10::Fig10Config::quick()
        } else {
            fig10::Fig10Config::standard()
        })
        .render()
    );
    banner("Figure 11");
    println!(
        "{}",
        fig11::run(if quick {
            fig11::Fig11Config::quick()
        } else {
            fig11::Fig11Config::standard()
        })
        .render()
    );
    banner("Figure 12");
    println!(
        "{}",
        fig12::run(if quick {
            fig12::Fig12Config::quick()
        } else {
            fig12::Fig12Config::standard()
        })
        .render()
    );
    banner("Figure 13");
    println!(
        "{}",
        fig13::run(if quick {
            fig13::Fig13Config::quick()
        } else {
            fig13::Fig13Config::standard()
        })
        .render()
    );
    banner("Figure 14");
    println!(
        "{}",
        fig14::run(if quick {
            fig14::Fig14Config::quick()
        } else {
            fig14::Fig14Config::standard()
        })
        .render()
    );
}
