//! Table I: EWMA baselines vs the MP filter.
//!
//! Usage: `cargo run --release --bin table1_ewma [quick|standard|paper]`

use nc_experiments::table1::{run, Table1Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running table1 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Table1Config::quick(),
        _ => Table1Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
