//! Figure 2: histogram of raw latency measurements across the mesh.
//!
//! Usage: `cargo run --release --bin fig02_latency_histogram [quick|standard|paper]`

use nc_experiments::fig02::{run, Fig02Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig02 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig02Config::quick(),
        _ => Fig02Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
