//! Figure 5: accuracy and stability with and without the MP filter.
//!
//! Usage: `cargo run --release --bin fig05_filter_cdfs [quick|standard|paper]`

use nc_experiments::fig05::{run, Fig05Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig05 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig05Config::quick(),
        _ => Fig05Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
