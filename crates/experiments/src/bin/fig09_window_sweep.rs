//! Figure 9: window-size sweep for ENERGY and RELATIVE.
//!
//! Usage: `cargo run --release --bin fig09_window_sweep [quick|standard|paper]`

use nc_experiments::fig09::{run, Fig09Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig09 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig09Config::quick(),
        _ => Fig09Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
