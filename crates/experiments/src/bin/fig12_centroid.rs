//! Figure 12: APPLICATION/CENTROID ablation.
//!
//! Usage: `cargo run --release --bin fig12_centroid [quick|standard|paper]`

use nc_experiments::fig12::{run, Fig12Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig12 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig12Config::quick(),
        _ => Fig12Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
