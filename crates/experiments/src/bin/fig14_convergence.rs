//! Figure 14: error and instability over time.
//!
//! Usage: `cargo run --release --bin fig14_convergence [quick|standard|paper]`

use nc_experiments::fig14::{run, Fig14Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig14 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig14Config::quick(),
        _ => Fig14Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
