//! Figure 10: threshold sweep for all four heuristics.
//!
//! Usage: `cargo run --release --bin fig10_heuristics [quick|standard|paper]`

use nc_experiments::fig10::{run, Fig10Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig10 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig10Config::quick(),
        _ => Fig10Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
