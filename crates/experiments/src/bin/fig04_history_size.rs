//! Figure 4: MP-filter prediction error vs history size.
//!
//! Usage: `cargo run --release --bin fig04_history_size [quick|standard|paper]`

use nc_experiments::fig04::{run, Fig04Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig04 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig04Config::quick(),
        _ => Fig04Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
