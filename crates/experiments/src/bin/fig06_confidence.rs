//! Figure 6: confidence building on a low-latency cluster.
//!
//! Usage: `cargo run --release --bin fig06_confidence [quick|standard|paper]`

use nc_experiments::fig06::{run, Fig06Config};

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig06 at scale '{scale}' ...");
    let result = run(Fig06Config::for_scale(scale));
    println!("{}", result.render());
}
