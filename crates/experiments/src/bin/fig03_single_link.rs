//! Figure 3: histogram and time scatter of one representative link.
//!
//! Usage: `cargo run --release --bin fig03_single_link [quick|standard|paper]`

use nc_experiments::fig03::{run, Fig03Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig03 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig03Config::quick(),
        _ => Fig03Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
