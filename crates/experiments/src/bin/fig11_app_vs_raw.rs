//! Figure 11: application-level suppression vs the raw MP filter.
//!
//! Usage: `cargo run --release --bin fig11_app_vs_raw [quick|standard|paper]`

use nc_experiments::fig11::{run, Fig11Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig11 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig11Config::quick(),
        _ => Fig11Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
