//! Figure 8: threshold sweep for ENERGY and RELATIVE.
//!
//! Usage: `cargo run --release --bin fig08_threshold_sweep [quick|standard|paper]`

use nc_experiments::fig08::{run, Fig08Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig08 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig08Config::quick(),
        _ => Fig08Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
