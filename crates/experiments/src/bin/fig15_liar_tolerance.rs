//! Figure 15 (extension): liar tolerance with and without the outlier gate.
//!
//! Usage: `cargo run --release --bin fig15_liar_tolerance [quick|standard|paper]`

use nc_experiments::fig15::{run, Fig15Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig15 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig15Config::quick(),
        _ => Fig15Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
