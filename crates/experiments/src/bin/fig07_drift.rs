//! Figure 7: coordinate drift of one node per region.
//!
//! Usage: `cargo run --release --bin fig07_drift [quick|standard|paper]`

use nc_experiments::fig07::{run, Fig07Config};
use nc_experiments::Scale;

fn main() {
    let scale = nc_experiments::scale_from_args();
    eprintln!("running fig07 at scale '{scale}' ...");
    let config = match scale {
        Scale::Quick => Fig07Config::quick(),
        _ => Fig07Config::standard(),
    };
    let result = run(config);
    println!("{}", result.render());
}
