//! Figure 12: the APPLICATION/CENTROID ablation.
//!
//! Could a simple threshold heuristic match the window-based ones if it only
//! borrowed their centroid target? The paper modifies APPLICATION to publish
//! the centroid of the last 32 system coordinates and sweeps its threshold:
//! the combination is more stable than plain APPLICATION or SYSTEM but, like
//! all window-less triggers, it is not robust to the threshold choice —
//! accuracy collapses once the threshold grows past the sweet spot. Knowing
//! *when* to update (the change-detection part) is what the windows buy.

use stable_nc::{HeuristicConfig, NodeConfig};

use crate::sweeps::{family_points, render_sweep, run_sweep, SweepPoint};
use crate::workloads::Scale;

/// Configuration of the Figure 12 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Config {
    /// Workload scale.
    pub scale: Scale,
    /// Millisecond thresholds to sweep.
    pub thresholds: Vec<f64>,
    /// Sliding-window size used for the centroid target.
    pub window: usize,
}

impl Fig12Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig12Config {
            scale: Scale::Quick,
            thresholds: vec![1.0, 16.0, 256.0],
            window: 16,
        }
    }

    /// Default run for the binary: the paper's range with window 32.
    pub fn standard() -> Self {
        Fig12Config {
            scale: Scale::Standard,
            thresholds: vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            window: 32,
        }
    }
}

/// Result of the Figure 12 experiment.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// One point per threshold, plus the ENERGY reference at its paper
    /// defaults for comparison.
    pub points: Vec<SweepPoint>,
}

impl Fig12Result {
    /// Points of the APPLICATION/CENTROID family ordered by threshold.
    pub fn centroid_points(&self) -> Vec<&SweepPoint> {
        family_points(&self.points, "APPLICATION/CENTROID")
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        render_sweep(
            "Figure 12: APPLICATION/CENTROID threshold sweep (ENERGY reference included)",
            &self.points,
        )
    }
}

/// Runs the Figure 12 experiment.
pub fn run(config: Fig12Config) -> Fig12Result {
    let mut entries: Vec<(String, f64, NodeConfig)> = config
        .thresholds
        .iter()
        .map(|&threshold_ms| {
            (
                "APPLICATION/CENTROID".to_string(),
                threshold_ms,
                NodeConfig::builder()
                    .heuristic(HeuristicConfig::ApplicationCentroid {
                        threshold_ms,
                        window: config.window,
                    })
                    .build(),
            )
        })
        .collect();
    entries.push((
        "ENERGY".to_string(),
        8.0,
        NodeConfig::builder()
            .heuristic(HeuristicConfig::Energy {
                threshold: 8.0,
                window: config.window,
            })
            .build(),
    ));
    Fig12Result {
        points: run_sweep(config.scale, entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_rises_with_threshold() {
        let result = run(Fig12Config::quick());
        let points = result.centroid_points();
        assert!(points.len() >= 3);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            last.instability <= first.instability + 1e-9,
            "instability should fall as the threshold grows ({:.2} -> {:.2})",
            first.instability,
            last.instability
        );
    }

    #[test]
    fn large_thresholds_cost_accuracy() {
        let result = run(Fig12Config::quick());
        let points = result.centroid_points();
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            last.median_relative_error >= first.median_relative_error - 0.02,
            "error should not improve when updates are starved ({:.3} -> {:.3})",
            first.median_relative_error,
            last.median_relative_error
        );
    }

    #[test]
    fn render_includes_energy_reference() {
        let result = run(Fig12Config::quick());
        assert!(result.render().contains("ENERGY"));
        assert!(result.render().contains("APPLICATION/CENTROID"));
    }
}
