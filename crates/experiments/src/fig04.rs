//! Figure 4: predictive power of the moving-percentile filter versus history
//! size.
//!
//! For every link the filter is replayed over the observation sequence: at
//! each step the filter's current output is the *prediction* of the next
//! observation, and the relative error between the two is recorded. The
//! paper summarises each link by the 95th percentile of those errors and
//! shows the distribution across links as a box-plot for each history size
//! (1–128, percentile fixed at 25), concluding that a short history of four
//! observations predicts best.

use nc_filters::{LatencyFilter, MovingPercentileFilter};
use nc_stats::{percentile, BoxplotSummary};
use nc_vivaldi::relative_error;

use crate::workloads::Scale;

/// Configuration of the Figure 4 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig04Config {
    /// Workload scale.
    pub scale: Scale,
    /// History sizes to sweep.
    pub history_sizes: Vec<usize>,
    /// Percentile used by the filter (the paper keeps p = 25).
    pub percentile: f64,
    /// Number of links sampled.
    pub links: usize,
    /// Observations per link.
    pub samples_per_link: usize,
}

impl Fig04Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig04Config {
            scale: Scale::Quick,
            history_sizes: vec![1, 2, 4, 8, 16],
            percentile: 25.0,
            links: 10,
            samples_per_link: 1_500,
        }
    }

    /// Default run for the binary: the paper's full sweep 1–128.
    pub fn standard() -> Self {
        Fig04Config {
            scale: Scale::Standard,
            history_sizes: vec![1, 2, 4, 8, 16, 32, 64, 128],
            percentile: 25.0,
            links: 40,
            samples_per_link: 20_000,
        }
    }
}

/// Result of the Figure 4 experiment: one box-plot per history size over the
/// per-link 95th-percentile prediction errors.
#[derive(Debug, Clone)]
pub struct Fig04Result {
    /// `(history_size, boxplot over links)` in sweep order.
    pub per_history: Vec<(usize, BoxplotSummary)>,
}

impl Fig04Result {
    /// The history size with the lowest median per-link error.
    pub fn best_history(&self) -> usize {
        self.per_history
            .iter()
            .min_by(|a, b| a.1.median.partial_cmp(&b.1.median).expect("finite medians"))
            .map(|(h, _)| *h)
            .expect("at least one history size")
    }

    /// Median per-link 95th-percentile error for a given history size.
    pub fn median_for(&self, history: usize) -> Option<f64> {
        self.per_history
            .iter()
            .find(|(h, _)| *h == history)
            .map(|(_, b)| b.median)
    }

    /// Renders the box-plot table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 4: per-link 95th-percentile prediction error vs MP history size (p=25)\n\n",
        );
        for (h, summary) in &self.per_history {
            out.push_str(&format!("h={h:<4} {}\n", summary.to_row()));
        }
        out.push_str(&format!("\nbest history size: {}\n", self.best_history()));
        out
    }
}

/// Runs the Figure 4 experiment.
pub fn run(config: Fig04Config) -> Fig04Result {
    let mut generator = crate::workloads::trace_generator(config.scale);
    let n = generator.topology().len();

    // Gather per-link observation sequences once, reuse for every history
    // size so all sweep points see identical data.
    let mut link_series: Vec<Vec<f64>> = Vec::with_capacity(config.links);
    for l in 0..config.links {
        let a = (l * 3) % n;
        let b = (l * 3 + 1 + l % 5) % n;
        if a == b {
            continue;
        }
        let series: Vec<f64> = generator
            .link_observations(a, b, config.samples_per_link)
            .into_iter()
            .map(|r| r.rtt_ms)
            .collect();
        link_series.push(series);
    }

    let mut per_history = Vec::with_capacity(config.history_sizes.len());
    for &h in &config.history_sizes {
        let mut per_link_p95 = Vec::with_capacity(link_series.len());
        for series in &link_series {
            let mut filter =
                MovingPercentileFilter::new(h, config.percentile).expect("valid parameters");
            let mut errors = Vec::with_capacity(series.len());
            for &observation in series {
                if let Some(prediction) = filter.current_estimate() {
                    errors.push(relative_error(prediction, observation));
                }
                filter.observe(observation);
            }
            if let Ok(p95) = percentile(&errors, 95.0) {
                per_link_p95.push(p95);
            }
        }
        let summary = BoxplotSummary::from_samples(&per_link_p95)
            .expect("every history size has per-link samples");
        per_history.push((h, summary));
    }

    Fig04Result { per_history }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_histories_beat_no_history() {
        let result = run(Fig04Config::quick());
        let h1 = result.median_for(1).unwrap();
        let h4 = result.median_for(4).unwrap();
        assert!(
            h4 < h1,
            "a 4-sample history (median {h4:.3}) should predict better than the last sample alone ({h1:.3})"
        );
    }

    #[test]
    fn best_history_is_short() {
        let result = run(Fig04Config::quick());
        let best = result.best_history();
        assert!(
            (2..=16).contains(&best),
            "the paper finds short histories best; got {best}"
        );
    }

    #[test]
    fn every_history_size_has_a_boxplot() {
        let config = Fig04Config::quick();
        let expected = config.history_sizes.len();
        let result = run(config);
        assert_eq!(result.per_history.len(), expected);
        assert!(result.render().contains("best history size"));
    }
}
