//! Table I: exponentially-weighted histories versus the MP filter.
//!
//! The paper's Table I reports the median (over nodes) of the per-node median
//! relative error and the aggregate instability for five configurations: the
//! MP filter, no filter, and EWMAs with α ∈ {0.02, 0.10, 0.20}. The headline
//! is that smoothing with an EWMA is *worse than not filtering at all*: the
//! heavy-tail outliers are not a trend to track but noise to discard.

use nc_netsim::metrics::SimReport;
use stable_nc::{FilterConfig, HeuristicConfig, NodeConfig};

use crate::report::{fmt, fmt_change, format_table};
use crate::workloads::{coordinate_simulator, Scale};

/// Configuration of the Table I experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Config {
    /// Workload scale.
    pub scale: Scale,
}

impl Table1Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Table1Config {
            scale: Scale::Quick,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Table1Config {
            scale: Scale::Standard,
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Configuration label ("MP Filter", "No Filter", "alpha=0.10", …).
    pub label: String,
    /// Median over nodes of the per-node median relative error.
    pub median_relative_error: f64,
    /// Aggregate instability (ms/s).
    pub instability: f64,
}

/// Result of the Table I experiment.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// All rows, in the paper's order.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// The row with the given label.
    pub fn row(&self, label: &str) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Renders the table with percentage changes relative to "No Filter",
    /// matching the paper's presentation.
    pub fn render(&self) -> String {
        let baseline = self
            .row("No Filter")
            .expect("the No Filter baseline is always present");
        let (base_err, base_inst) = (baseline.median_relative_error, baseline.instability);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    fmt(r.median_relative_error),
                    fmt_change(r.median_relative_error, base_err),
                    fmt(r.instability),
                    fmt_change(r.instability, base_inst),
                ]
            })
            .collect();
        let mut out = String::from("Table I: exponentially-weighted histories\n\n");
        out.push_str(&format_table(
            &[
                "filter",
                "median rel error",
                "vs none",
                "instability",
                "vs none",
            ],
            &rows,
        ));
        out
    }
}

fn follow(filter: FilterConfig) -> NodeConfig {
    NodeConfig::builder()
        .filter(filter)
        .heuristic(HeuristicConfig::FollowSystem)
        .build()
}

fn extract(report: &SimReport, name: &str, label: &str) -> Table1Row {
    let metrics = report.config(name).expect("configuration ran");
    Table1Row {
        label: label.to_string(),
        median_relative_error: metrics.median_of_median_relative_error(),
        instability: metrics.aggregate_instability(),
    }
}

/// Runs the Table I experiment: all five configurations side by side on the
/// same observation streams.
pub fn run(config: Table1Config) -> Table1Result {
    let configs = vec![
        ("mp".to_string(), follow(FilterConfig::paper_mp())),
        ("none".to_string(), follow(FilterConfig::Raw)),
        (
            "ewma02".to_string(),
            follow(FilterConfig::Ewma { alpha: 0.02 }),
        ),
        (
            "ewma10".to_string(),
            follow(FilterConfig::Ewma { alpha: 0.10 }),
        ),
        (
            "ewma20".to_string(),
            follow(FilterConfig::Ewma { alpha: 0.20 }),
        ),
    ];
    let report = coordinate_simulator(config.scale, configs).run();
    Table1Result {
        rows: vec![
            extract(&report, "mp", "MP Filter"),
            extract(&report, "none", "No Filter"),
            extract(&report, "ewma02", "alpha=0.02"),
            extract(&report, "ewma10", "alpha=0.10"),
            extract(&report, "ewma20", "alpha=0.20"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mp_filter_wins_on_both_metrics() {
        let result = run(Table1Config::quick());
        let mp = result.row("MP Filter").unwrap();
        let none = result.row("No Filter").unwrap();
        assert!(
            mp.median_relative_error <= none.median_relative_error,
            "MP {:.3} vs none {:.3}",
            mp.median_relative_error,
            none.median_relative_error
        );
        assert!(mp.instability < none.instability);
    }

    #[test]
    fn ewma_is_not_better_than_the_mp_filter() {
        let result = run(Table1Config::quick());
        let mp = result.row("MP Filter").unwrap();
        for label in ["alpha=0.10", "alpha=0.20"] {
            let ewma = result.row(label).unwrap();
            assert!(
                ewma.median_relative_error >= mp.median_relative_error,
                "{label} error {:.3} should not beat the MP filter {:.3}",
                ewma.median_relative_error,
                mp.median_relative_error
            );
        }
    }

    #[test]
    fn render_has_five_rows_and_percent_changes() {
        let result = run(Table1Config::quick());
        let text = result.render();
        assert_eq!(result.rows.len(), 5);
        assert!(text.contains("MP Filter"));
        assert!(text.contains("alpha=0.20"));
        assert!(text.contains('%'));
    }
}
