//! Figure 3: histogram and time scatter of one representative link.
//!
//! The paper zooms into a single PlanetLab link to show that the heavy tail
//! is not an aggregation artefact: an individual link whose common case is
//! below 100 ms still produces samples two orders of magnitude larger, and
//! those spikes keep occurring throughout the three-day trace rather than
//! clustering in one bad period.

use nc_stats::timeseries::{BinStatistic, TimeBinner};
use nc_stats::{percentile, Histogram};

use crate::workloads::Scale;

/// Configuration of the Figure 3 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig03Config {
    /// Workload scale.
    pub scale: Scale,
    /// Number of observations of the chosen link.
    pub samples: usize,
}

impl Fig03Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig03Config {
            scale: Scale::Quick,
            samples: 5_000,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Fig03Config {
            scale: Scale::Standard,
            samples: 100_000,
        }
    }
}

/// One time bin of the scatter summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterBin {
    /// Start of the bin in hours.
    pub start_hours: f64,
    /// Median observation in the bin (ms).
    pub median_ms: f64,
    /// Maximum observation in the bin (ms).
    pub max_ms: f64,
}

/// Result of the Figure 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig03Result {
    /// The two endpoints of the chosen link.
    pub link: (usize, usize),
    /// Base RTT of the link (ground truth, ms).
    pub base_rtt_ms: f64,
    /// Histogram of the link's observations with the paper's 200 ms bins.
    pub histogram: Histogram,
    /// Median of all observations.
    pub median_ms: f64,
    /// Maximum observation.
    pub max_ms: f64,
    /// Hour-by-hour summary of the observation stream (the textual analogue
    /// of the scatter plot).
    pub scatter: Vec<ScatterBin>,
}

impl Fig03Result {
    /// Renders the histogram and the per-hour scatter summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 3: one link ({} -> {}), base RTT {:.1} ms\n\nhistogram (200 ms bins):\n{}\n",
            self.link.0,
            self.link.1,
            self.base_rtt_ms,
            self.histogram.to_table()
        );
        out.push_str(&format!(
            "median {:.1} ms, max {:.1} ms (x{:.0} the median)\n\n",
            self.median_ms,
            self.max_ms,
            self.max_ms / self.median_ms.max(0.001)
        ));
        out.push_str("per-hour summary (median / max ms):\n");
        for bin in &self.scatter {
            out.push_str(&format!(
                "  hour {:5.1}: median {:8.1}  max {:10.1}\n",
                bin.start_hours, bin.median_ms, bin.max_ms
            ));
        }
        out
    }

    /// Number of hour bins whose maximum exceeds five times the overall
    /// median — evidence the spikes are spread over time rather than
    /// clustered.
    pub fn hours_with_spikes(&self) -> usize {
        self.scatter
            .iter()
            .filter(|b| b.max_ms > 5.0 * self.median_ms)
            .count()
    }
}

/// Runs the Figure 3 experiment on a representative (sub-100 ms common case)
/// link.
pub fn run(config: Fig03Config) -> Fig03Result {
    let mut generator = crate::workloads::trace_generator(config.scale);
    // Pick the link whose base RTT is closest to 70 ms — the representative
    // case in the paper (a busy but ordinary wide-area link).
    let n = generator.topology().len();
    let mut best = (0usize, 1usize);
    let mut best_gap = f64::INFINITY;
    for a in 0..n.min(24) {
        for b in (a + 1)..n.min(24) {
            let base = generator.topology().base_rtt_ms(a, b);
            let gap = (base - 70.0).abs();
            if gap < best_gap {
                best_gap = gap;
                best = (a, b);
            }
        }
    }
    let base_rtt_ms = generator.topology().base_rtt_ms(best.0, best.1);
    let records = generator.link_observations(best.0, best.1, config.samples);
    let values: Vec<f64> = records.iter().map(|r| r.rtt_ms).collect();

    let mut histogram = Histogram::paper_figure3_bins();
    histogram.record_all(values.iter().cloned());

    let median_ms = percentile(&values, 50.0).expect("non-empty observations");
    let max_ms = values.iter().cloned().fold(0.0, f64::max);

    let mut binner = TimeBinner::new(0.0, 3600.0).expect("positive width");
    for r in &records {
        binner.record(r.time_s, r.rtt_ms);
    }
    let medians = binner.bins(BinStatistic::Median);
    let maxes = binner.bins(BinStatistic::Percentile(100));
    let scatter = medians
        .iter()
        .zip(maxes.iter())
        .filter_map(|(m, x)| match (m.value, x.value) {
            (Some(median), Some(max)) => Some(ScatterBin {
                start_hours: m.start / 3600.0,
                median_ms: median,
                max_ms: max,
            }),
            _ => None,
        })
        .collect();

    Fig03Result {
        link: best,
        base_rtt_ms,
        histogram,
        median_ms,
        max_ms,
        scatter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_link_has_low_common_case_and_big_spikes() {
        let result = run(Fig03Config::quick());
        assert!(result.median_ms < 150.0, "median {}", result.median_ms);
        assert!(
            result.max_ms > 5.0 * result.median_ms,
            "spikes should be an order of magnitude above the median"
        );
    }

    #[test]
    fn spikes_are_spread_over_time() {
        let mut config = Fig03Config::quick();
        config.samples = 8_000; // a bit over two hours at 1 s
        let result = run(config);
        assert!(result.scatter.len() >= 2);
        assert!(
            result.hours_with_spikes() >= 1,
            "at least one hour bin should contain a spike"
        );
    }

    #[test]
    fn render_mentions_the_link() {
        let result = run(Fig03Config::quick());
        assert!(result.render().contains("Figure 3"));
        assert!(result.render().contains("per-hour summary"));
    }
}
