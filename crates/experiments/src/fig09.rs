//! Figure 9: effect of the window size on the window-based heuristics.
//!
//! With the thresholds fixed, the paper grows the per-window size from 2²
//! to 2¹² and observes that large windows modestly *improve* accuracy while
//! steadily improving stability and reducing the application-update
//! frequency; only extremely large windows (which barely ever update) hurt.
//! The deployment uses 32 as a conservative choice.
//!
//! Note on scale: the ENERGY statistic costs O(k²) distance evaluations per
//! observation, so the upper end of the sweep is capped at 256 (`standard`)
//! and 32 (`quick`); the qualitative trend is visible well before the
//! paper's 4096.

use stable_nc::{HeuristicConfig, NodeConfig};

use crate::sweeps::{family_points, render_sweep, run_sweep, SweepPoint};
use crate::workloads::Scale;

/// Configuration of the Figure 9 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09Config {
    /// Workload scale.
    pub scale: Scale,
    /// Window sizes to sweep.
    pub windows: Vec<usize>,
    /// ENERGY threshold (fixed at the paper's 8).
    pub energy_threshold: f64,
    /// RELATIVE threshold (fixed at the paper's 0.3).
    pub relative_threshold: f64,
}

impl Fig09Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig09Config {
            scale: Scale::Quick,
            windows: vec![4, 8, 32],
            energy_threshold: 8.0,
            relative_threshold: 0.3,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Fig09Config {
            scale: Scale::Standard,
            windows: vec![4, 8, 16, 32, 64, 128, 256],
            energy_threshold: 8.0,
            relative_threshold: 0.3,
        }
    }
}

/// Result of the Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig09Result {
    /// One point per `(heuristic, window size)` pair.
    pub points: Vec<SweepPoint>,
}

impl Fig09Result {
    /// Points of one heuristic family ordered by window size.
    pub fn family(&self, family: &str) -> Vec<&SweepPoint> {
        family_points(&self.points, family)
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        render_sweep(
            "Figure 9: window-size sweep for ENERGY and RELATIVE (thresholds fixed)",
            &self.points,
        )
    }
}

/// Runs the Figure 9 experiment.
pub fn run(config: Fig09Config) -> Fig09Result {
    let mut entries = Vec::new();
    for &window in &config.windows {
        entries.push((
            "ENERGY".to_string(),
            window as f64,
            NodeConfig::builder()
                .heuristic(HeuristicConfig::Energy {
                    threshold: config.energy_threshold,
                    window,
                })
                .build(),
        ));
        entries.push((
            "RELATIVE".to_string(),
            window as f64,
            NodeConfig::builder()
                .heuristic(HeuristicConfig::Relative {
                    threshold: config.relative_threshold,
                    window,
                })
                .build(),
        ));
    }
    Fig09Result {
        points: run_sweep(config.scale, entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_windows_do_not_increase_update_frequency() {
        let result = run(Fig09Config::quick());
        for family in ["ENERGY", "RELATIVE"] {
            let points = result.family(family);
            let first = points.first().unwrap();
            let last = points.last().unwrap();
            assert!(
                last.updates_per_node_second <= first.updates_per_node_second + 1e-9,
                "{family}: update rate should fall with window size ({:.4} -> {:.4})",
                first.updates_per_node_second,
                last.updates_per_node_second
            );
        }
    }

    #[test]
    fn every_window_size_produces_finite_metrics() {
        let result = run(Fig09Config::quick());
        assert_eq!(result.points.len(), 6);
        for p in &result.points {
            assert!(p.median_relative_error.is_finite());
            assert!(p.instability.is_finite());
        }
    }

    #[test]
    fn render_mentions_window_sweep() {
        let result = run(Fig09Config::quick());
        assert!(result.render().contains("window-size sweep"));
    }
}
