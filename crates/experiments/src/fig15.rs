//! Figure 15 (extension): liar tolerance — median relative error versus the
//! fraction of Byzantine nodes, with and without the MAD outlier gate.
//!
//! The paper's filters are built for *honest* pathologies: queueing spikes,
//! heavy tails, slowly drifting base RTTs. This experiment asks what happens
//! when a fraction of the mesh instead lies outright — every probe reply
//! from an adversarial node claims a coordinate displaced by a couple of
//! seconds and near-perfect confidence — while the links underneath also
//! drift the way the paper's filters expect. Two stacks run side by side on
//! the identical schedule: the paper's defaults (`undefended`) and the same
//! stack with the MAD outlier gate armed (`defended`). For each adversary
//! fraction we record the median over *honest* nodes of the per-node median
//! system-level relative error, and report each arm's **tolerated
//! fraction**: the largest swept fraction whose error stays within double
//! that arm's own honest-mesh (fraction-0) baseline. The defended stack
//! should tolerate a strictly larger fraction of liars.

use nc_netsim::adversary::AdversaryModel;
use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::metrics::ConfigMetrics;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::sim::{SimConfig, Simulator};
use nc_stats::percentile;
use stable_nc::{NodeConfig, OutlierGateConfig};

use crate::report::{fmt, format_table};
use crate::workloads::Scale;

/// Configuration of the liar-tolerance experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Config {
    /// Workload scale.
    pub scale: Scale,
    /// Adversary fractions to sweep (must include 0.0, the baseline).
    pub fractions: Vec<f64>,
    /// How far (ms) each liar displaces its claimed coordinate.
    pub displacement_ms: f64,
    /// Per-step sigma of the base-RTT drift walk underneath the mesh.
    pub drift_sigma: f64,
}

impl Fig15Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig15Config {
            scale: Scale::Quick,
            fractions: vec![0.0, 0.1, 0.2, 0.3],
            displacement_ms: 2_000.0,
            drift_sigma: 0.05,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Fig15Config {
            scale: Scale::Standard,
            fractions: vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4],
            displacement_ms: 2_000.0,
            drift_sigma: 0.05,
        }
    }
}

/// One swept adversary fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Point {
    /// Fraction of the mesh that lies.
    pub fraction: f64,
    /// Median over honest nodes of the per-node median relative error,
    /// paper-default stack.
    pub undefended_error: f64,
    /// The same with the MAD outlier gate armed.
    pub defended_error: f64,
    /// Observations rejected across the run, paper-default stack (Vivaldi
    /// plausibility only).
    pub undefended_rejections: u64,
    /// Observations rejected with the gate armed.
    pub defended_rejections: u64,
}

/// Result of the liar-tolerance experiment.
#[derive(Debug, Clone)]
pub struct Fig15Result {
    /// One point per swept fraction, in sweep order.
    pub points: Vec<Fig15Point>,
}

impl Fig15Result {
    /// The largest swept fraction whose error stays within `2×` the arm's
    /// own fraction-0 baseline — how many liars the stack absorbs before
    /// accuracy visibly breaks. `select` picks the arm's error out of a
    /// point.
    fn tolerated(&self, select: impl Fn(&Fig15Point) -> f64) -> f64 {
        let baseline = self
            .points
            .iter()
            .find(|p| p.fraction == 0.0)
            .map(&select)
            .expect("sweep includes the fraction-0 baseline");
        self.points
            .iter()
            .filter(|p| select(p) <= 2.0 * baseline)
            .map(|p| p.fraction)
            .fold(0.0, f64::max)
    }

    /// Tolerated fraction of the paper-default stack.
    pub fn undefended_tolerated_fraction(&self) -> f64 {
        self.tolerated(|p| p.undefended_error)
    }

    /// Tolerated fraction with the MAD outlier gate armed.
    pub fn defended_tolerated_fraction(&self) -> f64 {
        self.tolerated(|p| p.defended_error)
    }

    /// Renders the sweep table and the tolerated-fraction headline.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.fraction * 100.0),
                    fmt(p.undefended_error),
                    fmt(p.defended_error),
                    p.undefended_rejections.to_string(),
                    p.defended_rejections.to_string(),
                ]
            })
            .collect();
        let mut out = String::from(
            "Figure 15: liar tolerance — honest-node median relative error vs adversary fraction\n\n",
        );
        out.push_str(&format_table(
            &[
                "liars",
                "undefended err",
                "defended err",
                "undef rejected",
                "def rejected",
            ],
            &rows,
        ));
        out.push_str(&format!(
            "\ntolerated liar fraction (error within 2x of the honest baseline):\n  \
             undefended: {:.0}%\n  defended:   {:.0}%\n",
            self.undefended_tolerated_fraction() * 100.0,
            self.defended_tolerated_fraction() * 100.0,
        ));
        out
    }
}

/// Median over honest nodes of the per-node median system relative error.
fn honest_median_error(metrics: &ConfigMetrics, adversaries: &[usize]) -> f64 {
    let errors: Vec<f64> = metrics
        .nodes
        .iter()
        .enumerate()
        .filter(|(index, _)| !adversaries.contains(index))
        .filter_map(|(_, node)| node.median_relative_error().ok())
        .collect();
    percentile(&errors, 50.0).unwrap_or(f64::NAN)
}

/// Runs the liar-tolerance experiment: one simulation per fraction, the
/// defended and undefended stacks side by side on the identical schedule.
pub fn run(config: Fig15Config) -> Fig15Result {
    let nodes = config.scale.node_count();
    let liar = AdversaryModel::CoordinateLiar {
        displacement_ms: config.displacement_ms,
        inflate: 1.0,
        error_estimate: 0.01,
    };
    let points = config
        .fractions
        .iter()
        .map(|&fraction| {
            let workload = PlanetLabConfig::small(nodes)
                .with_seed(20050502)
                .with_link_config(
                    LinkModelConfig::default().with_drift_walk(config.drift_sigma, 600.0),
                );
            let sim_config =
                SimConfig::new(config.scale.duration_s(), config.scale.probe_interval_s())
                    .with_measurement_start(config.scale.measurement_start_s())
                    .with_initial_neighbors(8.min(nodes - 1))
                    .with_adversaries(fraction, liar.clone());
            let mut sim = Simulator::new(
                workload,
                sim_config,
                vec![
                    ("undefended".to_string(), NodeConfig::paper_defaults()),
                    (
                        "defended".to_string(),
                        NodeConfig::builder()
                            .outlier_gate(OutlierGateConfig::default())
                            .build(),
                    ),
                ],
            );
            let adversaries = sim.adversaries();
            let report = sim.run();
            let undefended = report.config("undefended").expect("undefended arm ran");
            let defended = report.config("defended").expect("defended arm ran");
            Fig15Point {
                fraction,
                undefended_error: honest_median_error(undefended, &adversaries),
                defended_error: honest_median_error(defended, &adversaries),
                undefended_rejections: undefended.total_observations_rejected(),
                defended_rejections: defended.total_observations_rejected(),
            }
        })
        .collect();
    Fig15Result { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defense_tolerates_strictly_more_liars() {
        let result = run(Fig15Config::quick());
        let undefended = result.undefended_tolerated_fraction();
        let defended = result.defended_tolerated_fraction();
        assert!(
            defended > undefended,
            "defense should raise the tolerated liar fraction \
             (undefended {undefended:.2}, defended {defended:.2}):\n{}",
            result.render()
        );
    }

    #[test]
    fn gate_is_quiet_on_an_honest_mesh_and_loud_under_attack() {
        let result = run(Fig15Config::quick());
        let baseline = &result.points[0];
        let attacked = result.points.last().unwrap();
        assert_eq!(baseline.fraction, 0.0);
        // Under attack the gate visibly rejects; the undefended stack has
        // only Vivaldi's plausibility check, which a smooth liar never trips.
        assert!(attacked.defended_rejections > baseline.defended_rejections);
        assert!(attacked.defended_rejections > attacked.undefended_rejections);
    }

    #[test]
    fn errors_are_finite_across_the_sweep() {
        let result = run(Fig15Config::quick());
        for p in &result.points {
            assert!(
                p.undefended_error.is_finite() && p.defended_error.is_finite(),
                "{p:?}"
            );
        }
        assert!(result.render().contains("tolerated"));
    }
}
