//! Figure 2: frequency histogram of raw latency measurements across the
//! whole mesh.
//!
//! The paper's Figure 2 shows the distribution of all 43 million raw samples
//! of the PlanetLab trace on a log-scale frequency axis, with the key
//! observation that 0.4 % of measurements exceed one second — far above any
//! plausible round-trip time — so a coordinate system fed raw samples keeps
//! being yanked around by outliers.

use nc_stats::Histogram;

use crate::report;
use crate::workloads::Scale;

/// Configuration of the Figure 2 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig02Config {
    /// Workload scale.
    pub scale: Scale,
}

impl Fig02Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig02Config {
            scale: Scale::Quick,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Fig02Config {
            scale: Scale::Standard,
        }
    }
}

/// Result of the Figure 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig02Result {
    /// Histogram over every sample in the generated trace, using the paper's
    /// bin edges.
    pub histogram: Histogram,
    /// Fraction of samples at or above one second.
    pub fraction_above_1s: f64,
    /// Total number of samples.
    pub total_samples: u64,
}

impl Fig02Result {
    /// Renders the histogram table and the headline tail fraction.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 2: histogram of raw latency measurements (all links)\n\n");
        out.push_str("  bin (ms)        count\n");
        out.push_str(&self.histogram.to_table());
        out.push_str(&format!(
            "\ntotal samples: {}\nfraction >= 1s: {:.4}%  (paper: ~0.4%)\n",
            self.total_samples,
            self.fraction_above_1s * 100.0
        ));
        out.push_str(&format!(
            "heaviest bin fraction: {}\n",
            report::fmt(self.heaviest_bin_fraction())
        ));
        out
    }

    /// Fraction of samples in the most populated bin (the common case).
    pub fn heaviest_bin_fraction(&self) -> f64 {
        let max = self
            .histogram
            .bins()
            .iter()
            .map(|b| b.count)
            .max()
            .unwrap_or(0);
        if self.total_samples == 0 {
            0.0
        } else {
            max as f64 / self.total_samples as f64
        }
    }
}

/// Runs the Figure 2 experiment: generate the raw trace and histogram every
/// observation.
pub fn run(config: Fig02Config) -> Fig02Result {
    let mut generator = crate::workloads::trace_generator(config.scale);
    // Generating a full mesh trace at the configured per-link length would be
    // enormous; instead sample a representative set of links long enough to
    // total a few hundred thousand observations at standard scale.
    let links = config.scale.trace_link_count().max(8);
    let per_link = (config.scale.trace_samples_per_link() / 4).max(500);
    let n = generator.topology().len();
    let mut histogram = Histogram::paper_figure2_bins();
    let mut total = 0u64;
    for l in 0..links {
        let a = l % n;
        let b = (l * 7 + 1) % n;
        if a == b {
            continue;
        }
        for record in generator.link_observations(a, b, per_link) {
            histogram.record(record.rtt_ms);
            total += 1;
        }
    }
    let fraction_above_1s = histogram.fraction_at_or_above(1000.0);
    Fig02Result {
        histogram,
        fraction_above_1s,
        total_samples: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_fraction_is_in_the_papers_ballpark() {
        let result = run(Fig02Config::quick());
        assert!(result.total_samples > 1_000);
        assert!(
            result.fraction_above_1s > 0.0005 && result.fraction_above_1s < 0.03,
            "fraction above 1 s = {:.4}",
            result.fraction_above_1s
        );
    }

    #[test]
    fn common_case_dominates() {
        let result = run(Fig02Config::quick());
        assert!(
            result.heaviest_bin_fraction() > 0.3,
            "one bin should hold the bulk of the samples"
        );
    }

    #[test]
    fn render_contains_headline() {
        let result = run(Fig02Config::quick());
        let text = result.render();
        assert!(text.contains("fraction >= 1s"));
        assert!(text.contains("Figure 2"));
    }
}
