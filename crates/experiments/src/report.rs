//! Textual rendering of experiment results.
//!
//! The figures are regenerated as aligned text tables and `(x, y)` series —
//! the numbers a plotting script would consume — rather than as images, so
//! that `cargo run --bin figXX` output can be compared directly against the
//! paper's plots.

use nc_stats::Ecdf;

/// Formats an aligned table from a header row and data rows. Every row must
/// have the same number of cells as the header.
///
/// # Panics
///
/// Panics when a row's cell count differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "row width {} does not match header width {}",
            row.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, cell)| format!("{cell:>width$}", width = widths[i]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Renders an empirical CDF as `value fraction` rows at `points` evenly
/// spaced cumulative fractions, with a caption line.
pub fn render_cdf(caption: &str, cdf: &Ecdf, points: usize) -> String {
    let mut out = format!("# CDF: {caption} (n={})\n", cdf.len());
    for (value, fraction) in cdf.sampled_points(points) {
        out.push_str(&format!("{value:12.4}  {fraction:6.3}\n"));
    }
    out
}

/// Formats a float with sensible precision for tables (three decimals below
/// 10, one decimal otherwise).
pub fn fmt(value: f64) -> String {
    if !value.is_finite() {
        "-".to_string()
    } else if value.abs() < 10.0 {
        format!("{value:.3}")
    } else {
        format!("{value:.1}")
    }
}

/// Formats a percentage change relative to a baseline, e.g. `-42%`.
pub fn fmt_change(value: f64, baseline: f64) -> String {
    if baseline == 0.0 || !value.is_finite() || !baseline.is_finite() {
        return "-".to_string();
    }
    let pct = (value - baseline) / baseline * 100.0;
    format!("{pct:+.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let table = format_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1.0".to_string()],
                vec!["long-name".to_string(), "2.5".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "does not match header width")]
    fn mismatched_row_panics() {
        let _ = format_table(&["a", "b"], &[vec!["only-one".to_string()]]);
    }

    #[test]
    fn cdf_rendering_has_requested_points() {
        let cdf = Ecdf::new((1..=100).map(|i| i as f64).collect()).unwrap();
        let rendered = render_cdf("test", &cdf, 10);
        assert_eq!(rendered.lines().count(), 11);
        assert!(rendered.starts_with("# CDF: test"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt(0.1234), "0.123");
        assert_eq!(fmt(415.2), "415.2");
        assert_eq!(fmt(f64::NAN), "-");
        assert_eq!(fmt_change(58.0, 100.0), "-42%");
        assert_eq!(fmt_change(200.0, 100.0), "+100%");
        assert_eq!(fmt_change(1.0, 0.0), "-");
    }
}
