//! Shared workload definitions for the coordinate-system experiments.
//!
//! Figures 5 and 8–14 and Table I all run the same kind of workload — a mesh
//! of PlanetLab-like nodes probing each other for a few hours — and differ
//! only in which coordinate-stack configurations they compare and which
//! metrics they report. [`Scale`] selects how big that workload is:
//!
//! * [`Scale::Quick`] — seconds; used by the test suite to check the
//!   qualitative shape of each result.
//! * [`Scale::Standard`] — a few minutes of wall-clock time; the default for
//!   the experiment binaries and the numbers recorded in `EXPERIMENTS.md`.
//! * [`Scale::Paper`] — the paper's own dimensions (269/270 nodes, four
//!   hours of simulated time at the deployment's five-second probing
//!   interval). Expect a long run.

use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::sim::{SimConfig, Simulator};
use nc_netsim::trace::{TraceConfig, TraceGenerator};
use stable_nc::NodeConfig;

/// How large a workload the experiment should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few seconds of compute; qualitative shape only.
    Quick,
    /// The default: large enough for stable numbers, minutes of compute.
    Standard,
    /// The paper's full dimensions; expect a long run.
    Paper,
}

impl Scale {
    /// Number of nodes in the simulated mesh.
    pub fn node_count(self) -> usize {
        match self {
            Scale::Quick => 16,
            Scale::Standard => 48,
            Scale::Paper => 269,
        }
    }

    /// Simulated duration in seconds.
    pub fn duration_s(self) -> f64 {
        match self {
            Scale::Quick => 2_000.0,
            Scale::Standard => 5_400.0,
            Scale::Paper => 4.0 * 3600.0,
        }
    }

    /// Probe interval in seconds (the paper's deployment probes every 5 s).
    pub fn probe_interval_s(self) -> f64 {
        5.0
    }

    /// Start of the measurement window (the second half of the run, as in the
    /// paper; the quick scale measures only the final 40% so the stack has
    /// converged even in a seconds-long run).
    pub fn measurement_start_s(self) -> f64 {
        match self {
            Scale::Quick => self.duration_s() * 0.6,
            _ => self.duration_s() / 2.0,
        }
    }

    /// Number of observations per link used by the trace-analysis
    /// experiments (Figures 2–4).
    pub fn trace_samples_per_link(self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Standard => 20_000,
            Scale::Paper => 259_200, // 3 days at 1 s
        }
    }

    /// Number of links sampled by the per-link analyses (Figure 4).
    pub fn trace_link_count(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Standard => 40,
            Scale::Paper => 200,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scale::Quick => "quick",
            Scale::Standard => "standard",
            Scale::Paper => "paper",
        };
        write!(f, "{name}")
    }
}

/// Builds the standard coordinate-system simulator for this scale with the
/// given named configurations.
pub fn coordinate_simulator(scale: Scale, configs: Vec<(String, NodeConfig)>) -> Simulator {
    let workload = PlanetLabConfig::small(scale.node_count()).with_seed(20050502);
    let sim_config = SimConfig::new(scale.duration_s(), scale.probe_interval_s())
        .with_measurement_start(scale.measurement_start_s())
        .with_initial_neighbors(8.min(scale.node_count() - 1));
    Simulator::new(workload, sim_config, configs)
}

/// Builds the raw-trace generator (Figures 2–4) for this scale. The trace
/// probes once per second as the paper's measurement trace did.
pub fn trace_generator(scale: Scale) -> TraceGenerator {
    let network = PlanetLabConfig::small(scale.node_count().max(16)).with_seed(20050502);
    let duration_s = scale.trace_samples_per_link() as f64;
    TraceGenerator::new(TraceConfig::new(network, duration_s, 1.0))
}

/// The four configurations compared by the PlanetLab deployment experiment
/// (Figures 13–14): {MP filter, no filter} × {ENERGY application updates,
/// raw application coordinate}.
pub fn deployment_configs() -> Vec<(String, NodeConfig)> {
    use stable_nc::{FilterConfig, HeuristicConfig};
    vec![
        (
            "energy+mp".to_string(),
            NodeConfig::builder()
                .filter(FilterConfig::paper_mp())
                .heuristic(HeuristicConfig::paper_energy())
                .build(),
        ),
        (
            "raw-mp".to_string(),
            NodeConfig::builder()
                .filter(FilterConfig::paper_mp())
                .heuristic(HeuristicConfig::FollowSystem)
                .build(),
        ),
        (
            "energy+nofilter".to_string(),
            NodeConfig::builder()
                .filter(FilterConfig::Raw)
                .heuristic(HeuristicConfig::paper_energy())
                .build(),
        ),
        (
            "raw-nofilter".to_string(),
            NodeConfig::builder()
                .filter(FilterConfig::Raw)
                .heuristic(HeuristicConfig::FollowSystem)
                .build(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        assert!(Scale::Quick.node_count() < Scale::Standard.node_count());
        assert!(Scale::Standard.node_count() < Scale::Paper.node_count());
        assert!(Scale::Quick.duration_s() < Scale::Standard.duration_s());
        assert_eq!(Scale::Paper.node_count(), 269);
        assert_eq!(Scale::Paper.duration_s(), 4.0 * 3600.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Scale::Quick.to_string(), "quick");
        assert_eq!(Scale::Paper.to_string(), "paper");
    }

    #[test]
    fn deployment_configs_cover_the_two_by_two() {
        let configs = deployment_configs();
        assert_eq!(configs.len(), 4);
        let names: Vec<&str> = configs.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"energy+mp"));
        assert!(names.contains(&"raw-nofilter"));
    }

    #[test]
    fn quick_simulator_builds() {
        let sim = coordinate_simulator(
            Scale::Quick,
            vec![("mp".to_string(), NodeConfig::paper_defaults())],
        );
        assert_eq!(sim.topology().len(), Scale::Quick.node_count());
    }

    #[test]
    fn quick_trace_generator_builds() {
        let g = trace_generator(Scale::Quick);
        assert!(g.topology().len() >= 16);
    }
}
