//! Experiment harness reproducing every table and figure of *Stable and
//! Accurate Network Coordinates* (Ledlie & Seltzer).
//!
//! Each `figXX` module corresponds to one figure (plus [`table1`] for
//! Table I). A module exposes:
//!
//! * a configuration struct with `quick()` (seconds, used by the test suite),
//!   `standard()` (a few minutes, the default for the binaries) and, where it
//!   differs, `paper()` (full paper scale) presets;
//! * a `run(config)` function returning a typed result;
//! * a `render()` method on the result producing the textual table / series
//!   the paper's figure shows.
//!
//! The `src/bin/` directory contains one binary per experiment
//! (`fig02_latency_histogram`, …, `fig14_convergence`, plus `run_all`), each a
//! thin wrapper that parses the scale argument, runs the experiment and
//! prints the rendered result.
//!
//! The mapping from figures to modules, workloads and expected qualitative
//! outcomes is catalogued in the repository's `DESIGN.md` and the measured
//! numbers are recorded in `EXPERIMENTS.md`.

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod report;
pub mod sweeps;
pub mod table1;
pub mod workloads;

pub use workloads::Scale;

/// Parses the experiment scale from the process arguments: the first
/// positional argument may be `quick`, `standard` or `paper` (default
/// `standard`). Unknown values fall back to `standard` with a note on
/// stderr.
pub fn scale_from_args() -> Scale {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "standard".to_string());
    match arg.as_str() {
        "quick" => Scale::Quick,
        "standard" => Scale::Standard,
        "paper" => Scale::Paper,
        other => {
            eprintln!(
                "unknown scale '{other}', using 'standard' (choices: quick, standard, paper)"
            );
            Scale::Standard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_standard() {
        // scale_from_args reads argv; in the test harness the first argument
        // is the test filter (absent), so it falls back to standard or parses
        // whatever cargo passed — either way it must not panic.
        let _ = scale_from_args();
        assert_eq!(Scale::Standard, Scale::Standard);
    }
}
