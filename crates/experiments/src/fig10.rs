//! Figure 10: all four heuristics versus their update threshold.
//!
//! The window-less heuristics (SYSTEM and APPLICATION) can only trade
//! accuracy for stability: a low threshold behaves like the raw filter, a
//! high one starves the application of updates and error climbs. The
//! window-based heuristics (ENERGY, RELATIVE) keep error low across the whole
//! threshold range, which is the paper's argument for paying their extra
//! complexity and state.

use stable_nc::{HeuristicConfig, NodeConfig};

use crate::sweeps::{family_points, render_sweep, run_sweep, SweepPoint};
use crate::workloads::Scale;

/// Configuration of the Figure 10 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Config {
    /// Workload scale.
    pub scale: Scale,
    /// Millisecond thresholds swept for SYSTEM, APPLICATION and ENERGY.
    pub ms_thresholds: Vec<f64>,
    /// Thresholds swept for RELATIVE (fractions of the locale distance).
    pub relative_thresholds: Vec<f64>,
    /// Window size of the window-based heuristics.
    pub window: usize,
}

impl Fig10Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig10Config {
            scale: Scale::Quick,
            ms_thresholds: vec![1.0, 16.0, 128.0],
            relative_thresholds: vec![0.1, 0.3, 0.8],
            window: 16,
        }
    }

    /// Default run for the binary: the paper's ranges.
    pub fn standard() -> Self {
        Fig10Config {
            scale: Scale::Standard,
            ms_thresholds: vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            relative_thresholds: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            window: 32,
        }
    }
}

/// Result of the Figure 10 experiment.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// One point per `(heuristic, threshold)` pair.
    pub points: Vec<SweepPoint>,
}

impl Fig10Result {
    /// Points of one heuristic family ordered by threshold.
    pub fn family(&self, family: &str) -> Vec<&SweepPoint> {
        family_points(&self.points, family)
    }

    /// Worst (largest) application-level median relative error across the
    /// family's sweep — the quantity that explodes for the window-less
    /// heuristics at large thresholds.
    pub fn worst_error(&self, family: &str) -> f64 {
        self.family(family)
            .iter()
            .map(|p| p.median_relative_error)
            .fold(0.0, f64::max)
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        render_sweep(
            "Figure 10: threshold sweep for all four heuristics",
            &self.points,
        )
    }
}

/// Runs the Figure 10 experiment.
pub fn run(config: Fig10Config) -> Fig10Result {
    let mut entries = Vec::new();
    for &threshold in &config.ms_thresholds {
        entries.push((
            "SYSTEM".to_string(),
            threshold,
            NodeConfig::builder()
                .heuristic(HeuristicConfig::System {
                    threshold_ms: threshold,
                })
                .build(),
        ));
        entries.push((
            "APPLICATION".to_string(),
            threshold,
            NodeConfig::builder()
                .heuristic(HeuristicConfig::Application {
                    threshold_ms: threshold,
                })
                .build(),
        ));
        entries.push((
            "ENERGY".to_string(),
            threshold,
            NodeConfig::builder()
                .heuristic(HeuristicConfig::Energy {
                    threshold,
                    window: config.window,
                })
                .build(),
        ));
    }
    for &threshold in &config.relative_thresholds {
        entries.push((
            "RELATIVE".to_string(),
            threshold,
            NodeConfig::builder()
                .heuristic(HeuristicConfig::Relative {
                    threshold,
                    window: config.window,
                })
                .build(),
        ));
    }
    Fig10Result {
        points: run_sweep(config.scale, entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_families_are_present() {
        let result = run(Fig10Config::quick());
        for family in ["SYSTEM", "APPLICATION", "ENERGY", "RELATIVE"] {
            assert!(
                !result.family(family).is_empty(),
                "missing sweep points for {family}"
            );
        }
    }

    #[test]
    fn window_based_heuristics_hold_accuracy_at_large_thresholds() {
        let result = run(Fig10Config::quick());
        // At the largest millisecond threshold, the APPLICATION heuristic has
        // effectively stopped updating, so its error should be at least as
        // bad as ENERGY's (which keeps publishing window centroids).
        let application_worst = result.worst_error("APPLICATION");
        let energy_worst = result.worst_error("ENERGY");
        assert!(
            energy_worst <= application_worst + 0.05,
            "ENERGY worst error {energy_worst:.3} should not exceed APPLICATION's {application_worst:.3}"
        );
    }

    #[test]
    fn render_contains_every_family() {
        let result = run(Fig10Config::quick());
        let text = result.render();
        for family in ["SYSTEM", "APPLICATION", "ENERGY", "RELATIVE"] {
            assert!(text.contains(family));
        }
    }
}
