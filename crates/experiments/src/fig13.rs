//! Figure 13: the PlanetLab deployment comparison — the paper's headline
//! result.
//!
//! Four configurations run side by side on the deployment workload:
//! {MP filter, no filter} × {ENERGY application updates, raw application
//! coordinate}. The paper reports CDFs over nodes of the 95th-percentile
//! relative error and of instability, and summarises: the enhancements
//! combine to reduce the median of the 95th-percentile relative error by
//! 54 % and instability by 96 % compared to the original algorithm.

use nc_netsim::metrics::{ConfigMetrics, SimReport};
use nc_stats::Ecdf;

use crate::report::render_cdf;
use crate::workloads::{coordinate_simulator, deployment_configs, Scale};

/// Configuration of the Figure 13 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Config {
    /// Workload scale.
    pub scale: Scale,
}

impl Fig13Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig13Config {
            scale: Scale::Quick,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Fig13Config {
            scale: Scale::Standard,
        }
    }
}

/// Result of the Figure 13 experiment.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// The underlying simulation report with all four configurations.
    pub report: SimReport,
}

impl Fig13Result {
    /// Metrics of one of the four configurations (`energy+mp`, `raw-mp`,
    /// `energy+nofilter`, `raw-nofilter`).
    pub fn config(&self, name: &str) -> &ConfigMetrics {
        self.report
            .config(name)
            .expect("all four configurations ran")
    }

    /// Median over nodes of the per-node 95th-percentile application-level
    /// relative error for a configuration.
    pub fn median_p95_error(&self, name: &str) -> f64 {
        self.config(name).median_of_application_p95_relative_error()
    }

    /// Aggregate application-level instability of a configuration.
    pub fn instability(&self, name: &str) -> f64 {
        self.config(name).aggregate_application_instability()
    }

    /// Percentage reduction in the median 95th-percentile relative error of
    /// the fully enhanced stack relative to the original algorithm (the
    /// paper reports 54 %).
    pub fn error_reduction_percent(&self) -> f64 {
        let enhanced = self.median_p95_error("energy+mp");
        let original = self.median_p95_error("raw-nofilter");
        if original <= 0.0 {
            return 0.0;
        }
        (1.0 - enhanced / original) * 100.0
    }

    /// Percentage reduction in instability of the fully enhanced stack
    /// relative to the original algorithm (the paper reports 96 %).
    pub fn instability_reduction_percent(&self) -> f64 {
        let enhanced = self.instability("energy+mp");
        let original = self.instability("raw-nofilter");
        if original <= 0.0 {
            return 0.0;
        }
        (1.0 - enhanced / original) * 100.0
    }

    /// Renders the CDF panels and the headline reductions.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 13: deployment comparison (second half of the run)\n\n");
        let names = [
            ("Energy+MP Filter", "energy+mp"),
            ("Raw MP Filter", "raw-mp"),
            ("Energy+No Filter", "energy+nofilter"),
            ("Raw No Filter", "raw-nofilter"),
        ];
        for (label, name) in names {
            if let Ok(cdf) = Ecdf::new(self.config(name).application_p95_relative_errors()) {
                out.push_str(&render_cdf(
                    &format!("95th percentile relative error — {label}"),
                    &cdf,
                    10,
                ));
            }
        }
        out.push('\n');
        for (label, name) in names {
            if let Ok(cdf) = Ecdf::new(self.config(name).per_node_application_instability()) {
                out.push_str(&render_cdf(
                    &format!("instability (ms/s) — {label}"),
                    &cdf,
                    10,
                ));
            }
        }
        out.push_str(&format!(
            "\nheadline: median 95th-pct relative error reduced by {:.0}% (paper: 54%), \
             instability reduced by {:.0}% (paper: 96%)\n",
            self.error_reduction_percent(),
            self.instability_reduction_percent()
        ));
        out
    }
}

/// Runs the Figure 13 experiment.
pub fn run(config: Fig13Config) -> Fig13Result {
    let report = coordinate_simulator(config.scale, deployment_configs()).run();
    Fig13Result { report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enhanced_stack_beats_the_original_on_both_metrics() {
        let result = run(Fig13Config::quick());
        assert!(
            result.median_p95_error("energy+mp") < result.median_p95_error("raw-nofilter"),
            "error: enhanced {:.3} vs original {:.3}",
            result.median_p95_error("energy+mp"),
            result.median_p95_error("raw-nofilter")
        );
        assert!(
            result.instability("energy+mp") < result.instability("raw-nofilter"),
            "instability: enhanced {:.1} vs original {:.1}",
            result.instability("energy+mp"),
            result.instability("raw-nofilter")
        );
    }

    #[test]
    fn reductions_are_substantial() {
        let result = run(Fig13Config::quick());
        assert!(
            result.error_reduction_percent() > 20.0,
            "error reduction {:.0}%",
            result.error_reduction_percent()
        );
        assert!(
            result.instability_reduction_percent() > 50.0,
            "instability reduction {:.0}%",
            result.instability_reduction_percent()
        );
    }

    #[test]
    fn both_enhancements_contribute() {
        let result = run(Fig13Config::quick());
        // The filter alone improves stability over the original…
        assert!(result.instability("raw-mp") < result.instability("raw-nofilter"));
        // …and adding ENERGY on top of the filter improves it further.
        assert!(result.instability("energy+mp") < result.instability("raw-mp"));
    }

    #[test]
    fn render_contains_headline() {
        let result = run(Fig13Config::quick());
        assert!(result.render().contains("headline"));
        assert!(result.render().contains("Raw No Filter"));
    }
}
