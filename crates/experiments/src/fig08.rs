//! Figure 8: instability and median relative error versus update threshold
//! for the window-based heuristics (ENERGY and RELATIVE).
//!
//! The paper varies the ENERGY threshold τ over 1–256 and the RELATIVE
//! threshold ε_r over 0.1–0.9 with the window size fixed at 32, and finds
//! that both heuristics trade a steady decline in application updates for a
//! very gradual loss of accuracy — the knee the paper picks is τ = 8 for
//! ENERGY and ε_r = 0.3 for RELATIVE.

use stable_nc::{HeuristicConfig, NodeConfig};

use crate::sweeps::{family_points, render_sweep, run_sweep, SweepPoint};
use crate::workloads::Scale;

/// Configuration of the Figure 8 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08Config {
    /// Workload scale.
    pub scale: Scale,
    /// ENERGY thresholds to sweep.
    pub energy_thresholds: Vec<f64>,
    /// RELATIVE thresholds to sweep.
    pub relative_thresholds: Vec<f64>,
    /// Window size shared by both heuristics.
    pub window: usize,
}

impl Fig08Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig08Config {
            scale: Scale::Quick,
            energy_thresholds: vec![1.0, 8.0, 64.0],
            relative_thresholds: vec![0.1, 0.5, 0.9],
            window: 16,
        }
    }

    /// Default run for the binary: the paper's sweep ranges, window 32.
    pub fn standard() -> Self {
        Fig08Config {
            scale: Scale::Standard,
            energy_thresholds: vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            relative_thresholds: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            window: 32,
        }
    }
}

/// Result of the Figure 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig08Result {
    /// One point per `(heuristic, threshold)` pair.
    pub points: Vec<SweepPoint>,
}

impl Fig08Result {
    /// Points of one heuristic family ordered by threshold.
    pub fn family(&self, family: &str) -> Vec<&SweepPoint> {
        family_points(&self.points, family)
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        render_sweep(
            "Figure 8: threshold sweep for ENERGY and RELATIVE (window-based heuristics)",
            &self.points,
        )
    }
}

/// Runs the Figure 8 experiment.
pub fn run(config: Fig08Config) -> Fig08Result {
    let mut entries = Vec::new();
    for &threshold in &config.energy_thresholds {
        entries.push((
            "ENERGY".to_string(),
            threshold,
            NodeConfig::builder()
                .heuristic(HeuristicConfig::Energy {
                    threshold,
                    window: config.window,
                })
                .build(),
        ));
    }
    for &threshold in &config.relative_thresholds {
        entries.push((
            "RELATIVE".to_string(),
            threshold,
            NodeConfig::builder()
                .heuristic(HeuristicConfig::Relative {
                    threshold,
                    window: config.window,
                })
                .build(),
        ));
    }
    Fig08Result {
        points: run_sweep(config.scale, entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_thresholds_reduce_update_pressure() {
        let result = run(Fig08Config::quick());
        for family in ["ENERGY", "RELATIVE"] {
            let points = result.family(family);
            assert!(points.len() >= 3);
            let first = points.first().unwrap();
            let last = points.last().unwrap();
            // The robust quick-scale signal is the update rate; the
            // instability trend needs the longer standard run to emerge for
            // RELATIVE (whose rare updates are individually larger).
            assert!(
                last.updates_per_node_second <= first.updates_per_node_second + 1e-9,
                "{family}: update rate should not grow with the threshold ({:.4} -> {:.4})",
                first.updates_per_node_second,
                last.updates_per_node_second
            );
        }
        // At quick scale the extreme thresholds publish so rarely that a
        // single large update dominates the instability estimate (the same
        // caveat as for RELATIVE above), so compare the paper's knee (the
        // middle sweep point, τ = 8) against the most aggressive setting,
        // with a small tolerance for that seconds-scale sampling noise (the
        // clean monotone trend needs the standard run).
        let energy = result.family("ENERGY");
        assert!(
            energy[1].instability <= energy.first().unwrap().instability * 1.10 + 1e-9,
            "ENERGY: the paper's knee should not be less stable than τ = {} ({:.4} vs {:.4})",
            energy.first().unwrap().parameter,
            energy[1].instability,
            energy.first().unwrap().instability
        );
    }

    #[test]
    fn accuracy_stays_in_a_reasonable_band() {
        let result = run(Fig08Config::quick());
        for p in &result.points {
            assert!(
                p.median_relative_error.is_finite() && p.median_relative_error < 2.0,
                "{}@{}: error {:.3}",
                p.family,
                p.parameter,
                p.median_relative_error
            );
        }
    }

    #[test]
    fn render_contains_both_families() {
        let result = run(Fig08Config::quick());
        let text = result.render();
        assert!(text.contains("ENERGY"));
        assert!(text.contains("RELATIVE"));
    }
}
