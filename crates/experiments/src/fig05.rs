//! Figure 5: accuracy and stability of Vivaldi with and without the
//! moving-percentile filter.
//!
//! The paper runs Vivaldi on a four-hour trace section twice — once on raw
//! observations and once behind the MP filter — and reports, for the second
//! half of the run, CDFs over nodes of (a) median relative error, (b) 95th
//! percentile relative error, (c) 95th percentile per-node coordinate change
//! and (d) per-node instability, plus a histogram showing the filter trims
//! only the tail of the latency distribution.

use nc_filters::{LatencyFilter, MovingPercentileFilter};
use nc_netsim::metrics::ConfigMetrics;
use nc_stats::{Ecdf, Histogram};
use stable_nc::{FilterConfig, HeuristicConfig, NodeConfig};

use crate::report::render_cdf;
use crate::workloads::{coordinate_simulator, Scale};

/// Configuration of the Figure 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig05Config {
    /// Workload scale.
    pub scale: Scale,
}

impl Fig05Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig05Config {
            scale: Scale::Quick,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Fig05Config {
            scale: Scale::Standard,
        }
    }
}

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig05Result {
    /// Metrics of the MP-filtered configuration.
    pub mp: ConfigMetrics,
    /// Metrics of the unfiltered configuration.
    pub raw: ConfigMetrics,
    /// Histogram of raw observations of a sample of links (paper bins).
    pub raw_histogram: Histogram,
    /// Histogram of the same observations after MP filtering.
    pub filtered_histogram: Histogram,
}

impl Fig05Result {
    /// CDF of per-node median relative error for both configurations.
    pub fn median_error_cdfs(&self) -> (Ecdf, Ecdf) {
        (
            self.mp.median_relative_error_cdf().expect("mp has samples"),
            self.raw
                .median_relative_error_cdf()
                .expect("raw has samples"),
        )
    }

    /// Renders every panel of the figure as text.
    pub fn render(&self) -> String {
        /// Extracts one panel's per-node series from a configuration's metrics.
        type PanelSeries = fn(&ConfigMetrics) -> Vec<f64>;
        let mut out = String::from("Figure 5: MP filter vs no filter\n\n");
        let panels: [(&str, PanelSeries); 4] = [
            ("median relative error per node", |m| {
                m.median_relative_errors()
            }),
            ("95th percentile relative error per node", |m| {
                m.p95_relative_errors()
            }),
            ("95th percentile coordinate change per node (ms)", |m| {
                m.p95_coordinate_changes()
            }),
            ("instability per node (ms/s)", |m| m.per_node_instability()),
        ];
        for (caption, extract) in panels {
            for (name, metrics) in [("MP Filter", &self.mp), ("No Filter", &self.raw)] {
                if let Ok(cdf) = Ecdf::new(extract(metrics)) {
                    out.push_str(&render_cdf(&format!("{caption} — {name}"), &cdf, 10));
                }
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "aggregate instability: MP {:.1} ms/s vs raw {:.1} ms/s\n",
            self.mp.aggregate_instability(),
            self.raw.aggregate_instability()
        ));
        out.push_str(&format!(
            "median of per-node median relative error: MP {:.3} vs raw {:.3}\n\n",
            self.mp.median_of_median_relative_error(),
            self.raw.median_of_median_relative_error()
        ));
        out.push_str("raw observation histogram:\n");
        out.push_str(&self.raw_histogram.to_table());
        out.push_str("\nMP-filtered histogram (tail trimmed, body intact):\n");
        out.push_str(&self.filtered_histogram.to_table());
        out
    }
}

/// Runs the Figure 5 experiment.
pub fn run(config: Fig05Config) -> Fig05Result {
    let configs = vec![
        (
            "mp".to_string(),
            NodeConfig::builder()
                .filter(FilterConfig::paper_mp())
                .heuristic(HeuristicConfig::FollowSystem)
                .build(),
        ),
        (
            "raw".to_string(),
            NodeConfig::builder()
                .filter(FilterConfig::Raw)
                .heuristic(HeuristicConfig::FollowSystem)
                .build(),
        ),
    ];
    let report = coordinate_simulator(config.scale, configs).run();
    let mp = report.config("mp").expect("mp config ran").clone();
    let raw = report.config("raw").expect("raw config ran").clone();

    // Histogram panel: replay the MP filter over a handful of link streams.
    let mut generator = crate::workloads::trace_generator(config.scale);
    let n = generator.topology().len();
    let mut raw_histogram = Histogram::paper_figure2_bins();
    let mut filtered_histogram = Histogram::paper_figure2_bins();
    let samples = (config.scale.trace_samples_per_link() / 8).max(500);
    for l in 0..8 {
        let a = l % n;
        let b = (l + 1 + l % 3) % n;
        if a == b {
            continue;
        }
        let mut filter = MovingPercentileFilter::paper_defaults();
        for record in generator.link_observations(a, b, samples) {
            raw_histogram.record(record.rtt_ms);
            if let Some(filtered) = filter.observe(record.rtt_ms) {
                filtered_histogram.record(filtered);
            }
        }
    }

    Fig05Result {
        mp,
        raw,
        raw_histogram,
        filtered_histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mp_filter_improves_accuracy_and_stability() {
        let result = run(Fig05Config::quick());
        assert!(
            result.mp.median_of_median_relative_error()
                <= result.raw.median_of_median_relative_error(),
            "MP filter should not be less accurate ({:.3} vs {:.3})",
            result.mp.median_of_median_relative_error(),
            result.raw.median_of_median_relative_error()
        );
        assert!(
            result.mp.aggregate_instability() < result.raw.aggregate_instability(),
            "MP filter should be more stable ({:.1} vs {:.1})",
            result.mp.aggregate_instability(),
            result.raw.aggregate_instability()
        );
    }

    #[test]
    fn filter_trims_tail_but_keeps_body() {
        let result = run(Fig05Config::quick());
        let raw_tail = result.raw_histogram.fraction_at_or_above(1000.0);
        let filtered_tail = result.filtered_histogram.fraction_at_or_above(1000.0);
        assert!(
            filtered_tail < raw_tail,
            "filtered tail {filtered_tail:.4} should be smaller than raw {raw_tail:.4}"
        );
        // The body of the distribution survives: the most common bin is the
        // same in both histograms.
        let busiest = |h: &Histogram| {
            h.bins()
                .iter()
                .enumerate()
                .max_by_key(|(_, b)| b.count)
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(
            busiest(&result.raw_histogram),
            busiest(&result.filtered_histogram)
        );
    }

    #[test]
    fn render_includes_all_panels() {
        let result = run(Fig05Config::quick());
        let text = result.render();
        assert!(text.contains("median relative error per node"));
        assert!(text.contains("instability per node"));
        assert!(text.contains("MP-filtered histogram"));
    }
}
