//! Shared machinery for the heuristic parameter sweeps (Figures 8–10, 12).
//!
//! Every sweep compares application-level accuracy and stability across a set
//! of heuristic configurations that all run on the *same* workload and
//! observation streams, which the simulator supports natively by running the
//! configurations side by side in one pass.

use nc_netsim::metrics::ConfigMetrics;
use stable_nc::NodeConfig;

use crate::report::{fmt, format_table};
use crate::workloads::{coordinate_simulator, Scale};

/// One point of a heuristic sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Heuristic family label ("ENERGY", "RELATIVE", …).
    pub family: String,
    /// The swept parameter value (threshold or window size).
    pub parameter: f64,
    /// Median over nodes of the per-node median application-level relative
    /// error.
    pub median_relative_error: f64,
    /// Aggregate application-level instability (ms/s).
    pub instability: f64,
    /// Fraction of nodes publishing an application-level update per second.
    pub updates_per_node_second: f64,
}

/// Extracts the application-level summary of one configuration.
pub fn application_summary(family: &str, parameter: f64, metrics: &ConfigMetrics) -> SweepPoint {
    SweepPoint {
        family: family.to_string(),
        parameter,
        median_relative_error: metrics.median_of_application_median_relative_error(),
        instability: metrics.aggregate_application_instability(),
        updates_per_node_second: metrics.application_updates_per_node_second(),
    }
}

/// Runs every entry of the sweep side by side on one workload and returns the
/// application-level summary of each.
///
/// Each entry is `(family, parameter, config)`; the simulator configuration
/// name is derived from the pair and must therefore be unique within a sweep.
pub fn run_sweep(scale: Scale, entries: Vec<(String, f64, NodeConfig)>) -> Vec<SweepPoint> {
    let named: Vec<(String, NodeConfig)> = entries
        .iter()
        .map(|(family, parameter, config)| (format!("{family}@{parameter}"), config.clone()))
        .collect();
    let report = coordinate_simulator(scale, named).run();
    entries
        .iter()
        .map(|(family, parameter, _)| {
            let metrics = report
                .config(&format!("{family}@{parameter}"))
                .expect("every sweep entry ran");
            application_summary(family, *parameter, metrics)
        })
        .collect()
}

/// Renders sweep points grouped by family as an aligned table.
pub fn render_sweep(caption: &str, points: &[SweepPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.family.clone(),
                fmt(p.parameter),
                fmt(p.median_relative_error),
                fmt(p.instability),
                format!("{:.3}%", p.updates_per_node_second * 100.0),
            ]
        })
        .collect();
    let mut out = format!("{caption}\n\n");
    out.push_str(&format_table(
        &[
            "heuristic",
            "parameter",
            "median rel error",
            "instability",
            "updates/node/s",
        ],
        &rows,
    ));
    out
}

/// Points of one family, ordered by parameter.
pub fn family_points<'a>(points: &'a [SweepPoint], family: &str) -> Vec<&'a SweepPoint> {
    let mut out: Vec<&SweepPoint> = points.iter().filter(|p| p.family == family).collect();
    out.sort_by(|a, b| {
        a.parameter
            .partial_cmp(&b.parameter)
            .expect("finite parameters")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stable_nc::HeuristicConfig;

    #[test]
    fn sweep_runs_every_entry() {
        let entries = vec![
            (
                "ENERGY".to_string(),
                4.0,
                NodeConfig::builder()
                    .heuristic(HeuristicConfig::Energy {
                        threshold: 4.0,
                        window: 8,
                    })
                    .build(),
            ),
            (
                "ENERGY".to_string(),
                64.0,
                NodeConfig::builder()
                    .heuristic(HeuristicConfig::Energy {
                        threshold: 64.0,
                        window: 8,
                    })
                    .build(),
            ),
        ];
        let points = run_sweep(Scale::Quick, entries);
        assert_eq!(points.len(), 2);
        let family = family_points(&points, "ENERGY");
        assert_eq!(family.len(), 2);
        assert!(family[0].parameter < family[1].parameter);
        // A higher threshold can only reduce (or keep equal) the number of
        // application updates.
        assert!(family[1].updates_per_node_second <= family[0].updates_per_node_second + 1e-9);
        let text = render_sweep("test sweep", &points);
        assert!(text.contains("ENERGY"));
    }
}
