//! Figure 7: coordinates drift over time — they do not merely oscillate or
//! rotate.
//!
//! The paper tracks four nodes, one per region, over three hours and shows
//! that their coordinates move in consistent directions, reflecting genuine
//! changes in the underlying network. The consequence is that the
//! application-level coordinate *must* be updated eventually; the question
//! the later sections answer is *when*.

use nc_vivaldi::Coordinate;
use stable_nc::NodeConfig;

use crate::workloads::{coordinate_simulator, Scale};

/// Configuration of the Figure 7 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig07Config {
    /// Workload scale.
    pub scale: Scale,
    /// Interval between trajectory samples (seconds).
    pub track_interval_s: f64,
}

impl Fig07Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig07Config {
            scale: Scale::Quick,
            track_interval_s: 30.0,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Fig07Config {
            scale: Scale::Standard,
            track_interval_s: 120.0,
        }
    }
}

/// Trajectory summary of one tracked node.
#[derive(Debug, Clone)]
pub struct NodeTrajectory {
    /// Node index.
    pub node: usize,
    /// Region label for the report.
    pub region: String,
    /// First sampled coordinate (after the measurement window opens).
    pub start: Coordinate,
    /// Last sampled coordinate.
    pub end: Coordinate,
    /// Straight-line distance between start and end (ms).
    pub net_displacement_ms: f64,
    /// Sum of the distances between consecutive samples (ms).
    pub path_length_ms: f64,
}

impl NodeTrajectory {
    /// Directionality of the movement: 1.0 means a straight march, values
    /// near 0 mean oscillation around a fixed point.
    pub fn directionality(&self) -> f64 {
        if self.path_length_ms <= 0.0 {
            0.0
        } else {
            self.net_displacement_ms / self.path_length_ms
        }
    }
}

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig07Result {
    /// One trajectory per tracked node.
    pub trajectories: Vec<NodeTrajectory>,
}

impl Fig07Result {
    /// Renders the per-node trajectory summary.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 7: coordinate drift of one node per region over the run\n\n");
        for t in &self.trajectories {
            out.push_str(&format!(
                "node {:3} ({:8}): start {}  end {}  net {:.1} ms  path {:.1} ms  directionality {:.2}\n",
                t.node,
                t.region,
                t.start,
                t.end,
                t.net_displacement_ms,
                t.path_length_ms,
                t.directionality()
            ));
        }
        out
    }
}

/// Runs the Figure 7 experiment: the standard workload with one tracked node
/// per region, using the paper's full stack.
pub fn run(config: Fig07Config) -> Fig07Result {
    // Build a throwaway simulator first to learn the topology and pick one
    // node per region, then rebuild with tracking enabled.
    let probe = coordinate_simulator(
        config.scale,
        vec![("probe".to_string(), NodeConfig::paper_defaults())],
    );
    let mut tracked: Vec<(usize, String)> = Vec::new();
    for region in nc_netsim::topology::Region::ALL {
        if let Some(&node) = probe.topology().nodes_in_region(region).first() {
            tracked.push((node, region.to_string()));
        }
    }
    drop(probe);

    let workload =
        nc_netsim::planetlab::PlanetLabConfig::small(config.scale.node_count()).with_seed(20050502);
    let sim_config =
        nc_netsim::sim::SimConfig::new(config.scale.duration_s(), config.scale.probe_interval_s())
            .with_measurement_start(config.scale.measurement_start_s())
            .with_initial_neighbors(8.min(config.scale.node_count() - 1))
            .with_tracked_nodes(
                tracked.iter().map(|(n, _)| *n).collect(),
                config.track_interval_s,
            );
    let report = nc_netsim::sim::Simulator::new(
        workload,
        sim_config,
        vec![("mp".to_string(), NodeConfig::paper_defaults())],
    )
    .run();

    let metrics = report.config("mp").expect("configuration ran");
    let measurement_start = report.measurement_start_s;
    let mut trajectories = Vec::new();
    for (node, region) in tracked {
        let samples: Vec<&nc_netsim::metrics::TrackedCoordinate> = metrics
            .tracked
            .iter()
            .filter(|t| t.node == node && t.time_s >= measurement_start)
            .collect();
        if samples.len() < 2 {
            continue;
        }
        let start = samples.first().expect("len >= 2").system.clone();
        let end = samples.last().expect("len >= 2").system.clone();
        let net = start.distance(&end);
        let path: f64 = samples
            .windows(2)
            .map(|w| w[0].system.distance(&w[1].system))
            .sum();
        trajectories.push(NodeTrajectory {
            node,
            region,
            start,
            end,
            net_displacement_ms: net,
            path_length_ms: path,
        });
    }
    Fig07Result { trajectories }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_one_node_per_populated_region() {
        let result = run(Fig07Config::quick());
        assert!(
            result.trajectories.len() >= 3,
            "expected trajectories for most regions, got {}",
            result.trajectories.len()
        );
    }

    #[test]
    fn coordinates_keep_moving() {
        let result = run(Fig07Config::quick());
        for t in &result.trajectories {
            assert!(
                t.path_length_ms > 0.0,
                "node {} never moved during the measurement window",
                t.node
            );
        }
        // At least one node shows genuine net displacement rather than pure
        // oscillation.
        assert!(
            result
                .trajectories
                .iter()
                .any(|t| t.net_displacement_ms > 1.0),
            "coordinates should drift, not just wiggle"
        );
    }

    #[test]
    fn render_lists_regions() {
        let result = run(Fig07Config::quick());
        let text = result.render();
        assert!(text.contains("Figure 7"));
        assert!(text.contains("directionality"));
    }
}
