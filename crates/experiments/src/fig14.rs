//! Figure 14: relative error and instability over time.
//!
//! The same four deployment configurations as Figure 13, but reported as a
//! time series: the median relative error and the mean instability per
//! ten-minute interval. After a convergence period of roughly half an hour,
//! the enhanced configurations settle into a smoother and more accurate
//! regime than the unfiltered ones.

use nc_netsim::metrics::ConfigMetrics;
use nc_stats::timeseries::{BinStatistic, TimeBinner};

use crate::report::format_table;
use crate::workloads::{deployment_configs, Scale};

/// Configuration of the Figure 14 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig14Config {
    /// Workload scale.
    pub scale: Scale,
    /// Width of the reporting bins in seconds (the paper uses ten minutes).
    pub bin_width_s: f64,
}

impl Fig14Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig14Config {
            scale: Scale::Quick,
            bin_width_s: 120.0,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Fig14Config {
            scale: Scale::Standard,
            bin_width_s: 600.0,
        }
    }
}

/// Time series of one configuration.
#[derive(Debug, Clone)]
pub struct ConfigTimeSeries {
    /// Configuration name.
    pub name: String,
    /// `(bin_start_s, median relative error)` per bin.
    pub error_over_time: Vec<(f64, f64)>,
    /// `(bin_start_s, mean per-node instability in ms/s)` per bin.
    pub instability_over_time: Vec<(f64, f64)>,
}

/// Result of the Figure 14 experiment.
#[derive(Debug, Clone)]
pub struct Fig14Result {
    /// One time series per configuration.
    pub series: Vec<ConfigTimeSeries>,
}

impl Fig14Result {
    /// The series of a given configuration.
    pub fn config(&self, name: &str) -> Option<&ConfigTimeSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders both panels as tables with one column per configuration.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 14: error and instability over time\n\n");
        for (caption, select) in [
            (
                "median relative error per interval",
                (|s: &ConfigTimeSeries| s.error_over_time.clone())
                    as fn(&ConfigTimeSeries) -> Vec<(f64, f64)>,
            ),
            (
                "mean instability per interval (ms/s)",
                |s: &ConfigTimeSeries| s.instability_over_time.clone(),
            ),
        ] {
            out.push_str(&format!("{caption}:\n"));
            let mut headers = vec!["time (h)".to_string()];
            headers.extend(self.series.iter().map(|s| s.name.clone()));
            let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
            let bin_count = self
                .series
                .iter()
                .map(|s| select(s).len())
                .max()
                .unwrap_or(0);
            let mut rows = Vec::new();
            for bin in 0..bin_count {
                let mut row = Vec::new();
                let time = self
                    .series
                    .first()
                    .and_then(|s| select(s).get(bin).map(|(t, _)| *t))
                    .unwrap_or(0.0);
                row.push(format!("{:.2}", time / 3600.0));
                for s in &self.series {
                    let value = select(s).get(bin).map(|(_, v)| *v).unwrap_or(f64::NAN);
                    row.push(if value.is_finite() {
                        format!("{value:.3}")
                    } else {
                        "-".to_string()
                    });
                }
                rows.push(row);
            }
            out.push_str(&format_table(&header_refs, &rows));
            out.push('\n');
        }
        out
    }
}

fn series_for(
    name: &str,
    metrics: &ConfigMetrics,
    duration_s: f64,
    bin_width_s: f64,
) -> ConfigTimeSeries {
    let node_count = metrics.nodes.len().max(1) as f64;
    let mut error_binner = TimeBinner::new(0.0, bin_width_s).expect("positive width");
    let mut displacement_binner = TimeBinner::new(0.0, bin_width_s).expect("positive width");
    for node in &metrics.nodes {
        for &(time, error) in &node.application_errors {
            error_binner.record(time, error);
        }
        for &(time, displacement) in &node.application_displacements {
            displacement_binner.record(time, displacement);
        }
    }
    let _ = duration_s;
    let error_over_time = error_binner
        .bins(BinStatistic::Median)
        .into_iter()
        .filter_map(|b| b.value.map(|v| (b.start, v)))
        .collect();
    let instability_over_time = displacement_binner
        .bins(BinStatistic::Sum)
        .into_iter()
        .map(|b| {
            let total = b.value.unwrap_or(0.0);
            (b.start, total / (bin_width_s * node_count))
        })
        .collect();
    ConfigTimeSeries {
        name: name.to_string(),
        error_over_time,
        instability_over_time,
    }
}

/// Runs the Figure 14 experiment. The whole run is measured (no warm-up
/// exclusion) because the convergence period itself is the point of the
/// figure.
pub fn run(config: Fig14Config) -> Fig14Result {
    let workload =
        nc_netsim::planetlab::PlanetLabConfig::small(config.scale.node_count()).with_seed(20050502);
    let sim_config =
        nc_netsim::sim::SimConfig::new(config.scale.duration_s(), config.scale.probe_interval_s())
            .with_measurement_start(0.0)
            .with_initial_neighbors(8.min(config.scale.node_count() - 1));
    let report = nc_netsim::sim::Simulator::new(workload, sim_config, deployment_configs()).run();

    let series = report
        .iter()
        .map(|(name, metrics)| {
            series_for(name, metrics, config.scale.duration_s(), config.bin_width_s)
        })
        .collect();
    Fig14Result { series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_has_a_series() {
        let result = run(Fig14Config::quick());
        assert_eq!(result.series.len(), 4);
        for s in &result.series {
            assert!(
                !s.error_over_time.is_empty(),
                "{} has no error bins",
                s.name
            );
        }
    }

    #[test]
    fn error_improves_after_convergence() {
        let result = run(Fig14Config::quick());
        let enhanced = result.config("energy+mp").unwrap();
        let first = enhanced.error_over_time.first().unwrap().1;
        let last = enhanced.error_over_time.last().unwrap().1;
        assert!(
            last <= first * 1.5 + 0.05,
            "error should not blow up over time (first {first:.3}, last {last:.3})"
        );
    }

    #[test]
    fn enhanced_stack_ends_more_stable_than_original() {
        let result = run(Fig14Config::quick());
        let enhanced = result.config("energy+mp").unwrap();
        let original = result.config("raw-nofilter").unwrap();
        let tail_mean = |series: &[(f64, f64)]| {
            let half = series.len() / 2;
            let tail = &series[half..];
            tail.iter().map(|(_, v)| v).sum::<f64>() / tail.len().max(1) as f64
        };
        assert!(
            tail_mean(&enhanced.instability_over_time) < tail_mean(&original.instability_over_time),
            "enhanced stack should be steadier in the second half"
        );
    }

    #[test]
    fn render_produces_two_panels() {
        let result = run(Fig14Config::quick());
        let text = result.render();
        assert!(text.contains("median relative error per interval"));
        assert!(text.contains("mean instability per interval"));
    }
}
