//! Figure 11: application-level suppression versus the raw MP filter.
//!
//! With the parameters chosen in the sweeps (window 32, ENERGY τ = 8,
//! RELATIVE ε_r = 0.3), the paper shows CDFs over nodes of median relative
//! error and instability for ENERGY+MP and RELATIVE+MP against the raw MP
//! filter: accuracy is essentially unchanged while the whole instability
//! distribution shifts into a far more stable regime.

use nc_netsim::metrics::ConfigMetrics;
use nc_stats::Ecdf;
use stable_nc::{FilterConfig, HeuristicConfig, NodeConfig};

use crate::report::render_cdf;
use crate::workloads::{coordinate_simulator, Scale};

/// Configuration of the Figure 11 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Config {
    /// Workload scale.
    pub scale: Scale,
}

impl Fig11Config {
    /// Seconds-scale run for tests.
    pub fn quick() -> Self {
        Fig11Config {
            scale: Scale::Quick,
        }
    }

    /// Default run for the binary.
    pub fn standard() -> Self {
        Fig11Config {
            scale: Scale::Standard,
        }
    }
}

/// Result of the Figure 11 experiment.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// ENERGY + MP filter.
    pub energy: ConfigMetrics,
    /// RELATIVE + MP filter.
    pub relative: ConfigMetrics,
    /// Raw MP filter (application coordinate follows the system coordinate).
    pub raw_mp: ConfigMetrics,
}

impl Fig11Result {
    /// Renders the two CDF panels.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 11: application-level suppression vs the raw MP filter\n\n");
        let configs = [
            ("Energy+MP Filter", &self.energy),
            ("Relative+MP Filter", &self.relative),
            ("Raw MP Filter", &self.raw_mp),
        ];
        for (name, metrics) in configs {
            if let Ok(cdf) = Ecdf::new(metrics.application_median_relative_errors()) {
                out.push_str(&render_cdf(
                    &format!("median relative error — {name}"),
                    &cdf,
                    10,
                ));
            }
        }
        out.push('\n');
        for (name, metrics) in configs {
            if let Ok(cdf) = Ecdf::new(metrics.per_node_application_instability()) {
                out.push_str(&render_cdf(
                    &format!("instability (ms/s) — {name}"),
                    &cdf,
                    10,
                ));
            }
        }
        out.push_str(&format!(
            "\naggregate application-level instability: energy {:.2}, relative {:.2}, raw MP {:.2} ms/s\n",
            self.energy.aggregate_application_instability(),
            self.relative.aggregate_application_instability(),
            self.raw_mp.aggregate_application_instability()
        ));
        out
    }
}

/// Runs the Figure 11 experiment.
pub fn run(config: Fig11Config) -> Fig11Result {
    let configs = vec![
        (
            "energy".to_string(),
            NodeConfig::builder()
                .filter(FilterConfig::paper_mp())
                .heuristic(HeuristicConfig::paper_energy())
                .build(),
        ),
        (
            "relative".to_string(),
            NodeConfig::builder()
                .filter(FilterConfig::paper_mp())
                .heuristic(HeuristicConfig::paper_relative())
                .build(),
        ),
        (
            "raw-mp".to_string(),
            NodeConfig::builder()
                .filter(FilterConfig::paper_mp())
                .heuristic(HeuristicConfig::FollowSystem)
                .build(),
        ),
    ];
    let report = coordinate_simulator(config.scale, configs).run();
    Fig11Result {
        energy: report.config("energy").expect("energy ran").clone(),
        relative: report.config("relative").expect("relative ran").clone(),
        raw_mp: report.config("raw-mp").expect("raw-mp ran").clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_heuristics_are_far_more_stable_than_raw_mp() {
        let result = run(Fig11Config::quick());
        let raw = result.raw_mp.aggregate_application_instability();
        for (name, metrics) in [("energy", &result.energy), ("relative", &result.relative)] {
            let suppressed = metrics.aggregate_application_instability();
            assert!(
                suppressed < raw,
                "{name} instability {suppressed:.2} should be below raw MP {raw:.2}"
            );
        }
    }

    #[test]
    fn accuracy_stays_in_the_same_regime() {
        let result = run(Fig11Config::quick());
        let raw = result.raw_mp.median_of_application_median_relative_error();
        let energy = result.energy.median_of_application_median_relative_error();
        assert!(
            energy < raw * 3.0 + 0.2,
            "application-level error with ENERGY ({energy:.3}) should stay in the same regime as raw MP ({raw:.3})"
        );
    }

    #[test]
    fn render_contains_all_three_configs() {
        let result = run(Fig11Config::quick());
        let text = result.render();
        assert!(text.contains("Energy+MP Filter"));
        assert!(text.contains("Relative+MP Filter"));
        assert!(text.contains("Raw MP Filter"));
    }
}
