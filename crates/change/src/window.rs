//! Two-window change detection over a stream of coordinates (§V-A).
//!
//! Following Kifer, Ben-David & Gehrke (VLDB 2004), a single stream
//! `S = {s_0, s_1, …}` is split into two sets that can be compared with a
//! two-sample test: a **start** window `W_s = {s_0 … s_{k-1}}` that stops
//! growing once it holds `k` elements, and a **current** window `W_c` that
//! always holds the most recent `k` elements. When a test declares the two
//! windows different, a *change point* has occurred; both windows are cleared
//! and the process restarts from the next element.
//!
//! The windows here hold coordinates (the stream of system-level coordinates
//! produced by Vivaldi); the comparison itself is performed by the
//! RELATIVE or ENERGY heuristics, which read the windows through
//! [`TwoWindowDetector::start_window`] and
//! [`TwoWindowDetector::current_window`].

use std::collections::VecDeque;

use nc_vivaldi::Coordinate;
use serde::{Deserialize, Serialize};

/// The serializable runtime state of a [`TwoWindowDetector`]: the window
/// contents and counters, without the configured window size (which is
/// supplied when the detector is rebuilt).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorState {
    /// The frozen start window, oldest first.
    pub start: Vec<Coordinate>,
    /// The sliding current window, oldest first.
    pub current: Vec<Coordinate>,
    /// Pushes since the last change point.
    pub pushes_since_reset: u64,
    /// Total pushes over the detector's lifetime.
    pub total_pushes: u64,
    /// Change points declared so far.
    pub change_points: u64,
}

/// The paired start/current windows over a coordinate stream.
///
/// # Examples
///
/// ```
/// use nc_change::TwoWindowDetector;
/// use nc_vivaldi::Coordinate;
///
/// let mut w = TwoWindowDetector::new(4).unwrap();
/// for i in 0..10 {
///     w.push(Coordinate::new(vec![i as f64]).unwrap());
/// }
/// assert!(w.is_ready());
/// assert_eq!(w.start_window().len(), 4);
/// // The current window holds the last four elements (6, 7, 8, 9).
/// assert_eq!(w.current_window()[0].components()[0], 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct TwoWindowDetector {
    window_size: usize,
    start: Vec<Coordinate>,
    current: VecDeque<Coordinate>,
    pushes_since_reset: u64,
    total_pushes: u64,
    change_points: u64,
}

/// Error constructing a detector with an invalid window size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidWindowSize;

impl std::fmt::Display for InvalidWindowSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "window size must be at least 2")
    }
}

impl std::error::Error for InvalidWindowSize {}

impl TwoWindowDetector {
    /// Creates a detector whose windows hold `window_size` coordinates each.
    /// The paper sweeps window sizes from 4 to 4096 and settles on 32 for
    /// its deployment.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWindowSize`] when `window_size < 2` (a meaningful
    /// two-sample comparison needs at least two points per window).
    pub fn new(window_size: usize) -> Result<Self, InvalidWindowSize> {
        if window_size < 2 {
            return Err(InvalidWindowSize);
        }
        Ok(TwoWindowDetector {
            window_size,
            start: Vec::with_capacity(window_size),
            current: VecDeque::with_capacity(window_size),
            pushes_since_reset: 0,
            total_pushes: 0,
            change_points: 0,
        })
    }

    /// The configured per-window size `k`.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Appends one system-level coordinate to the stream.
    pub fn push(&mut self, coordinate: Coordinate) {
        self.total_pushes += 1;
        self.pushes_since_reset += 1;
        if self.start.len() < self.window_size {
            self.start.push(coordinate.clone());
        }
        if self.current.len() == self.window_size {
            self.current.pop_front();
        }
        self.current.push_back(coordinate);
    }

    /// True once both windows hold `window_size` elements and a comparison is
    /// meaningful.
    pub fn is_ready(&self) -> bool {
        self.start.len() == self.window_size && self.current.len() == self.window_size
    }

    /// The frozen start window `W_s` (oldest `k` coordinates since the last
    /// change point).
    pub fn start_window(&self) -> &[Coordinate] {
        &self.start
    }

    /// The sliding current window `W_c` (most recent `k` coordinates).
    /// Returned as an owned `Vec` because the underlying ring buffer may wrap.
    pub fn current_window(&self) -> Vec<Coordinate> {
        self.current.iter().cloned().collect()
    }

    /// Copies the sliding current window into `buf` (cleared first), oldest
    /// first. The hot-path form of
    /// [`current_window`](TwoWindowDetector::current_window): a caller that
    /// reuses one buffer per detector pays no allocation once the buffer has
    /// grown to the window size.
    pub fn current_window_into(&self, buf: &mut Vec<Coordinate>) {
        buf.clear();
        buf.extend(self.current.iter().cloned());
    }

    /// Centroid of the start window, or `None` before any push.
    pub fn start_centroid(&self) -> Option<Coordinate> {
        Coordinate::centroid(&self.start)
    }

    /// Centroid of the current window, or `None` before any push. Computed
    /// straight off the ring buffer, without materialising it.
    pub fn current_centroid(&self) -> Option<Coordinate> {
        Coordinate::centroid_iter(self.current.iter())
    }

    /// Declares a change point: both windows are cleared and refilling starts
    /// with the next push. Called by the heuristics after they decide the two
    /// windows differ significantly.
    pub fn declare_change_point(&mut self) {
        self.start.clear();
        self.current.clear();
        self.pushes_since_reset = 0;
        self.change_points += 1;
    }

    /// Number of pushes since the last change point (or since creation).
    pub fn pushes_since_reset(&self) -> u64 {
        self.pushes_since_reset
    }

    /// Total pushes over the detector's lifetime.
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }

    /// Number of change points declared so far.
    pub fn change_points(&self) -> u64 {
        self.change_points
    }

    /// Exports the detector's runtime state for persistence.
    pub fn export_state(&self) -> DetectorState {
        DetectorState {
            start: self.start.clone(),
            current: self.current.iter().cloned().collect(),
            pushes_since_reset: self.pushes_since_reset,
            total_pushes: self.total_pushes,
            change_points: self.change_points,
        }
    }

    /// Adopts runtime state exported by [`TwoWindowDetector::export_state`].
    /// Windows longer than the configured size keep only their newest
    /// entries, so state exported under a larger window still restores.
    pub fn import_state(&mut self, state: &DetectorState) {
        // The start window freezes its *first* k coordinates, the current
        // window slides over the *last* k: truncate each from its own end.
        self.start = state.start.iter().take(self.window_size).cloned().collect();
        let from = state.current.len().saturating_sub(self.window_size);
        self.current = state.current[from..].to_vec().into();
        self.pushes_since_reset = state.pushes_since_reset;
        self.total_pushes = state.total_pushes;
        self.change_points = state.change_points;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn coord(x: f64) -> Coordinate {
        Coordinate::new(vec![x, 0.0]).unwrap()
    }

    #[test]
    fn rejects_tiny_windows() {
        assert!(TwoWindowDetector::new(0).is_err());
        assert!(TwoWindowDetector::new(1).is_err());
        assert!(TwoWindowDetector::new(2).is_ok());
    }

    #[test]
    fn not_ready_until_both_windows_full() {
        let mut w = TwoWindowDetector::new(3).unwrap();
        for i in 0..2 {
            w.push(coord(i as f64));
            assert!(!w.is_ready());
        }
        w.push(coord(2.0));
        assert!(w.is_ready());
    }

    #[test]
    fn start_window_freezes_current_slides() {
        let mut w = TwoWindowDetector::new(3).unwrap();
        for i in 0..8 {
            w.push(coord(i as f64));
        }
        let start: Vec<f64> = w.start_window().iter().map(|c| c.components()[0]).collect();
        assert_eq!(start, vec![0.0, 1.0, 2.0]);
        let current: Vec<f64> = w
            .current_window()
            .iter()
            .map(|c| c.components()[0])
            .collect();
        assert_eq!(current, vec![5.0, 6.0, 7.0]);
    }

    #[test]
    fn centroids_reflect_window_contents() {
        let mut w = TwoWindowDetector::new(2).unwrap();
        w.push(coord(0.0));
        w.push(coord(2.0));
        w.push(coord(10.0));
        w.push(coord(12.0));
        assert_eq!(w.start_centroid().unwrap().components()[0], 1.0);
        assert_eq!(w.current_centroid().unwrap().components()[0], 11.0);
    }

    #[test]
    fn change_point_clears_and_counts() {
        let mut w = TwoWindowDetector::new(2).unwrap();
        for i in 0..5 {
            w.push(coord(i as f64));
        }
        w.declare_change_point();
        assert!(!w.is_ready());
        assert_eq!(w.pushes_since_reset(), 0);
        assert_eq!(w.change_points(), 1);
        assert_eq!(w.total_pushes(), 5);
        assert!(w.start_window().is_empty());
        assert!(w.current_window().is_empty());
        // Refills after the reset.
        w.push(coord(100.0));
        w.push(coord(101.0));
        assert!(w.is_ready());
        assert_eq!(w.start_centroid().unwrap().components()[0], 100.5);
    }

    #[test]
    fn empty_detector_has_no_centroids() {
        let w = TwoWindowDetector::new(4).unwrap();
        assert!(w.start_centroid().is_none());
        assert!(w.current_centroid().is_none());
        assert!(!w.is_ready());
    }

    proptest! {
        #[test]
        fn windows_never_exceed_window_size(
            values in proptest::collection::vec(-1e3f64..1e3, 0..200),
            k in 2usize..16,
        ) {
            let mut w = TwoWindowDetector::new(k).unwrap();
            for &v in &values {
                w.push(coord(v));
                prop_assert!(w.start_window().len() <= k);
                prop_assert!(w.current_window().len() <= k);
            }
        }

        #[test]
        fn current_window_is_suffix_of_stream(
            values in proptest::collection::vec(-1e3f64..1e3, 1..100),
            k in 2usize..8,
        ) {
            let mut w = TwoWindowDetector::new(k).unwrap();
            for &v in &values {
                w.push(coord(v));
            }
            let n = values.len().min(k);
            let expected: Vec<f64> = values[values.len() - n..].to_vec();
            let got: Vec<f64> = w.current_window().iter().map(|c| c.components()[0]).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
