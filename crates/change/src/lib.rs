//! Application-level coordinates and change detection.
//!
//! The second contribution of *Stable and Accurate Network Coordinates* is
//! the distinction between **system-level** coordinates — which evolve a
//! little with every observation — and **application-level** coordinates —
//! which should change only when something *significant* happened, because
//! every application-level change can trigger expensive work (the paper's
//! motivating application reacts to coordinate changes with process
//! migrations).
//!
//! This crate implements:
//!
//! * [`TwoWindowDetector`] — the sliding-window change-detection scheme of
//!   Kifer, Ben-David & Gehrke adapted to streams of coordinates: a frozen
//!   *start* window `W_s` and a sliding *current* window `W_c` that are
//!   compared for significant difference after every update (§V-A).
//! * The five update heuristics of §V-B, each implementing
//!   [`UpdateHeuristic`]:
//!   [`SystemHeuristic`] (threshold on the last step),
//!   [`ApplicationHeuristic`] (threshold on drift from the published
//!   coordinate), [`RelativeHeuristic`] (window centroids compared to the
//!   distance to the nearest neighbour), [`EnergyHeuristic`] (energy distance
//!   between the windows) and [`CentroidHeuristic`]
//!   (APPLICATION/CENTROID, the §V-G ablation).
//! * [`ApplicationCoordinate`] — the manager that owns the published
//!   application-level coordinate, feeds system-level updates to a heuristic
//!   and reports when (and to what) the published coordinate changed.
//!
//! # Example
//!
//! ```
//! use nc_change::{ApplicationCoordinate, EnergyHeuristic, UpdateContext};
//! use nc_vivaldi::Coordinate;
//!
//! let heuristic = EnergyHeuristic::paper_defaults();
//! let mut app = ApplicationCoordinate::new(Coordinate::origin(3), Box::new(heuristic));
//!
//! // Small jitter around a fixed point: the application coordinate holds still.
//! for i in 0..100 {
//!     let wiggle = (i % 5) as f64 * 0.1;
//!     let system = Coordinate::new(vec![10.0 + wiggle, 20.0, 30.0]).unwrap();
//!     app.on_system_update(&system, &UpdateContext::default());
//! }
//! assert!(app.update_count() <= 1, "jitter should not reach the application");
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod heuristics;
pub mod manager;
pub mod window;

pub use heuristics::{
    ApplicationHeuristic, CentroidHeuristic, EnergyHeuristic, HeuristicKind, HeuristicState,
    HeuristicStateMismatch, RelativeHeuristic, SystemHeuristic, UpdateContext, UpdateDecision,
    UpdateHeuristic,
};
pub use manager::{ApplicationCoordinate, ApplicationState, ApplicationUpdate};
pub use window::{DetectorState, TwoWindowDetector};
