//! The application-update heuristics of §V-B.
//!
//! Each heuristic watches the stream of system-level coordinates `c_s` and
//! decides when the application-level coordinate `c_a` should be updated and
//! to what value. The paper compares four heuristics (plus one ablation):
//!
//! | Heuristic | Trigger | New `c_a` | State |
//! |-----------|---------|-----------|-------|
//! | SYSTEM | `‖c_s(t) − c_s(t−1)‖ > τ` | `c_s` | previous `c_s` |
//! | APPLICATION | `‖c_a − c_s‖ > τ` | `c_s` | none |
//! | RELATIVE | `‖C(W_s) − C(W_c)‖ / ‖C(W_s) − r‖ > ε_r` | `C(W_c)` | two windows |
//! | ENERGY | `e(W_s, W_c) > τ` | `C(W_c)` | two windows |
//! | APPLICATION/CENTROID | `‖c_a − c_s‖ > τ` | centroid of recent `c_s` | sliding window |
//!
//! The windowed heuristics (RELATIVE, ENERGY) are the ones the paper finds
//! robust: they increase stability substantially before accuracy starts to
//! decline, while the window-less ones can only trade one for the other.

use nc_stats::{energy_distance_by, energy_distance_with_cached_within, within_sum_by};
use nc_vivaldi::Coordinate;
use serde::{Deserialize, Serialize};

use crate::window::{DetectorState, TwoWindowDetector};

/// The serializable runtime state of an [`UpdateHeuristic`].
///
/// Thresholds and window sizes are configuration and are not captured here;
/// a restored heuristic is first built from its configuration and then
/// adopts one of these states via [`UpdateHeuristic::import_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HeuristicState {
    /// The heuristic keeps no runtime state (APPLICATION).
    Stateless,
    /// State of [`SystemHeuristic`]: the previously seen system coordinate.
    System {
        /// The last system-level coordinate observed, if any.
        previous_system: Option<Coordinate>,
    },
    /// State of the windowed heuristics (RELATIVE, ENERGY).
    Windowed(DetectorState),
    /// State of [`CentroidHeuristic`]: its sliding coordinate window.
    Centroid {
        /// The sliding window of recent system coordinates, oldest first.
        window: Vec<Coordinate>,
    },
}

impl HeuristicState {
    /// A short name of the state family, for error messages.
    pub fn family(&self) -> &'static str {
        match self {
            HeuristicState::Stateless => "stateless",
            HeuristicState::System { .. } => "system",
            HeuristicState::Windowed(_) => "windowed",
            HeuristicState::Centroid { .. } => "centroid",
        }
    }
}

/// Error returned when a heuristic is asked to adopt state exported by a
/// heuristic of a different family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeuristicStateMismatch {
    /// The family of the heuristic doing the importing.
    pub expected: &'static str,
    /// The family the state was exported from.
    pub found: &'static str,
}

impl std::fmt::Display for HeuristicStateMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot restore a {} heuristic from {} state",
            self.expected, self.found
        )
    }
}

impl std::error::Error for HeuristicStateMismatch {}

/// Additional per-update context a heuristic may consult.
#[derive(Debug, Clone, Default)]
pub struct UpdateContext {
    /// The coordinate of the (approximately) nearest known neighbour, learned
    /// from the latency samples themselves. RELATIVE scales its trigger by
    /// the distance to this neighbour so that updates are "relative to the
    /// node's locale"; when it is unknown the heuristic stays quiet.
    pub nearest_neighbor: Option<Coordinate>,
}

/// What a heuristic decided for one system-level update.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateDecision {
    /// Keep the currently published application-level coordinate.
    Keep,
    /// Publish the contained coordinate as the new application-level
    /// coordinate.
    Publish(Coordinate),
}

impl UpdateDecision {
    /// True when the decision publishes a new coordinate.
    pub fn is_publish(&self) -> bool {
        matches!(self, UpdateDecision::Publish(_))
    }
}

/// Identifies one of the five heuristics (used by experiment sweeps and
/// reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeuristicKind {
    /// Threshold on the last system-level step.
    System,
    /// Threshold on the drift between application and system coordinate.
    Application,
    /// Window-based, scaled by the distance to the nearest neighbour.
    Relative,
    /// Window-based, energy-distance two-sample test.
    Energy,
    /// APPLICATION trigger with a window-centroid target (§V-G ablation).
    ApplicationCentroid,
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            HeuristicKind::System => "SYSTEM",
            HeuristicKind::Application => "APPLICATION",
            HeuristicKind::Relative => "RELATIVE",
            HeuristicKind::Energy => "ENERGY",
            HeuristicKind::ApplicationCentroid => "APPLICATION/CENTROID",
        };
        write!(f, "{name}")
    }
}

/// A strategy deciding when the application-level coordinate should change.
///
/// Implementations are driven by
/// [`ApplicationCoordinate`](crate::ApplicationCoordinate); they receive every
/// system-level coordinate `c_s` together with the currently published
/// application-level coordinate `c_a`.
pub trait UpdateHeuristic: Send {
    /// Which heuristic family this is.
    fn kind(&self) -> HeuristicKind;

    /// Considers one new system-level coordinate and decides whether to
    /// publish a new application-level coordinate.
    fn on_system_update(
        &mut self,
        system: &Coordinate,
        application: &Coordinate,
        ctx: &UpdateContext,
    ) -> UpdateDecision;

    /// Exports the heuristic's runtime state for persistence.
    fn export_state(&self) -> HeuristicState;

    /// Adopts runtime state exported by a heuristic of the same family.
    ///
    /// # Errors
    ///
    /// Returns [`HeuristicStateMismatch`] when the state belongs to a
    /// different family; the heuristic is left unchanged in that case.
    fn import_state(&mut self, state: &HeuristicState) -> Result<(), HeuristicStateMismatch>;
}

// ---------------------------------------------------------------------------
// SYSTEM
// ---------------------------------------------------------------------------

/// SYSTEM heuristic: publish `c_s` whenever the system coordinate moved more
/// than `τ` milliseconds in a single step.
///
/// Simple, but suffers from the pathological case the paper points out: many
/// consecutive steps just under the threshold accumulate into a large drift
/// that the application never hears about.
#[derive(Debug, Clone)]
pub struct SystemHeuristic {
    threshold_ms: f64,
    previous_system: Option<Coordinate>,
}

impl SystemHeuristic {
    /// Creates the heuristic with step threshold `τ` in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics when the threshold is not a positive finite number.
    pub fn new(threshold_ms: f64) -> Self {
        assert!(
            threshold_ms.is_finite() && threshold_ms > 0.0,
            "threshold must be positive"
        );
        SystemHeuristic {
            threshold_ms,
            previous_system: None,
        }
    }

    /// The τ = 16 ms setting at which the paper finds SYSTEM competitive with
    /// the window heuristics (Figure 10).
    pub fn paper_defaults() -> Self {
        Self::new(16.0)
    }

    /// The configured threshold.
    pub fn threshold_ms(&self) -> f64 {
        self.threshold_ms
    }
}

impl UpdateHeuristic for SystemHeuristic {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::System
    }

    fn on_system_update(
        &mut self,
        system: &Coordinate,
        _application: &Coordinate,
        _ctx: &UpdateContext,
    ) -> UpdateDecision {
        let decision = match &self.previous_system {
            Some(prev) if prev.distance(system) > self.threshold_ms => {
                UpdateDecision::Publish(system.clone())
            }
            _ => UpdateDecision::Keep,
        };
        self.previous_system = Some(system.clone());
        decision
    }

    fn export_state(&self) -> HeuristicState {
        HeuristicState::System {
            previous_system: self.previous_system.clone(),
        }
    }

    fn import_state(&mut self, state: &HeuristicState) -> Result<(), HeuristicStateMismatch> {
        match state {
            HeuristicState::System { previous_system } => {
                self.previous_system = previous_system.clone();
                Ok(())
            }
            other => Err(HeuristicStateMismatch {
                expected: "system",
                found: other.family(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// APPLICATION
// ---------------------------------------------------------------------------

/// APPLICATION heuristic: publish `c_s` when the published coordinate has
/// drifted more than `τ` milliseconds away from it.
///
/// Captures slow drift in one direction but permits unbounded oscillation
/// beneath the threshold.
#[derive(Debug, Clone)]
pub struct ApplicationHeuristic {
    threshold_ms: f64,
}

impl ApplicationHeuristic {
    /// Creates the heuristic with drift threshold `τ` in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics when the threshold is not a positive finite number.
    pub fn new(threshold_ms: f64) -> Self {
        assert!(
            threshold_ms.is_finite() && threshold_ms > 0.0,
            "threshold must be positive"
        );
        ApplicationHeuristic { threshold_ms }
    }

    /// The τ = 16 ms setting of Figure 10.
    pub fn paper_defaults() -> Self {
        Self::new(16.0)
    }

    /// The configured threshold.
    pub fn threshold_ms(&self) -> f64 {
        self.threshold_ms
    }
}

impl UpdateHeuristic for ApplicationHeuristic {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Application
    }

    fn on_system_update(
        &mut self,
        system: &Coordinate,
        application: &Coordinate,
        _ctx: &UpdateContext,
    ) -> UpdateDecision {
        if application.distance(system) > self.threshold_ms {
            UpdateDecision::Publish(system.clone())
        } else {
            UpdateDecision::Keep
        }
    }

    fn export_state(&self) -> HeuristicState {
        HeuristicState::Stateless
    }

    fn import_state(&mut self, state: &HeuristicState) -> Result<(), HeuristicStateMismatch> {
        match state {
            HeuristicState::Stateless => Ok(()),
            other => Err(HeuristicStateMismatch {
                expected: "stateless",
                found: other.family(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// RELATIVE
// ---------------------------------------------------------------------------

/// RELATIVE heuristic: compare the centroids of the start and current
/// windows, scaled by the distance to the nearest known neighbour:
///
/// ```text
/// ‖C(W_s) − C(W_c)‖ / ‖C(W_s) − r‖ > ε_r  ⇒  publish C(W_c)
/// ```
///
/// Updates are therefore relative to the node's locale: a node in a dense
/// cluster updates after small absolute movements, a node whose nearest
/// neighbour is 100 ms away only after proportionally larger ones.
#[derive(Debug, Clone)]
pub struct RelativeHeuristic {
    threshold: f64,
    windows: TwoWindowDetector,
}

impl RelativeHeuristic {
    /// Creates the heuristic with relative threshold `ε_r` and per-window
    /// size `window_size`.
    ///
    /// # Panics
    ///
    /// Panics when the threshold is not a positive finite number or the
    /// window size is smaller than 2.
    pub fn new(threshold: f64, window_size: usize) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        RelativeHeuristic {
            threshold,
            windows: TwoWindowDetector::new(window_size).expect("window size must be >= 2"),
        }
    }

    /// The ε_r = 0.3, window 32 configuration the paper identifies as the
    /// most conservative setting that still improves stability (§V-D).
    pub fn paper_defaults() -> Self {
        Self::new(0.3, 32)
    }

    /// The configured relative threshold ε_r.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured window size.
    pub fn window_size(&self) -> usize {
        self.windows.window_size()
    }
}

impl UpdateHeuristic for RelativeHeuristic {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Relative
    }

    fn on_system_update(
        &mut self,
        system: &Coordinate,
        _application: &Coordinate,
        ctx: &UpdateContext,
    ) -> UpdateDecision {
        self.windows.push(system.clone());
        if !self.windows.is_ready() {
            return UpdateDecision::Keep;
        }
        let Some(neighbor) = &ctx.nearest_neighbor else {
            return UpdateDecision::Keep;
        };
        let start_centroid = self.windows.start_centroid().expect("windows are ready");
        let current_centroid = self.windows.current_centroid().expect("windows are ready");
        let locale = start_centroid.distance(neighbor);
        if locale <= f64::EPSILON {
            return UpdateDecision::Keep;
        }
        let movement = start_centroid.distance(&current_centroid);
        if movement / locale > self.threshold {
            self.windows.declare_change_point();
            UpdateDecision::Publish(current_centroid)
        } else {
            UpdateDecision::Keep
        }
    }

    fn export_state(&self) -> HeuristicState {
        HeuristicState::Windowed(self.windows.export_state())
    }

    fn import_state(&mut self, state: &HeuristicState) -> Result<(), HeuristicStateMismatch> {
        match state {
            HeuristicState::Windowed(detector) => {
                self.windows.import_state(detector);
                Ok(())
            }
            other => Err(HeuristicStateMismatch {
                expected: "windowed",
                found: other.family(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// ENERGY
// ---------------------------------------------------------------------------

/// ENERGY heuristic: declare a change when the Székely–Rizzo energy distance
/// between the start and current windows exceeds `τ`, and publish the
/// centroid of the current window.
#[derive(Debug, Clone)]
pub struct EnergyHeuristic {
    threshold: f64,
    windows: TwoWindowDetector,
    /// Reusable buffer for the current window's contiguous copy, so the
    /// per-update energy statistic runs without heap allocations once the
    /// buffer has grown to the window size.
    scratch: Vec<Coordinate>,
    /// Cached `Σ_{i≠j} d(s_i, s_j)` over the **frozen** start window. The
    /// start window only changes while filling and at a change point, so
    /// between change points this O(k²) term is computed once instead of on
    /// every observation — bit-identical to the full recomputation (same
    /// loop, see [`within_sum_by`]).
    start_within: Option<f64>,
}

impl EnergyHeuristic {
    /// Creates the heuristic with energy threshold `τ` and per-window size
    /// `window_size`.
    ///
    /// # Panics
    ///
    /// Panics when the threshold is not a positive finite number or the
    /// window size is smaller than 2.
    pub fn new(threshold: f64, window_size: usize) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        EnergyHeuristic {
            threshold,
            windows: TwoWindowDetector::new(window_size).expect("window size must be >= 2"),
            scratch: Vec::with_capacity(window_size),
            start_within: None,
        }
    }

    /// The τ = 8, window 32 configuration used for the paper's PlanetLab
    /// deployment (§VI).
    pub fn paper_defaults() -> Self {
        Self::new(8.0, 32)
    }

    /// The configured energy threshold τ.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured window size.
    pub fn window_size(&self) -> usize {
        self.windows.window_size()
    }

    /// Energy distance between the two current windows, or `None` when the
    /// windows are not yet full. Exposed for diagnostics and tests.
    pub fn current_statistic(&self) -> Option<f64> {
        if !self.windows.is_ready() {
            return None;
        }
        let start = self.windows.start_window();
        let current = self.windows.current_window();
        energy_distance_by(start, &current, |a, b| a.distance(b)).ok()
    }

    /// The per-update form of
    /// [`current_statistic`](EnergyHeuristic::current_statistic): identical
    /// result, but the current window is staged through the reusable scratch
    /// buffer instead of a fresh `Vec` per update.
    fn current_statistic_hot(&mut self) -> Option<f64> {
        if !self.windows.is_ready() {
            return None;
        }
        self.windows.current_window_into(&mut self.scratch);
        let start = self.windows.start_window();
        let within_start = *self
            .start_within
            .get_or_insert_with(|| within_sum_by(start, |a, b| a.distance(b)));
        energy_distance_with_cached_within(start, &self.scratch, within_start, |a, b| a.distance(b))
            .ok()
    }
}

impl UpdateHeuristic for EnergyHeuristic {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::Energy
    }

    fn on_system_update(
        &mut self,
        system: &Coordinate,
        _application: &Coordinate,
        _ctx: &UpdateContext,
    ) -> UpdateDecision {
        self.windows.push(system.clone());
        if !self.windows.is_ready() {
            return UpdateDecision::Keep;
        }
        let statistic = self.current_statistic_hot().expect("windows are ready");
        if statistic > self.threshold {
            let target = self.windows.current_centroid().expect("windows are ready");
            self.windows.declare_change_point();
            // A change point starts a fresh start window; the cached
            // within-sum belongs to the old one.
            self.start_within = None;
            UpdateDecision::Publish(target)
        } else {
            UpdateDecision::Keep
        }
    }

    fn export_state(&self) -> HeuristicState {
        HeuristicState::Windowed(self.windows.export_state())
    }

    fn import_state(&mut self, state: &HeuristicState) -> Result<(), HeuristicStateMismatch> {
        match state {
            HeuristicState::Windowed(detector) => {
                self.windows.import_state(detector);
                self.start_within = None;
                Ok(())
            }
            other => Err(HeuristicStateMismatch {
                expected: "windowed",
                found: other.family(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// APPLICATION/CENTROID
// ---------------------------------------------------------------------------

/// APPLICATION/CENTROID ablation (§V-G): the APPLICATION drift trigger, but
/// publishing the centroid of a sliding window of recent system coordinates
/// instead of the instantaneous coordinate.
///
/// The paper uses this to show that the windowed heuristics' advantage is not
/// only the centroid target: knowing *when* to update matters, and a plain
/// threshold remains fragile even with a good target.
#[derive(Debug, Clone)]
pub struct CentroidHeuristic {
    threshold_ms: f64,
    window: std::collections::VecDeque<Coordinate>,
    window_size: usize,
}

impl CentroidHeuristic {
    /// Creates the heuristic with drift threshold `τ` (milliseconds) and a
    /// sliding window of `window_size` recent system coordinates.
    ///
    /// # Panics
    ///
    /// Panics when the threshold is not a positive finite number or the
    /// window size is zero.
    pub fn new(threshold_ms: f64, window_size: usize) -> Self {
        assert!(
            threshold_ms.is_finite() && threshold_ms > 0.0,
            "threshold must be positive"
        );
        assert!(window_size > 0, "window size must be positive");
        CentroidHeuristic {
            threshold_ms,
            window: std::collections::VecDeque::with_capacity(window_size),
            window_size,
        }
    }

    /// Window of 32 coordinates (matching the windowed heuristics) and the
    /// τ = 16 ms threshold of Figure 12's sweet spot.
    pub fn paper_defaults() -> Self {
        Self::new(16.0, 32)
    }

    /// The configured threshold.
    pub fn threshold_ms(&self) -> f64 {
        self.threshold_ms
    }

    /// The configured window size.
    pub fn window_size(&self) -> usize {
        self.window_size
    }
}

impl UpdateHeuristic for CentroidHeuristic {
    fn kind(&self) -> HeuristicKind {
        HeuristicKind::ApplicationCentroid
    }

    fn on_system_update(
        &mut self,
        system: &Coordinate,
        application: &Coordinate,
        _ctx: &UpdateContext,
    ) -> UpdateDecision {
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(system.clone());
        if application.distance(system) > self.threshold_ms {
            let centroid =
                Coordinate::centroid_iter(self.window.iter()).expect("window is non-empty");
            UpdateDecision::Publish(centroid)
        } else {
            UpdateDecision::Keep
        }
    }

    fn export_state(&self) -> HeuristicState {
        HeuristicState::Centroid {
            window: self.window.iter().cloned().collect(),
        }
    }

    fn import_state(&mut self, state: &HeuristicState) -> Result<(), HeuristicStateMismatch> {
        match state {
            HeuristicState::Centroid { window } => {
                let from = window.len().saturating_sub(self.window_size);
                self.window = window[from..].to_vec().into();
                Ok(())
            }
            other => Err(HeuristicStateMismatch {
                expected: "centroid",
                found: other.family(),
            }),
        }
    }
}

/// Builds a boxed heuristic of the given kind with its paper-default
/// parameters.
pub fn make_heuristic(kind: HeuristicKind) -> Box<dyn UpdateHeuristic + Send> {
    match kind {
        HeuristicKind::System => Box::new(SystemHeuristic::paper_defaults()),
        HeuristicKind::Application => Box::new(ApplicationHeuristic::paper_defaults()),
        HeuristicKind::Relative => Box::new(RelativeHeuristic::paper_defaults()),
        HeuristicKind::Energy => Box::new(EnergyHeuristic::paper_defaults()),
        HeuristicKind::ApplicationCentroid => Box::new(CentroidHeuristic::paper_defaults()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64) -> Coordinate {
        Coordinate::new(vec![x, y]).unwrap()
    }

    fn ctx_with_neighbor(x: f64, y: f64) -> UpdateContext {
        UpdateContext {
            nearest_neighbor: Some(c(x, y)),
        }
    }

    #[test]
    fn system_heuristic_triggers_on_large_step() {
        let mut h = SystemHeuristic::new(5.0);
        let app = c(0.0, 0.0);
        assert_eq!(
            h.on_system_update(&c(0.0, 0.0), &app, &UpdateContext::default()),
            UpdateDecision::Keep
        );
        assert_eq!(
            h.on_system_update(&c(1.0, 0.0), &app, &UpdateContext::default()),
            UpdateDecision::Keep
        );
        let decision = h.on_system_update(&c(20.0, 0.0), &app, &UpdateContext::default());
        assert_eq!(decision, UpdateDecision::Publish(c(20.0, 0.0)));
    }

    #[test]
    fn system_heuristic_misses_slow_drift() {
        // The documented pathology: many sub-threshold steps never publish.
        let mut h = SystemHeuristic::new(5.0);
        let app = c(0.0, 0.0);
        let mut published = 0;
        for i in 1..=100 {
            let sys = c(i as f64 * 4.0, 0.0); // 4 ms per step, 400 ms total drift
            if h.on_system_update(&sys, &app, &UpdateContext::default())
                .is_publish()
            {
                published += 1;
            }
        }
        assert_eq!(published, 0);
    }

    #[test]
    fn application_heuristic_catches_drift() {
        let mut h = ApplicationHeuristic::new(5.0);
        let app = c(0.0, 0.0);
        let mut first_publish_at = None;
        for i in 1..=10 {
            let sys = c(i as f64, 0.0);
            if h.on_system_update(&sys, &app, &UpdateContext::default())
                .is_publish()
            {
                first_publish_at = Some(i);
                break;
            }
        }
        assert_eq!(
            first_publish_at,
            Some(6),
            "publishes once drift exceeds 5 ms"
        );
    }

    #[test]
    fn application_heuristic_permits_oscillation_below_threshold() {
        let mut h = ApplicationHeuristic::new(10.0);
        let app = c(0.0, 0.0);
        for i in 0..100 {
            let sys = if i % 2 == 0 {
                c(4.0, 0.0)
            } else {
                c(-4.0, 0.0)
            };
            assert_eq!(
                h.on_system_update(&sys, &app, &UpdateContext::default()),
                UpdateDecision::Keep
            );
        }
    }

    #[test]
    fn relative_heuristic_requires_neighbor() {
        let mut h = RelativeHeuristic::new(0.3, 4);
        let app = c(0.0, 0.0);
        for i in 0..50 {
            let sys = c(i as f64 * 10.0, 0.0);
            assert_eq!(
                h.on_system_update(&sys, &app, &UpdateContext::default()),
                UpdateDecision::Keep,
                "no neighbour known, no update"
            );
        }
    }

    #[test]
    fn relative_heuristic_scales_with_locale() {
        // Identical coordinate movement; a near neighbour makes it
        // significant, a far one does not.
        let run = |neighbor: Coordinate| -> usize {
            let mut h = RelativeHeuristic::new(0.3, 4);
            let app = c(0.0, 0.0);
            let ctx = UpdateContext {
                nearest_neighbor: Some(neighbor),
            };
            let mut publishes = 0;
            for i in 0..40 {
                let sys = c(i as f64 * 2.0, 0.0); // steady 2 ms/obs drift
                if h.on_system_update(&sys, &app, &ctx).is_publish() {
                    publishes += 1;
                }
            }
            publishes
        };
        let near = run(c(0.0, 10.0));
        let far = run(c(0.0, 10_000.0));
        assert!(near > far, "near={near} far={far}");
        assert_eq!(far, 0);
    }

    #[test]
    fn relative_publishes_current_centroid_and_resets() {
        let mut h = RelativeHeuristic::new(0.1, 2);
        let app = c(0.0, 0.0);
        let ctx = ctx_with_neighbor(0.0, 5.0);
        let mut last_publish = None;
        for i in 0..20 {
            let sys = c(i as f64 * 3.0, 0.0);
            if let UpdateDecision::Publish(target) = h.on_system_update(&sys, &app, &ctx) {
                last_publish = Some(target);
                break;
            }
        }
        let target = last_publish.expect("should publish");
        // The published target is a centroid of recent system coordinates,
        // not the instantaneous one.
        assert!(target.components()[0] > 0.0);
    }

    #[test]
    fn energy_heuristic_ignores_stationary_jitter() {
        let mut h = EnergyHeuristic::new(8.0, 8);
        let app = c(0.0, 0.0);
        for i in 0..200 {
            let jitter = (i % 7) as f64 * 0.05;
            let sys = c(50.0 + jitter, 20.0);
            assert!(!h
                .on_system_update(&sys, &app, &UpdateContext::default())
                .is_publish());
        }
    }

    #[test]
    fn energy_heuristic_detects_level_shift() {
        let mut h = EnergyHeuristic::new(8.0, 8);
        let app = c(0.0, 0.0);
        for _ in 0..16 {
            h.on_system_update(&c(10.0, 10.0), &app, &UpdateContext::default());
        }
        // The coordinate jumps 100 ms away and stays there.
        let mut published = None;
        for i in 0..16 {
            let decision = h.on_system_update(&c(110.0, 10.0), &app, &UpdateContext::default());
            if let UpdateDecision::Publish(target) = decision {
                published = Some((i, target));
                break;
            }
        }
        let (after, target) = published.expect("shift should be detected");
        assert!(
            after < 16,
            "detected within one window, after {after} samples"
        );
        assert!(
            target.components()[0] > 20.0,
            "target tracks the new location"
        );
    }

    #[test]
    fn energy_statistic_is_none_until_ready() {
        let mut h = EnergyHeuristic::new(8.0, 4);
        assert_eq!(h.current_statistic(), None);
        let app = c(0.0, 0.0);
        for _ in 0..4 {
            h.on_system_update(&c(1.0, 1.0), &app, &UpdateContext::default());
        }
        assert!(h.current_statistic().is_some());
    }

    #[test]
    fn centroid_heuristic_publishes_window_centroid() {
        let mut h = CentroidHeuristic::new(5.0, 4);
        let app = c(0.0, 0.0);
        // Fill the window with coordinates near 10, then trigger.
        let mut decision = UpdateDecision::Keep;
        for x in [8.0, 9.0, 10.0, 11.0] {
            decision = h.on_system_update(&c(x, 0.0), &app, &UpdateContext::default());
        }
        match decision {
            UpdateDecision::Publish(target) => {
                assert!((target.components()[0] - 9.5).abs() < 1e-9);
            }
            UpdateDecision::Keep => panic!("drift of ~10 ms should trigger a 5 ms threshold"),
        }
    }

    #[test]
    fn centroid_heuristic_keeps_below_threshold() {
        let mut h = CentroidHeuristic::new(50.0, 4);
        let app = c(0.0, 0.0);
        for x in [8.0, 9.0, 10.0, 11.0] {
            assert_eq!(
                h.on_system_update(&c(x, 0.0), &app, &UpdateContext::default()),
                UpdateDecision::Keep
            );
        }
    }

    #[test]
    fn make_heuristic_builds_every_kind() {
        for kind in [
            HeuristicKind::System,
            HeuristicKind::Application,
            HeuristicKind::Relative,
            HeuristicKind::Energy,
            HeuristicKind::ApplicationCentroid,
        ] {
            let h = make_heuristic(kind);
            assert_eq!(h.kind(), kind);
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn paper_defaults_match_section_vi() {
        let e = EnergyHeuristic::paper_defaults();
        assert_eq!(e.threshold(), 8.0);
        assert_eq!(e.window_size(), 32);
        let r = RelativeHeuristic::paper_defaults();
        assert_eq!(r.threshold(), 0.3);
        assert_eq!(r.window_size(), 32);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn negative_threshold_panics() {
        let _ = EnergyHeuristic::new(-1.0, 32);
    }
}
