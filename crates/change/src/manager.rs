//! The application-level coordinate manager.
//!
//! [`ApplicationCoordinate`] owns the coordinate an application actually
//! sees. It receives every system-level coordinate the Vivaldi state machine
//! produces, consults its [`UpdateHeuristic`] and, when the heuristic decides
//! the change is significant, publishes a new application-level coordinate
//! and reports the update so callers can account for application-level
//! stability and update frequency (the metrics of Figures 9–13).

use nc_vivaldi::Coordinate;
use serde::{Deserialize, Serialize};

use crate::heuristics::{
    HeuristicState, HeuristicStateMismatch, UpdateContext, UpdateDecision, UpdateHeuristic,
};

/// The serializable runtime state of an [`ApplicationCoordinate`]: the
/// published coordinate, the accounting counters and the heuristic's own
/// state. The heuristic itself (family and parameters) is configuration and
/// is rebuilt separately on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationState {
    /// The currently published application-level coordinate.
    pub coordinate: Coordinate,
    /// Number of application-level updates published so far.
    pub update_count: u64,
    /// Number of system-level updates considered so far.
    pub system_updates_seen: u64,
    /// Sum of all published displacements (milliseconds).
    pub total_displacement_ms: f64,
    /// Runtime state of the update heuristic.
    pub heuristic: HeuristicState,
}

/// One published change of the application-level coordinate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationUpdate {
    /// The coordinate that was published before this update.
    pub previous: Coordinate,
    /// The newly published coordinate.
    pub current: Coordinate,
    /// Distance between the two (milliseconds) — the contribution of this
    /// update to application-level instability.
    pub displacement_ms: f64,
}

/// Owns the application-level coordinate `c_a` and decides, via a pluggable
/// heuristic, when to move it.
///
/// # Examples
///
/// ```
/// use nc_change::{ApplicationCoordinate, ApplicationHeuristic, UpdateContext};
/// use nc_vivaldi::Coordinate;
///
/// let mut app = ApplicationCoordinate::new(
///     Coordinate::origin(2),
///     Box::new(ApplicationHeuristic::new(5.0)),
/// );
/// // A 20 ms drift exceeds the 5 ms threshold and is published.
/// let update = app.on_system_update(
///     &Coordinate::new(vec![20.0, 0.0]).unwrap(),
///     &UpdateContext::default(),
/// );
/// assert!(update.is_some());
/// assert_eq!(app.update_count(), 1);
/// ```
pub struct ApplicationCoordinate {
    coordinate: Coordinate,
    heuristic: Box<dyn UpdateHeuristic + Send>,
    update_count: u64,
    system_updates_seen: u64,
    total_displacement_ms: f64,
}

impl std::fmt::Debug for ApplicationCoordinate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApplicationCoordinate")
            .field("coordinate", &self.coordinate)
            .field("heuristic", &self.heuristic.kind())
            .field("update_count", &self.update_count)
            .field("system_updates_seen", &self.system_updates_seen)
            .field("total_displacement_ms", &self.total_displacement_ms)
            .finish()
    }
}

impl ApplicationCoordinate {
    /// Creates a manager publishing `initial` until the heuristic first
    /// triggers.
    pub fn new(initial: Coordinate, heuristic: Box<dyn UpdateHeuristic + Send>) -> Self {
        ApplicationCoordinate {
            coordinate: initial,
            heuristic,
            update_count: 0,
            system_updates_seen: 0,
            total_displacement_ms: 0.0,
        }
    }

    /// The currently published application-level coordinate.
    pub fn coordinate(&self) -> &Coordinate {
        &self.coordinate
    }

    /// Number of application-level updates published so far.
    pub fn update_count(&self) -> u64 {
        self.update_count
    }

    /// Number of system-level updates that have been considered.
    pub fn system_updates_seen(&self) -> u64 {
        self.system_updates_seen
    }

    /// Sum of all published displacements (milliseconds). Divided by elapsed
    /// time this is the application-level instability metric.
    pub fn total_displacement_ms(&self) -> f64 {
        self.total_displacement_ms
    }

    /// The heuristic in use (for reporting).
    pub fn heuristic_kind(&self) -> crate::heuristics::HeuristicKind {
        self.heuristic.kind()
    }

    /// Considers one system-level coordinate. Returns the published update
    /// when the heuristic decided to move the application-level coordinate,
    /// or `None` when it held still.
    pub fn on_system_update(
        &mut self,
        system: &Coordinate,
        ctx: &UpdateContext,
    ) -> Option<ApplicationUpdate> {
        self.system_updates_seen += 1;
        match self
            .heuristic
            .on_system_update(system, &self.coordinate, ctx)
        {
            UpdateDecision::Keep => None,
            UpdateDecision::Publish(target) => {
                let previous = self.coordinate.clone();
                let displacement_ms = previous.distance(&target);
                self.coordinate = target.clone();
                self.update_count += 1;
                self.total_displacement_ms += displacement_ms;
                Some(ApplicationUpdate {
                    previous,
                    current: target,
                    displacement_ms,
                })
            }
        }
    }

    /// Exports the manager's runtime state (published coordinate, counters,
    /// heuristic state) for persistence.
    pub fn export_state(&self) -> ApplicationState {
        ApplicationState {
            coordinate: self.coordinate.clone(),
            update_count: self.update_count,
            system_updates_seen: self.system_updates_seen,
            total_displacement_ms: self.total_displacement_ms,
            heuristic: self.heuristic.export_state(),
        }
    }

    /// Adopts runtime state exported by
    /// [`ApplicationCoordinate::export_state`] from a manager with the same
    /// heuristic configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HeuristicStateMismatch`] when the embedded heuristic state
    /// belongs to a different heuristic family; the manager is left
    /// unchanged in that case.
    pub fn import_state(&mut self, state: &ApplicationState) -> Result<(), HeuristicStateMismatch> {
        self.heuristic.import_state(&state.heuristic)?;
        self.coordinate = state.coordinate.clone();
        self.update_count = state.update_count;
        self.system_updates_seen = state.system_updates_seen;
        self.total_displacement_ms = state.total_displacement_ms;
        Ok(())
    }

    /// Forces the published coordinate to `target` without consulting the
    /// heuristic (used at bootstrap when a node first learns a plausible
    /// coordinate, and by applications that want to resynchronise).
    pub fn force_publish(&mut self, target: Coordinate) -> ApplicationUpdate {
        let previous = self.coordinate.clone();
        let displacement_ms = previous.distance(&target);
        self.coordinate = target.clone();
        self.update_count += 1;
        self.total_displacement_ms += displacement_ms;
        ApplicationUpdate {
            previous,
            current: target,
            displacement_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{ApplicationHeuristic, EnergyHeuristic, SystemHeuristic};

    fn c(x: f64, y: f64) -> Coordinate {
        Coordinate::new(vec![x, y]).unwrap()
    }

    #[test]
    fn keeps_initial_coordinate_until_triggered() {
        let mut app =
            ApplicationCoordinate::new(c(0.0, 0.0), Box::new(ApplicationHeuristic::new(100.0)));
        for i in 0..50 {
            let update = app.on_system_update(&c(i as f64, 0.0), &UpdateContext::default());
            assert!(update.is_none());
        }
        assert_eq!(app.coordinate(), &c(0.0, 0.0));
        assert_eq!(app.update_count(), 0);
        assert_eq!(app.system_updates_seen(), 50);
    }

    #[test]
    fn publishes_and_accounts_displacement() {
        let mut app =
            ApplicationCoordinate::new(c(0.0, 0.0), Box::new(ApplicationHeuristic::new(5.0)));
        let update = app
            .on_system_update(&c(12.0, 0.0), &UpdateContext::default())
            .expect("drift beyond threshold publishes");
        assert_eq!(update.previous, c(0.0, 0.0));
        assert_eq!(update.current, c(12.0, 0.0));
        assert_eq!(update.displacement_ms, 12.0);
        assert_eq!(app.update_count(), 1);
        assert_eq!(app.total_displacement_ms(), 12.0);
        assert_eq!(app.coordinate(), &c(12.0, 0.0));
    }

    #[test]
    fn force_publish_bypasses_heuristic() {
        let mut app =
            ApplicationCoordinate::new(c(0.0, 0.0), Box::new(ApplicationHeuristic::new(1e6)));
        let update = app.force_publish(c(3.0, 4.0));
        assert_eq!(update.displacement_ms, 5.0);
        assert_eq!(app.coordinate(), &c(3.0, 4.0));
        assert_eq!(app.update_count(), 1);
    }

    #[test]
    fn app_level_instability_is_below_system_level() {
        // The whole point of the machinery: the sum of application-level
        // displacements is much smaller than the system-level movement when
        // the system coordinate oscillates.
        let mut app =
            ApplicationCoordinate::new(c(0.0, 0.0), Box::new(EnergyHeuristic::new(8.0, 8)));
        let mut system_displacement = 0.0;
        let mut previous = c(0.0, 0.0);
        for i in 0..500 {
            let wiggle = if i % 2 == 0 { 1.0 } else { -1.0 };
            let system = c(50.0 + wiggle, 20.0);
            system_displacement += previous.distance(&system);
            previous = system.clone();
            app.on_system_update(&system, &UpdateContext::default());
        }
        assert!(system_displacement > 500.0);
        assert!(
            app.total_displacement_ms() < system_displacement / 10.0,
            "app-level displacement {} should be well below system-level {}",
            app.total_displacement_ms(),
            system_displacement
        );
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let app = ApplicationCoordinate::new(c(0.0, 0.0), Box::new(SystemHeuristic::new(1.0)));
        let s = format!("{app:?}");
        assert!(s.contains("ApplicationCoordinate"));
        assert!(s.contains("System"));
    }

    #[test]
    fn heuristic_kind_is_reported() {
        let app = ApplicationCoordinate::new(c(0.0, 0.0), Box::new(EnergyHeuristic::new(8.0, 32)));
        assert_eq!(app.heuristic_kind(), crate::HeuristicKind::Energy);
    }
}
