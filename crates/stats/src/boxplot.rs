//! Tukey box-plot summaries.
//!
//! Figure 4 of the paper shows, for each moving-percentile history size, a
//! box-plot of the per-link prediction relative error across all links in the
//! trace. [`BoxplotSummary`] computes the five-number summary plus the
//! conventional 1.5 × IQR whiskers and the outliers beyond them, which is
//! enough to regenerate that figure textually (median, quartiles, whisker
//! extent, number and maximum of outliers).

use serde::{Deserialize, Serialize};

use crate::percentile::percentile_of_sorted;
use crate::StatsError;

/// Five-number summary with Tukey whiskers and outliers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxplotSummary {
    /// Minimum observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
    /// Lower whisker: smallest observation `>= q1 - 1.5*iqr`.
    pub whisker_lo: f64,
    /// Upper whisker: largest observation `<= q3 + 1.5*iqr`.
    pub whisker_hi: f64,
    /// Observations outside the whiskers, in ascending order.
    pub outliers: Vec<f64>,
    /// Number of observations summarised.
    pub count: usize,
}

impl BoxplotSummary {
    /// Computes the summary from a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `data` is empty and
    /// [`StatsError::InvalidParameter`] when it contains NaN.
    pub fn from_samples(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if data.iter().any(|v| v.is_nan()) {
            return Err(StatsError::InvalidParameter("data contains NaN"));
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        let q1 = percentile_of_sorted(&sorted, 25.0)?;
        let median = percentile_of_sorted(&sorted, 50.0)?;
        let q3 = percentile_of_sorted(&sorted, 75.0)?;
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = sorted
            .iter()
            .cloned()
            .find(|&v| v >= lo_fence)
            .unwrap_or(sorted[0]);
        let whisker_hi = sorted
            .iter()
            .cloned()
            .rev()
            .find(|&v| v <= hi_fence)
            .unwrap_or(*sorted.last().expect("non-empty"));
        let outliers = sorted
            .iter()
            .cloned()
            .filter(|&v| v < lo_fence || v > hi_fence)
            .collect();
        Ok(BoxplotSummary {
            min: sorted[0],
            q1,
            median,
            q3,
            max: *sorted.last().expect("non-empty"),
            whisker_lo,
            whisker_hi,
            outliers,
            count: sorted.len(),
        })
    }

    /// Interquartile range (`q3 - q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Number of outliers beyond the whiskers.
    pub fn outlier_count(&self) -> usize {
        self.outliers.len()
    }

    /// The largest outlier, if any (Figure 4 annotates the maximum outlier of
    /// the short-history box-plots, e.g. "Max. 61").
    pub fn max_outlier(&self) -> Option<f64> {
        self.outliers.last().copied()
    }

    /// One-line textual rendering used by the experiment harness.
    pub fn to_row(&self) -> String {
        format!(
            "min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} whiskers=[{:.3},{:.3}] outliers={} max_outlier={}",
            self.min,
            self.q1,
            self.median,
            self.q3,
            self.max,
            self.whisker_lo,
            self.whisker_hi,
            self.outlier_count(),
            self.max_outlier().map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_error() {
        assert_eq!(
            BoxplotSummary::from_samples(&[]),
            Err(StatsError::EmptyInput)
        );
    }

    #[test]
    fn nan_is_error() {
        assert!(BoxplotSummary::from_samples(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn symmetric_data_has_symmetric_quartiles() {
        let data: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let s = BoxplotSummary::from_samples(&data).unwrap();
        assert_eq!(s.median, 5.0);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.q3, 7.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert!(s.outliers.is_empty());
        assert_eq!(s.whisker_lo, 1.0);
        assert_eq!(s.whisker_hi, 9.0);
    }

    #[test]
    fn detects_heavy_tail_outliers() {
        let mut data = vec![0.1; 40];
        data.extend_from_slice(&[15.0, 61.0]);
        let s = BoxplotSummary::from_samples(&data).unwrap();
        assert_eq!(s.outlier_count(), 2);
        assert_eq!(s.max_outlier(), Some(61.0));
        assert_eq!(s.max, 61.0);
        // Whiskers exclude the outliers.
        assert!(s.whisker_hi < 15.0);
    }

    #[test]
    fn single_element_summary() {
        let s = BoxplotSummary::from_samples(&[3.0]).unwrap();
        assert_eq!(s.min, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 1);
        assert!(s.outliers.is_empty());
    }

    #[test]
    fn to_row_contains_median() {
        let s = BoxplotSummary::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(s.to_row().contains("med=2.000"));
    }

    proptest! {
        #[test]
        fn ordering_invariants(data in proptest::collection::vec(0.0f64..1e5, 1..300)) {
            let s = BoxplotSummary::from_samples(&data).unwrap();
            prop_assert!(s.min <= s.q1 + 1e-9);
            prop_assert!(s.q1 <= s.median + 1e-9);
            prop_assert!(s.median <= s.q3 + 1e-9);
            prop_assert!(s.q3 <= s.max + 1e-9);
            prop_assert!(s.whisker_lo >= s.min - 1e-9);
            prop_assert!(s.whisker_hi <= s.max + 1e-9);
            prop_assert_eq!(s.count, data.len());
        }

        #[test]
        fn outliers_are_outside_whiskers(data in proptest::collection::vec(0.0f64..1e3, 4..200)) {
            let s = BoxplotSummary::from_samples(&data).unwrap();
            for &o in &s.outliers {
                prop_assert!(o < s.whisker_lo || o > s.whisker_hi);
            }
        }
    }
}
