//! Quantile and percentile computation.
//!
//! The moving-percentile filter (paper §IV) and every per-node summary in the
//! evaluation ("median relative error", "95th percentile relative error",
//! "95th percentile coordinate change") reduce to the same primitive: the
//! `p`-th percentile of a finite sample. We use the common
//! linear-interpolation definition (type 7 in the R taxonomy): for a sorted
//! sample `x[0..n]` the percentile `p` lies at rank `r = p/100 * (n-1)` and is
//! interpolated between `x[floor(r)]` and `x[ceil(r)]`.

use crate::StatsError;

/// Returns the `p`-th percentile (``0.0..=100.0``) of `data`.
///
/// The data does not need to be sorted; a sorted copy is made internally. Use
/// [`percentile_of_sorted`] when the caller already maintains sorted data (as
/// the moving-percentile filter does) to avoid the copy and sort.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `data` is empty and
/// [`StatsError::InvalidParameter`] if `p` is not a finite value in
/// `0.0..=100.0` or if `data` contains a NaN.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nc_stats::StatsError> {
/// let latencies = vec![80.0, 81.0, 79.0, 2400.0];
/// let p25 = nc_stats::percentile(&latencies, 25.0)?;
/// assert!((p25 - 79.75).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn percentile(data: &[f64], p: f64) -> Result<f64, StatsError> {
    if data.iter().any(|v| v.is_nan()) {
        return Err(StatsError::InvalidParameter("data contains NaN"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    percentile_of_sorted(&sorted, p)
}

/// Returns the `p`-th percentile of data that is **already sorted** in
/// ascending order.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `sorted` is empty and
/// [`StatsError::InvalidParameter`] if `p` is not a finite value in
/// `0.0..=100.0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nc_stats::StatsError> {
/// let sorted = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(nc_stats::percentile_of_sorted(&sorted, 0.0)?, 1.0);
/// assert_eq!(nc_stats::percentile_of_sorted(&sorted, 100.0)?, 4.0);
/// assert_eq!(nc_stats::percentile_of_sorted(&sorted, 50.0)?, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> Result<f64, StatsError> {
    if sorted.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !p.is_finite() || !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter(
            "percentile must be in 0..=100",
        ));
    }
    if sorted.len() == 1 {
        return Ok(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Returns the median (50th percentile) of `data`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `data` is empty, or
/// [`StatsError::InvalidParameter`] if it contains NaN.
///
/// # Examples
///
/// ```
/// let m = nc_stats::median(&[3.0, 1.0, 2.0]).unwrap();
/// assert_eq!(m, 2.0);
/// ```
pub fn median(data: &[f64]) -> Result<f64, StatsError> {
    percentile(data, 50.0)
}

/// Computes several percentiles in one pass over a single sorted copy.
///
/// This is the common case for figure generation where the same distribution
/// is summarised at the median and 95th percentile.
///
/// # Errors
///
/// Propagates the same errors as [`percentile`]; the result vector is in the
/// same order as `ps`.
pub fn percentiles(data: &[f64], ps: &[f64]) -> Result<Vec<f64>, StatsError> {
    if data.iter().any(|v| v.is_nan()) {
        return Err(StatsError::InvalidParameter("data contains NaN"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    ps.iter()
        .map(|&p| percentile_of_sorted(&sorted, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_is_error() {
        assert_eq!(percentile(&[], 50.0), Err(StatsError::EmptyInput));
        assert_eq!(percentile_of_sorted(&[], 10.0), Err(StatsError::EmptyInput));
        assert_eq!(median(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn out_of_range_percentile_is_error() {
        assert!(percentile(&[1.0], -1.0).is_err());
        assert!(percentile(&[1.0], 100.5).is_err());
        assert!(percentile(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn nan_data_is_error() {
        assert!(percentile(&[1.0, f64::NAN], 50.0).is_err());
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[42.0], 0.0).unwrap(), 42.0);
        assert_eq!(percentile(&[42.0], 50.0).unwrap(), 42.0);
        assert_eq!(percentile(&[42.0], 100.0).unwrap(), 42.0);
    }

    #[test]
    fn interpolation_matches_hand_computation() {
        let data = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&data, 25.0).unwrap(), 20.0);
        assert_eq!(percentile(&data, 50.0).unwrap(), 30.0);
        assert_eq!(percentile(&data, 75.0).unwrap(), 40.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 50.0);
        // Between ranks: 10th percentile of 5 points sits at rank 0.4.
        assert!((percentile(&data, 10.0).unwrap() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let data = vec![50.0, 10.0, 40.0, 20.0, 30.0];
        assert_eq!(percentile(&data, 50.0).unwrap(), 30.0);
    }

    #[test]
    fn median_even_length_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn percentiles_batch_matches_individual() {
        let data = vec![5.0, 1.0, 9.0, 3.0, 7.0, 2.0];
        let batch = percentiles(&data, &[25.0, 50.0, 95.0]).unwrap();
        assert_eq!(batch[0], percentile(&data, 25.0).unwrap());
        assert_eq!(batch[1], percentile(&data, 50.0).unwrap());
        assert_eq!(batch[2], percentile(&data, 95.0).unwrap());
    }

    #[test]
    fn low_percentile_robust_to_heavy_tail() {
        // The property the MP filter relies on: a huge outlier does not move
        // the low percentile.
        let mut data = vec![80.0; 99];
        data.push(30_000.0);
        let p25 = percentile(&data, 25.0).unwrap();
        assert_eq!(p25, 80.0);
    }

    proptest! {
        #[test]
        fn percentile_is_bounded_by_min_max(
            data in proptest::collection::vec(0.0f64..1e6, 1..200),
            p in 0.0f64..=100.0,
        ) {
            let v = percentile(&data, p).unwrap();
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9);
            prop_assert!(v <= max + 1e-9);
        }

        #[test]
        fn percentile_is_monotone_in_p(
            data in proptest::collection::vec(0.0f64..1e6, 1..200),
            p1 in 0.0f64..=100.0,
            p2 in 0.0f64..=100.0,
        ) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let vlo = percentile(&data, lo).unwrap();
            let vhi = percentile(&data, hi).unwrap();
            prop_assert!(vlo <= vhi + 1e-9);
        }

        #[test]
        fn percentile_invariant_under_permutation(
            mut data in proptest::collection::vec(0.0f64..1e6, 2..100),
            p in 0.0f64..=100.0,
        ) {
            let original = percentile(&data, p).unwrap();
            data.reverse();
            let reversed = percentile(&data, p).unwrap();
            prop_assert!((original - reversed).abs() < 1e-9);
        }
    }
}
