//! Statistics substrate for the *Stable and Accurate Network Coordinates*
//! reproduction.
//!
//! The paper (Ledlie & Seltzer, ICDCS 2006) measures a coordinate system
//! along two axes — **accuracy** (relative error between predicted and
//! observed latency) and **stability** (rate of coordinate change) — and its
//! change-detection heuristics rely on order statistics and two-sample tests.
//! This crate collects every statistical primitive those measurements and
//! heuristics need:
//!
//! * [`percentile`](mod@percentile) — quantiles over sorted or unsorted data with linear
//!   interpolation (used by the moving-percentile filter and by every
//!   figure's "median"/"95th percentile" summaries).
//! * [`summary`] — streaming mean/variance/min/max (Welford), used by the
//!   simulator's metric collectors.
//! * [`histogram`] — linear-, log- and custom-binned frequency histograms
//!   (Figures 2, 3 and 5 of the paper).
//! * [`cdf`] — empirical cumulative distribution functions (Figures 5, 11,
//!   13).
//! * [`boxplot`] — Tukey five-number summaries with outlier extraction
//!   (Figure 4).
//! * [`energy`] — the Székely–Rizzo energy distance between two
//!   multi-dimensional samples (the ENERGY update heuristic, §V-B).
//! * [`ranksum`] — the Wilcoxon rank-sum / Mann–Whitney two-sample test
//!   referenced by the change-detection literature the paper borrows from.
//! * [`timeseries`] — fixed-width time binning used for the "metric over
//!   time" plots (Figure 14).
//!
//! # Example
//!
//! ```
//! use nc_stats::percentile::percentile;
//!
//! let samples = vec![10.0, 12.0, 11.0, 250.0, 9.0];
//! // The 25th percentile is a robust estimate of the "expected" latency in
//! // the presence of a heavy tail, exactly what the MP filter exploits.
//! let p25 = percentile(&samples, 25.0).unwrap();
//! assert!(p25 < 12.0);
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod boxplot;
pub mod cdf;
pub mod energy;
pub mod histogram;
pub mod percentile;
pub mod ranksum;
pub mod summary;
pub mod timeseries;

pub use boxplot::BoxplotSummary;
pub use cdf::Ecdf;
pub use energy::{
    energy_distance, energy_distance_by, energy_distance_with_cached_within, within_sum_by,
};
pub use histogram::{Histogram, HistogramBin};
pub use percentile::{median, percentile, percentile_of_sorted};
pub use ranksum::{rank_sum_test, RankSumOutcome};
pub use summary::StreamingSummary;
pub use timeseries::TimeBinner;

/// Errors produced by statistics routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input sample set was empty but the statistic requires at least one
    /// observation.
    EmptyInput,
    /// A parameter was outside its documented domain (for example a
    /// percentile not in `0.0..=100.0`).
    InvalidParameter(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input sample set was empty"),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        assert!(!StatsError::EmptyInput.to_string().is_empty());
        assert!(!StatsError::InvalidParameter("threshold")
            .to_string()
            .is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
