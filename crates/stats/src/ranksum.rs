//! Wilcoxon rank-sum (Mann–Whitney U) two-sample test.
//!
//! The change-detection scheme the paper borrows from Kifer, Ben-David and
//! Gehrke compares the start window `W_s` and current window `W_c` with a
//! standard two-sample test; rank-sum is the example the paper names for
//! one-dimensional data. The coordinate heuristics themselves use the
//! multi-dimensional ENERGY and RELATIVE statistics, but the rank-sum test is
//! provided both for completeness and because it is useful for detecting
//! change in one-dimensional latency streams (e.g. deciding that a link's
//! underlying latency shifted after a route change).

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// Outcome of a rank-sum test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankSumOutcome {
    /// The Mann–Whitney U statistic for the first sample.
    pub u_statistic: f64,
    /// The standard normal z-score of the U statistic (large-sample
    /// approximation with tie correction).
    pub z_score: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_value: f64,
}

impl RankSumOutcome {
    /// True when the two samples differ at the given significance level
    /// (e.g. `0.05`).
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Standard normal cumulative distribution function via the complementary
/// error function (Abramowitz–Stegun 7.1.26 polynomial approximation,
/// accurate to ~1.5e-7 which is ample for change detection).
fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(x))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

/// Performs the Wilcoxon rank-sum test on two samples.
///
/// Uses the normal approximation with tie correction, which is accurate for
/// the window sizes the paper uses (≥ 8 observations per window).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when either sample is empty and
/// [`StatsError::InvalidParameter`] when a sample contains NaN.
///
/// # Examples
///
/// ```
/// let before: Vec<f64> = (0..30).map(|i| 80.0 + (i % 5) as f64).collect();
/// let after: Vec<f64> = (0..30).map(|i| 140.0 + (i % 5) as f64).collect();
/// let outcome = nc_stats::rank_sum_test(&before, &after).unwrap();
/// assert!(outcome.is_significant(0.01), "a 60 ms level shift is detected");
/// ```
pub fn rank_sum_test(a: &[f64], b: &[f64]) -> Result<RankSumOutcome, StatsError> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if a.iter().chain(b.iter()).any(|v| v.is_nan()) {
        return Err(StatsError::InvalidParameter("samples contain NaN"));
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    let n = n1 + n2;

    // Pool, remembering origin, and rank with mid-ranks for ties.
    let mut pooled: Vec<(f64, bool)> = a
        .iter()
        .map(|&v| (v, true))
        .chain(b.iter().map(|&v| (v, false)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("NaN filtered above"));

    let mut ranks = vec![0.0f64; pooled.len()];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let tied = (j - i + 1) as f64;
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = rank;
        }
        if tied > 1.0 {
            tie_correction += tied * tied * tied - tied;
        }
        i = j + 1;
    }

    let r1: f64 = pooled
        .iter()
        .zip(ranks.iter())
        .filter(|((_, is_a), _)| *is_a)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let mean_u = n1 * n2 / 2.0;
    let var_u = n1 * n2 / 12.0 * ((n + 1.0) - tie_correction / (n * (n - 1.0)));
    let z = if var_u <= 0.0 {
        0.0
    } else {
        // Continuity correction toward the mean.
        let adjustment = if u1 > mean_u {
            -0.5
        } else if u1 < mean_u {
            0.5
        } else {
            0.0
        };
        (u1 - mean_u + adjustment) / var_u.sqrt()
    };
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Ok(RankSumOutcome {
        u_statistic: u1,
        z_score: z,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_samples_are_errors() {
        assert!(rank_sum_test(&[], &[1.0]).is_err());
        assert!(rank_sum_test(&[1.0], &[]).is_err());
    }

    #[test]
    fn nan_is_error() {
        assert!(rank_sum_test(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn identical_distributions_not_significant() {
        let a: Vec<f64> = (0..40).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| ((i + 3) % 10) as f64).collect();
        let outcome = rank_sum_test(&a, &b).unwrap();
        assert!(!outcome.is_significant(0.01), "p={}", outcome.p_value);
    }

    #[test]
    fn shifted_distributions_are_significant() {
        let a: Vec<f64> = (0..50).map(|i| 10.0 + (i % 7) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 30.0 + (i % 7) as f64).collect();
        let outcome = rank_sum_test(&a, &b).unwrap();
        assert!(outcome.is_significant(0.001));
        assert!(outcome.z_score.abs() > 3.0);
    }

    #[test]
    fn all_equal_values_yield_zero_z() {
        let a = vec![5.0; 20];
        let b = vec![5.0; 20];
        let outcome = rank_sum_test(&a, &b).unwrap();
        assert!(outcome.z_score.abs() < 1e-9);
        assert!(outcome.p_value > 0.9);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_is_monotone_and_bounded() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!(normal_cdf(-5.0) < 1e-4);
        assert!(normal_cdf(5.0) > 1.0 - 1e-4);
    }

    proptest! {
        #[test]
        fn p_value_is_in_unit_interval(
            a in proptest::collection::vec(0.0f64..100.0, 2..50),
            b in proptest::collection::vec(0.0f64..100.0, 2..50),
        ) {
            let outcome = rank_sum_test(&a, &b).unwrap();
            prop_assert!((0.0..=1.0).contains(&outcome.p_value));
        }

        #[test]
        fn symmetric_in_samples(
            a in proptest::collection::vec(0.0f64..100.0, 2..40),
            b in proptest::collection::vec(0.0f64..100.0, 2..40),
        ) {
            let ab = rank_sum_test(&a, &b).unwrap();
            let ba = rank_sum_test(&b, &a).unwrap();
            prop_assert!((ab.p_value - ba.p_value).abs() < 1e-6);
            prop_assert!((ab.z_score + ba.z_score).abs() < 1e-6);
        }
    }
}
