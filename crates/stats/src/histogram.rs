//! Frequency histograms with linear, logarithmic or caller-supplied bin
//! edges.
//!
//! Figure 2 of the paper summarises 43 million raw latency samples with a
//! histogram whose bins are 100 ms wide below one second, 1000 ms wide up to
//! three seconds, and open-ended above that; Figure 3 uses 200 ms-wide bins
//! for a single link. [`Histogram::with_edges`] reproduces those exact
//! binnings and [`Histogram::paper_figure2_bins`] provides the Figure-2 edges
//! directly.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// A single histogram bin: `[lo, hi)` with an observation count.
///
/// The final bin of a histogram built from open-ended edges uses
/// `hi = f64::INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBin {
    /// Inclusive lower edge of the bin.
    pub lo: f64,
    /// Exclusive upper edge of the bin (`f64::INFINITY` for an open last bin).
    pub hi: f64,
    /// Number of observations that fell in `[lo, hi)`.
    pub count: u64,
}

impl HistogramBin {
    /// Human-readable label such as `"100-199"` or `">=3000"`, matching the
    /// axis labels used in the paper's figures.
    pub fn label(&self) -> String {
        if self.hi.is_infinite() {
            format!(">={:.0}", self.lo)
        } else {
            format!("{:.0}-{:.0}", self.lo, self.hi - 1.0)
        }
    }
}

/// Frequency histogram over `f64` observations.
///
/// # Examples
///
/// ```
/// use nc_stats::Histogram;
///
/// let mut h = Histogram::linear(0.0, 100.0, 10).unwrap();
/// for v in [5.0, 15.0, 15.5, 99.0, 250.0] {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.overflow(), 1); // 250.0 is above the last edge
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bin edges; `edges[i]..edges[i+1]` is bin `i`. Always ≥ 2 entries.
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    /// True when the histogram treats values above the last edge as belonging
    /// to a final open-ended bin rather than as overflow.
    open_ended: bool,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `bins == 0`, when
    /// `lo >= hi`, or when either bound is non-finite.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter("bins must be > 0"));
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(StatsError::InvalidParameter("invalid histogram range"));
        }
        let width = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + width * i as f64).collect();
        Ok(Self::from_edge_vec(edges, false))
    }

    /// Creates a histogram with logarithmically spaced bins between `lo` and
    /// `hi` (both must be positive).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `bins == 0`, when
    /// `lo <= 0`, or when `lo >= hi`.
    pub fn logarithmic(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter("bins must be > 0"));
        }
        if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || lo >= hi {
            return Err(StatsError::InvalidParameter("invalid logarithmic range"));
        }
        let log_lo = lo.ln();
        let log_hi = hi.ln();
        let step = (log_hi - log_lo) / bins as f64;
        let edges = (0..=bins)
            .map(|i| (log_lo + step * i as f64).exp())
            .collect();
        Ok(Self::from_edge_vec(edges, false))
    }

    /// Creates a histogram from explicit ascending bin edges.
    ///
    /// When `open_ended` is true, observations at or above the last edge are
    /// counted in an additional final bin `[last_edge, +inf)` instead of being
    /// treated as overflow.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when fewer than two edges are
    /// given or the edges are not strictly increasing and finite.
    pub fn with_edges(edges: &[f64], open_ended: bool) -> Result<Self, StatsError> {
        if edges.len() < 2 {
            return Err(StatsError::InvalidParameter("need at least two edges"));
        }
        if edges.iter().any(|e| !e.is_finite()) || edges.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StatsError::InvalidParameter(
                "edges must be strictly increasing",
            ));
        }
        Ok(Self::from_edge_vec(edges.to_vec(), open_ended))
    }

    /// The bin edges used by Figure 2 of the paper: 100 ms bins up to 1 s,
    /// 1000 ms bins up to 3 s, and an open-ended `>= 3000` bin.
    pub fn paper_figure2_bins() -> Self {
        let mut edges: Vec<f64> = (0..=10).map(|i| i as f64 * 100.0).collect();
        edges.push(2000.0);
        edges.push(3000.0);
        Self::from_edge_vec(edges, true)
    }

    /// The bin edges used by Figure 3 of the paper: 200 ms bins from 0 to
    /// 2200 ms.
    pub fn paper_figure3_bins() -> Self {
        let edges: Vec<f64> = (0..=11).map(|i| i as f64 * 200.0).collect();
        Self::from_edge_vec(edges, true)
    }

    fn from_edge_vec(edges: Vec<f64>, open_ended: bool) -> Self {
        let bins = edges.len() - 1 + usize::from(open_ended);
        Histogram {
            edges,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            open_ended,
        }
    }

    /// Records one observation.
    ///
    /// Non-finite observations are counted as overflow (positive) or
    /// underflow (negative / NaN) so that [`Histogram::total`] still accounts
    /// for every call.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            self.underflow += 1;
            return;
        }
        let first = self.edges[0];
        let last = *self.edges.last().expect("at least two edges");
        if value < first {
            self.underflow += 1;
            return;
        }
        if value >= last {
            if self.open_ended {
                let idx = self.counts.len() - 1;
                self.counts[idx] += 1;
            } else {
                self.overflow += 1;
            }
            return;
        }
        // Binary search for the bin: index of the last edge <= value.
        let idx = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&value).expect("finite edges"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.counts[idx] += 1;
    }

    /// Records every observation in the iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// The populated bins in ascending order of their lower edge.
    pub fn bins(&self) -> Vec<HistogramBin> {
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &count) in self.counts.iter().enumerate() {
            let lo = self.edges[i.min(self.edges.len() - 1)];
            let hi = if i + 1 < self.edges.len() {
                self.edges[i + 1]
            } else {
                f64::INFINITY
            };
            out.push(HistogramBin { lo, hi, count });
        }
        out
    }

    /// Total number of recorded observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Number of observations below the first edge (or NaN).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above the last edge when the histogram is
    /// not open-ended.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of observations at or above `threshold`.
    ///
    /// Used for the paper's "0.4% of measurements are greater than one
    /// second" observation. The threshold is resolved against bin lower
    /// edges; it should coincide with an edge for an exact answer.
    pub fn fraction_at_or_above(&self, threshold: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut above = self.overflow;
        for bin in self.bins() {
            if bin.lo >= threshold {
                above += bin.count;
            }
        }
        above as f64 / total as f64
    }

    /// Renders the histogram as an aligned text table (label, count), one bin
    /// per line — the textual analogue of the paper's bar charts.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for bin in self.bins() {
            out.push_str(&format!("{:>12}  {}\n", bin.label(), bin.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_rejects_bad_parameters() {
        assert!(Histogram::linear(0.0, 10.0, 0).is_err());
        assert!(Histogram::linear(10.0, 0.0, 5).is_err());
        assert!(Histogram::linear(f64::NAN, 1.0, 5).is_err());
    }

    #[test]
    fn logarithmic_rejects_bad_parameters() {
        assert!(Histogram::logarithmic(0.0, 10.0, 5).is_err());
        assert!(Histogram::logarithmic(-1.0, 10.0, 5).is_err());
        assert!(Histogram::logarithmic(10.0, 1.0, 5).is_err());
        assert!(Histogram::logarithmic(1.0, 10.0, 0).is_err());
    }

    #[test]
    fn with_edges_requires_increasing() {
        assert!(Histogram::with_edges(&[0.0], false).is_err());
        assert!(Histogram::with_edges(&[0.0, 0.0], false).is_err());
        assert!(Histogram::with_edges(&[1.0, 0.0], false).is_err());
        assert!(Histogram::with_edges(&[0.0, 1.0, 2.0], false).is_ok());
    }

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::linear(0.0, 10.0, 10).unwrap();
        h.record(0.0);
        h.record(0.5);
        h.record(9.999);
        h.record(10.0); // overflow
        h.record(-1.0); // underflow
        let bins = h.bins();
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[9].count, 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn open_ended_collects_tail() {
        let mut h = Histogram::paper_figure2_bins();
        h.record(50.0);
        h.record(1500.0);
        h.record(2500.0);
        h.record(9999.0);
        h.record(45_000.0);
        let bins = h.bins();
        // 13 bins: 10 x 100ms, 1000-1999, 2000-2999, >=3000
        assert_eq!(bins.len(), 13);
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[10].count, 1);
        assert_eq!(bins[11].count, 1);
        assert_eq!(bins[12].count, 2);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn figure2_labels_match_paper_axis() {
        let h = Histogram::paper_figure2_bins();
        let bins = h.bins();
        assert_eq!(bins[0].label(), "0-99");
        assert_eq!(bins[9].label(), "900-999");
        assert_eq!(bins[10].label(), "1000-1999");
        assert_eq!(bins[12].label(), ">=3000");
    }

    #[test]
    fn fraction_above_threshold() {
        let mut h = Histogram::paper_figure2_bins();
        for _ in 0..996 {
            h.record(80.0);
        }
        for _ in 0..4 {
            h.record(2_000.0);
        }
        let frac = h.fraction_at_or_above(1000.0);
        assert!((frac - 0.004).abs() < 1e-9);
    }

    #[test]
    fn nan_counts_as_underflow() {
        let mut h = Histogram::linear(0.0, 1.0, 2).unwrap();
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn to_table_lists_every_bin() {
        let mut h = Histogram::linear(0.0, 4.0, 4).unwrap();
        h.record_all([0.5, 1.5, 2.5, 3.5]);
        let table = h.to_table();
        assert_eq!(table.lines().count(), 4);
    }

    proptest! {
        #[test]
        fn total_equals_number_of_records(
            values in proptest::collection::vec(-10.0f64..5000.0, 0..500)
        ) {
            let mut h = Histogram::paper_figure2_bins();
            h.record_all(values.iter().cloned());
            prop_assert_eq!(h.total(), values.len() as u64);
        }

        #[test]
        fn logarithmic_edges_cover_range(
            lo in 0.1f64..10.0,
            span in 1.5f64..1000.0,
            bins in 1usize..50,
        ) {
            let hi = lo * span;
            let h = Histogram::logarithmic(lo, hi, bins).unwrap();
            let b = h.bins();
            prop_assert!((b[0].lo - lo).abs() < 1e-6 * lo);
            prop_assert!((b[b.len() - 1].hi - hi).abs() < 1e-6 * hi);
        }
    }
}
