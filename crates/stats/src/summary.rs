//! Streaming summaries (count, mean, variance, min, max) using Welford's
//! online algorithm.
//!
//! The simulator's metric collectors fold millions of per-observation error
//! and displacement values; storing them all is wasteful when only aggregate
//! statistics are reported, so this type accumulates them in constant space.

use serde::{Deserialize, Serialize};

/// Constant-space accumulator of count, mean, variance, min and max.
///
/// # Examples
///
/// ```
/// use nc_stats::StreamingSummary;
///
/// let mut s = StreamingSummary::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        StreamingSummary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    ///
    /// Non-finite values are ignored (the synthetic trace generator never
    /// produces them, but a defensive simulator should not have a single NaN
    /// poison hours of accumulated metrics).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Merges another summary into this one (parallel collection).
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (0.0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 when fewer than one observation).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance (0.0 when fewer than two
    /// observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Minimum recorded value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum recorded value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl Extend<f64> for StreamingSummary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for StreamingSummary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = StreamingSummary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_defaults() {
        let s = StreamingSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_value() {
        let s: StreamingSummary = [7.5].into_iter().collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.min(), Some(7.5));
        assert_eq!(s.max(), Some(7.5));
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = StreamingSummary::new();
        s.record(1.0);
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 + 2.0).collect();
        let all: StreamingSummary = data.iter().cloned().collect();
        let first: StreamingSummary = data[..40].iter().cloned().collect();
        let mut merged = first;
        let second: StreamingSummary = data[40..].iter().cloned().collect();
        merged.merge(&second);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-9);
        assert!((merged.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data: StreamingSummary = [1.0, 2.0, 3.0].into_iter().collect();
        let mut a = data;
        a.merge(&StreamingSummary::new());
        assert_eq!(a, data);
        let mut b = StreamingSummary::new();
        b.merge(&data);
        assert_eq!(b.count(), 3);
        assert!((b.mean() - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn mean_between_min_and_max(data in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
            let s: StreamingSummary = data.iter().cloned().collect();
            prop_assert!(s.mean() >= s.min().unwrap() - 1e-9);
            prop_assert!(s.mean() <= s.max().unwrap() + 1e-9);
        }

        #[test]
        fn variance_nonnegative(data in proptest::collection::vec(-1e6f64..1e6, 0..500)) {
            let s: StreamingSummary = data.iter().cloned().collect();
            prop_assert!(s.population_variance() >= -1e-9);
            prop_assert!(s.sample_variance() >= -1e-9);
        }

        #[test]
        fn merge_is_order_independent(
            a in proptest::collection::vec(-1e3f64..1e3, 0..100),
            b in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ) {
            let sa: StreamingSummary = a.iter().cloned().collect();
            let sb: StreamingSummary = b.iter().cloned().collect();
            let mut ab = sa; ab.merge(&sb);
            let mut ba = sb; ba.merge(&sa);
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6);
            prop_assert!((ab.population_variance() - ba.population_variance()).abs() < 1e-6);
        }
    }
}
