//! Empirical cumulative distribution functions.
//!
//! Figures 5, 11 and 13 of the paper report results as CDFs over the per-node
//! distributions of relative error and instability. [`Ecdf`] stores a sample,
//! evaluates the empirical CDF at arbitrary points, inverts it (quantiles) and
//! renders the evenly spaced series used to regenerate those figures.

use serde::{Deserialize, Serialize};

use crate::percentile::percentile_of_sorted;
use crate::StatsError;

/// Empirical CDF over a finite sample.
///
/// # Examples
///
/// ```
/// use nc_stats::Ecdf;
///
/// let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.5);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample. The sample is sorted internally.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty sample and
    /// [`StatsError::InvalidParameter`] when the sample contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if sample.iter().any(|v| v.is_nan()) {
            return Err(StatsError::InvalidParameter("sample contains NaN"));
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Ok(Ecdf { sorted: sample })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.sorted.len();
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / n as f64
    }

    /// The `q`-quantile (`0.0..=1.0`) of the sample, linearly interpolated.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `q` is outside
    /// `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter("quantile must be in 0..=1"));
        }
        percentile_of_sorted(&self.sorted, q * 100.0)
    }

    /// Minimum of the sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum of the sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Median of the sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5).expect("0.5 is in range")
    }

    /// Returns `(value, cumulative_fraction)` pairs for every observation —
    /// the staircase representation used to plot the figure CDFs.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// Samples the CDF at `count` evenly spaced cumulative fractions
    /// (excluding 0), returning `(quantile_value, fraction)` pairs. Useful for
    /// compact textual figure output.
    pub fn sampled_points(&self, count: usize) -> Vec<(f64, f64)> {
        if count == 0 {
            return Vec::new();
        }
        (1..=count)
            .map(|i| {
                let q = i as f64 / count as f64;
                (self.quantile(q).expect("q in range"), q)
            })
            .collect()
    }

    /// Fraction of the sample strictly greater than `x` — used for statements
    /// such as "14% of the nodes experienced a 95th-percentile relative error
    /// greater than one" (Figure 13).
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_sample_is_error() {
        assert_eq!(Ecdf::new(vec![]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn nan_sample_is_error() {
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn eval_step_values() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(cdf.eval(0.0), 0.0);
        assert!((cdf.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.eval(3.0), 1.0);
    }

    #[test]
    fn quantile_bounds() {
        let cdf = Ecdf::new(vec![5.0, 10.0, 15.0]).unwrap();
        assert_eq!(cdf.quantile(0.0).unwrap(), 5.0);
        assert_eq!(cdf.quantile(1.0).unwrap(), 15.0);
        assert_eq!(cdf.quantile(0.5).unwrap(), 10.0);
        assert!(cdf.quantile(1.5).is_err());
    }

    #[test]
    fn points_are_monotone_staircase() {
        let cdf = Ecdf::new(vec![4.0, 2.0, 9.0, 7.0]).unwrap();
        let pts = cdf.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn fraction_above_matches_eval() {
        let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((cdf.fraction_above(2.0) - 0.5).abs() < 1e-12);
        assert_eq!(cdf.fraction_above(100.0), 0.0);
        assert_eq!(cdf.fraction_above(0.0), 1.0);
    }

    #[test]
    fn sampled_points_has_requested_len() {
        let cdf = Ecdf::new((1..=100).map(|i| i as f64).collect()).unwrap();
        assert_eq!(cdf.sampled_points(10).len(), 10);
        assert!(cdf.sampled_points(0).is_empty());
    }

    proptest! {
        #[test]
        fn eval_is_monotone(
            sample in proptest::collection::vec(0.0f64..1e4, 1..200),
            x1 in 0.0f64..1e4,
            x2 in 0.0f64..1e4,
        ) {
            let cdf = Ecdf::new(sample).unwrap();
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            prop_assert!(cdf.eval(lo) <= cdf.eval(hi));
        }

        #[test]
        fn eval_is_bounded(
            sample in proptest::collection::vec(0.0f64..1e4, 1..200),
            x in -1e4f64..2e4,
        ) {
            let cdf = Ecdf::new(sample).unwrap();
            let v = cdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn quantile_roundtrip(
            sample in proptest::collection::vec(0.0f64..1e4, 2..200),
            q in 0.0f64..=1.0,
        ) {
            let cdf = Ecdf::new(sample).unwrap();
            let v = cdf.quantile(q).unwrap();
            prop_assert!(v >= cdf.min() - 1e-9);
            prop_assert!(v <= cdf.max() + 1e-9);
        }
    }
}
