//! Energy distance between two multi-dimensional samples (Székely & Rizzo).
//!
//! The ENERGY application-update heuristic (paper §V-B) declares a
//! significant coordinate change when the energy distance between the start
//! window `W_s` and the current window `W_c` of recent system-level
//! coordinates exceeds a threshold. The statistic over finite sets
//! `A = {a_1..a_n1}` and `B = {b_1..b_n2}` is
//!
//! ```text
//! e(A,B) = (n1*n2)/(n1+n2) * ( 2/(n1*n2) * Σ_i Σ_j ||a_i - b_j||
//!                              - 1/n1²   * Σ_i Σ_j ||a_i - a_j||
//!                              - 1/n2²   * Σ_i Σ_j ||b_i - b_j|| )
//! ```
//!
//! which is non-negative and zero when the two samples have identical
//! empirical distributions.

use crate::StatsError;

/// Euclidean distance between two equal-length points.
fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Computes the energy distance between two samples of points expressed as
/// `f64` slices (each point one slice, all the same dimension).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when either sample is empty and
/// [`StatsError::InvalidParameter`] when points have inconsistent dimensions.
///
/// # Examples
///
/// ```
/// let a = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
/// let b = vec![vec![10.0, 0.0], vec![11.0, 0.0]];
/// let e = nc_stats::energy_distance(&a, &b).unwrap();
/// assert!(e > 5.0, "distant clusters have large energy distance");
/// ```
pub fn energy_distance(a: &[Vec<f64>], b: &[Vec<f64>]) -> Result<f64, StatsError> {
    let a_refs: Vec<&[f64]> = a.iter().map(|p| p.as_slice()).collect();
    let b_refs: Vec<&[f64]> = b.iter().map(|p| p.as_slice()).collect();
    if let (Some(first_a), Some(first_b)) = (a_refs.first(), b_refs.first()) {
        let dim = first_a.len();
        if first_b.len() != dim
            || a_refs.iter().any(|p| p.len() != dim)
            || b_refs.iter().any(|p| p.len() != dim)
        {
            return Err(StatsError::InvalidParameter(
                "all points must share one dimension",
            ));
        }
    }
    energy_distance_by(&a_refs, &b_refs, |x, y| euclidean(x, y))
}

/// Computes the energy distance between two samples of arbitrary items given
/// a caller-supplied distance function.
///
/// This is the form used by the coordinate crates, where the items are
/// `Coordinate` values and the distance is the coordinate-space distance
/// (possibly including heights).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when either sample is empty.
pub fn energy_distance_by<T, F>(a: &[T], b: &[T], dist: F) -> Result<f64, StatsError>
where
    F: Fn(&T, &T) -> f64,
{
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let within_a = within_sum_by(a, &dist);
    energy_distance_with_cached_within(a, b, within_a, dist)
}

/// The within-sample pairwise sum `Σ_{i≠j} d(x_i, x_j)` over one sample, in
/// the fixed `(i, j)` iteration order [`energy_distance_by`] uses.
///
/// Exposed so callers whose first sample is *frozen* between computations
/// (the ENERGY heuristic's start window, §V-B) can compute this sum once
/// and reuse it through [`energy_distance_with_cached_within`] — the cached
/// path is bit-identical to the full recomputation because both run this
/// exact loop.
pub fn within_sum_by<T, F>(sample: &[T], dist: F) -> f64
where
    F: Fn(&T, &T) -> f64,
{
    let n = sample.len();
    // Four independent accumulator lanes break the loop-carried addition
    // dependency (a single `sum +=` chain serialises on the FPU's add
    // latency and dominates the whole statistic for 32-element windows).
    // Lane assignment is a fixed function of the pair index, so the result
    // is deterministic — it differs from a single-chain sum only in
    // floating-point association (last-ulp).
    let mut lanes = [0.0f64; 4];
    let mut pair = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                lanes[pair & 3] += dist(&sample[i], &sample[j]);
                pair += 1;
            }
        }
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

/// [`energy_distance_by`] with the first sample's within-sum supplied by the
/// caller (see [`within_sum_by`]). The cross term and the second sample's
/// within term are computed as usual.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when either sample is empty.
pub fn energy_distance_with_cached_within<T, F>(
    a: &[T],
    b: &[T],
    within_a: f64,
    dist: F,
) -> Result<f64, StatsError>
where
    F: Fn(&T, &T) -> f64,
{
    let n1 = a.len();
    let n2 = b.len();
    if n1 == 0 || n2 == 0 {
        return Err(StatsError::EmptyInput);
    }
    let n1f = n1 as f64;
    let n2f = n2 as f64;

    // Same four-lane accumulation as `within_sum_by`; see the note there.
    let mut lanes = [0.0f64; 4];
    let mut pair = 0usize;
    for ai in a {
        for bj in b {
            lanes[pair & 3] += dist(ai, bj);
            pair += 1;
        }
    }
    let cross = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);

    let within_b = within_sum_by(b, &dist);

    let term = 2.0 / (n1f * n2f) * cross - within_a / (n1f * n1f) - within_b / (n2f * n2f);
    Ok(n1f * n2f / (n1f + n2f) * term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pt(xs: &[f64]) -> Vec<f64> {
        xs.to_vec()
    }

    #[test]
    fn empty_sample_is_error() {
        assert!(energy_distance(&[], &[pt(&[1.0])]).is_err());
        assert!(energy_distance(&[pt(&[1.0])], &[]).is_err());
    }

    #[test]
    fn mismatched_dimensions_is_error() {
        assert!(energy_distance(&[pt(&[1.0, 2.0])], &[pt(&[1.0])]).is_err());
    }

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = vec![pt(&[1.0, 2.0, 3.0]), pt(&[4.0, 5.0, 6.0])];
        let e = energy_distance(&a, &a).unwrap();
        assert!(e.abs() < 1e-9, "got {e}");
    }

    #[test]
    fn identical_singletons_have_zero_distance() {
        let a = vec![pt(&[3.0, 4.0])];
        let e = energy_distance(&a, &a.clone()).unwrap();
        assert!(e.abs() < 1e-12);
    }

    #[test]
    fn separated_clusters_scale_with_separation() {
        let a: Vec<Vec<f64>> = (0..8).map(|i| pt(&[i as f64 * 0.1, 0.0])).collect();
        let near: Vec<Vec<f64>> = (0..8).map(|i| pt(&[1.0 + i as f64 * 0.1, 0.0])).collect();
        let far: Vec<Vec<f64>> = (0..8).map(|i| pt(&[50.0 + i as f64 * 0.1, 0.0])).collect();
        let e_near = energy_distance(&a, &near).unwrap();
        let e_far = energy_distance(&a, &far).unwrap();
        assert!(e_near > 0.0);
        assert!(e_far > e_near * 10.0);
    }

    #[test]
    fn translation_invariance_of_pairs() {
        // Shifting both samples by the same offset leaves the statistic
        // unchanged.
        let a = vec![pt(&[0.0, 0.0]), pt(&[1.0, 1.0]), pt(&[2.0, 0.5])];
        let b = vec![pt(&[5.0, 5.0]), pt(&[6.0, 6.0])];
        let shift = |p: &Vec<f64>| vec![p[0] + 100.0, p[1] - 40.0];
        let a2: Vec<Vec<f64>> = a.iter().map(shift).collect();
        let b2: Vec<Vec<f64>> = b.iter().map(shift).collect();
        let e1 = energy_distance(&a, &b).unwrap();
        let e2 = energy_distance(&a2, &b2).unwrap();
        assert!((e1 - e2).abs() < 1e-9);
    }

    #[test]
    fn energy_distance_by_matches_slice_version() {
        let a = vec![pt(&[1.0, 0.0]), pt(&[2.0, 1.0])];
        let b = vec![pt(&[4.0, 4.0]), pt(&[5.0, 5.0]), pt(&[6.0, 4.0])];
        let direct = energy_distance(&a, &b).unwrap();
        let a_refs: Vec<&[f64]> = a.iter().map(|p| p.as_slice()).collect();
        let b_refs: Vec<&[f64]> = b.iter().map(|p| p.as_slice()).collect();
        let by = energy_distance_by(&a_refs, &b_refs, |x, y| euclidean(x, y)).unwrap();
        assert!((direct - by).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn energy_distance_is_nonnegative(
            a in proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 3), 1..12),
            b in proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 3), 1..12),
        ) {
            let e = energy_distance(&a, &b).unwrap();
            prop_assert!(e >= -1e-9, "energy distance must be non-negative, got {}", e);
        }

        #[test]
        fn energy_distance_is_symmetric(
            a in proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 2), 1..10),
            b in proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 2), 1..10),
        ) {
            let e_ab = energy_distance(&a, &b).unwrap();
            let e_ba = energy_distance(&b, &a).unwrap();
            prop_assert!((e_ab - e_ba).abs() < 1e-9);
        }
    }
}
