//! Fixed-width time binning of metric streams.
//!
//! Figure 14 of the paper plots the median relative error and the mean
//! instability per ten-minute interval over a four-hour run. [`TimeBinner`]
//! accumulates `(timestamp, value)` samples into fixed-width bins and reports
//! a chosen per-bin statistic.

use serde::{Deserialize, Serialize};

use crate::percentile::percentile;
use crate::StatsError;

/// Which statistic to report per bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinStatistic {
    /// Arithmetic mean of the samples in the bin.
    Mean,
    /// Median of the samples in the bin.
    Median,
    /// An arbitrary percentile of the samples in the bin (0–100).
    Percentile(u8),
    /// Sum of the samples in the bin (useful for "aggregate coordinate change
    /// per interval").
    Sum,
    /// Number of samples in the bin.
    Count,
}

/// One reported bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBin {
    /// Start of the bin (seconds).
    pub start: f64,
    /// End of the bin (seconds, exclusive).
    pub end: f64,
    /// Value of the requested statistic (`None` when the bin is empty and the
    /// statistic is undefined for empty input).
    pub value: Option<f64>,
    /// Number of samples in the bin.
    pub count: usize,
}

/// Accumulates `(time, value)` samples into fixed-width bins.
///
/// # Examples
///
/// ```
/// use nc_stats::timeseries::{BinStatistic, TimeBinner};
///
/// let mut binner = TimeBinner::new(0.0, 60.0).unwrap();
/// binner.record(10.0, 1.0);
/// binner.record(20.0, 3.0);
/// binner.record(70.0, 10.0);
/// let bins = binner.bins(BinStatistic::Mean);
/// assert_eq!(bins.len(), 2);
/// assert_eq!(bins[0].value, Some(2.0));
/// assert_eq!(bins[1].value, Some(10.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBinner {
    origin: f64,
    width: f64,
    samples: Vec<Vec<f64>>,
}

impl TimeBinner {
    /// Creates a binner whose first bin starts at `origin` and whose bins are
    /// `width` seconds wide.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `width` is not a
    /// positive finite number or `origin` is not finite.
    pub fn new(origin: f64, width: f64) -> Result<Self, StatsError> {
        if !width.is_finite() || width <= 0.0 || !origin.is_finite() {
            return Err(StatsError::InvalidParameter("bin width must be positive"));
        }
        Ok(TimeBinner {
            origin,
            width,
            samples: Vec::new(),
        })
    }

    /// Records `value` at time `time` (seconds). Samples before the origin
    /// are silently dropped; samples extend the bin list as needed.
    pub fn record(&mut self, time: f64, value: f64) {
        if !time.is_finite() || !value.is_finite() || time < self.origin {
            return;
        }
        let idx = ((time - self.origin) / self.width).floor() as usize;
        if idx >= self.samples.len() {
            self.samples.resize_with(idx + 1, Vec::new);
        }
        self.samples[idx].push(value);
    }

    /// Number of (possibly empty) bins spanned so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Reports every bin with the requested statistic.
    pub fn bins(&self, stat: BinStatistic) -> Vec<TimeBin> {
        self.samples
            .iter()
            .enumerate()
            .map(|(i, values)| {
                let start = self.origin + i as f64 * self.width;
                let end = start + self.width;
                let value = match stat {
                    BinStatistic::Mean => {
                        if values.is_empty() {
                            None
                        } else {
                            Some(values.iter().sum::<f64>() / values.len() as f64)
                        }
                    }
                    BinStatistic::Median => percentile(values, 50.0).ok(),
                    BinStatistic::Percentile(p) => percentile(values, f64::from(p)).ok(),
                    BinStatistic::Sum => Some(values.iter().sum()),
                    BinStatistic::Count => Some(values.len() as f64),
                };
                TimeBin {
                    start,
                    end,
                    value,
                    count: values.len(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_width() {
        assert!(TimeBinner::new(0.0, 0.0).is_err());
        assert!(TimeBinner::new(0.0, -1.0).is_err());
        assert!(TimeBinner::new(0.0, f64::NAN).is_err());
        assert!(TimeBinner::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn drops_samples_before_origin() {
        let mut b = TimeBinner::new(100.0, 10.0).unwrap();
        b.record(50.0, 1.0);
        assert!(b.is_empty());
        b.record(105.0, 2.0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn median_and_percentile_statistics() {
        let mut b = TimeBinner::new(0.0, 10.0).unwrap();
        for (t, v) in [(1.0, 1.0), (2.0, 2.0), (3.0, 100.0)] {
            b.record(t, v);
        }
        let med = b.bins(BinStatistic::Median);
        assert_eq!(med[0].value, Some(2.0));
        let p95 = b.bins(BinStatistic::Percentile(0));
        assert_eq!(p95[0].value, Some(1.0));
    }

    #[test]
    fn empty_intermediate_bins_are_reported() {
        let mut b = TimeBinner::new(0.0, 10.0).unwrap();
        b.record(5.0, 1.0);
        b.record(35.0, 2.0);
        let bins = b.bins(BinStatistic::Mean);
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[1].value, None);
        assert_eq!(bins[1].count, 0);
        assert_eq!(bins[3].value, Some(2.0));
    }

    #[test]
    fn sum_and_count_statistics() {
        let mut b = TimeBinner::new(0.0, 60.0).unwrap();
        b.record(0.0, 2.0);
        b.record(59.0, 3.0);
        let sums = b.bins(BinStatistic::Sum);
        assert_eq!(sums[0].value, Some(5.0));
        let counts = b.bins(BinStatistic::Count);
        assert_eq!(counts[0].value, Some(2.0));
    }

    #[test]
    fn bin_edges_are_contiguous() {
        let mut b = TimeBinner::new(10.0, 5.0).unwrap();
        b.record(12.0, 1.0);
        b.record(27.0, 1.0);
        let bins = b.bins(BinStatistic::Count);
        for w in bins.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12);
        }
        assert_eq!(bins[0].start, 10.0);
    }

    proptest! {
        #[test]
        fn every_sample_lands_in_exactly_one_bin(
            times in proptest::collection::vec(0.0f64..1000.0, 1..200),
        ) {
            let mut b = TimeBinner::new(0.0, 37.0).unwrap();
            for &t in &times {
                b.record(t, 1.0);
            }
            let total: usize = b.bins(BinStatistic::Count).iter().map(|bin| bin.count).sum();
            prop_assert_eq!(total, times.len());
        }

        #[test]
        fn sample_falls_within_its_bin_bounds(
            t in 0.0f64..1e4,
            width in 0.5f64..500.0,
        ) {
            let mut b = TimeBinner::new(0.0, width).unwrap();
            b.record(t, 1.0);
            let bins = b.bins(BinStatistic::Count);
            let bin = bins.iter().find(|bin| bin.count == 1).unwrap();
            prop_assert!(bin.start <= t && t < bin.end + 1e-9);
        }
    }
}
