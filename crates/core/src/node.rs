//! The per-host coordinate subsystem behind a sans-I/O engine: filter →
//! Vivaldi → application-level coordinate, driven entirely through
//! [`ProbeRequest`] / [`ProbeResponse`] wire messages and observed through a
//! typed [`Event`] stream.

use std::hash::Hash;

use nc_change::{ApplicationCoordinate, ApplicationUpdate, HeuristicStateMismatch, UpdateContext};

use crate::fxhash::FxHashMap;
use nc_filters::{FilterState, LatencyFilter, MovingPercentileFilter, StateMismatch};
use nc_proto::{
    Event, GossipEntry, LinkSnapshot, NodeSnapshot, PendingProbe, ProbeRequest, ProbeResponse,
    PROTOCOL_VERSION,
};
use nc_vivaldi::{Coordinate, OutlierGate, RemoteObservation, VivaldiState};

use crate::config::NodeConfig;

/// What one pass through the internal observation pipeline produced.
///
/// Engine-internal plumbing: [`StableNode::handle_response`] translates
/// this into the typed [`Event`]s that drivers consume. The low-level
/// `observe` entry point that used to return it publicly was retired in
/// favour of the wire API.
#[derive(Debug, Clone, PartialEq)]
struct ObservationOutcome {
    /// The filtered latency estimate handed to Vivaldi, or `None` when the
    /// filter suppressed the observation (warm-up, threshold discard, or an
    /// invalid sample) and nothing further happened.
    filtered_rtt_ms: Option<f64>,
    /// Relative error of the pre-update system coordinate against the
    /// *filtered* observation (the per-node accuracy metric of §II-A).
    relative_error: Option<f64>,
    /// Relative error of the *application-level* coordinate against the
    /// filtered observation (the accuracy an application embedding `c_a`
    /// experiences, §V-B).
    application_relative_error: Option<f64>,
    /// System-level coordinate displacement caused by this observation
    /// (milliseconds).
    system_displacement_ms: f64,
    /// The application-level update published because of this observation,
    /// if the heuristic decided the change was significant.
    application_update: Option<ApplicationUpdate>,
}

/// A remote node as last seen by this node (engine-internal storage; the
/// public projection is [`PeerView`]).
#[derive(Debug, Clone, PartialEq)]
struct NeighborSnapshot {
    /// The neighbour's coordinate when we last observed it.
    coordinate: Coordinate,
    /// The neighbour's error estimate when we last observed it.
    error_estimate: f64,
    /// The most recent filtered latency estimate for the link (ms).
    filtered_rtt_ms: Option<f64>,
    /// Number of raw observations of this link.
    observations: u64,
}

/// One peer as seen through a [`NodeView`]: the last-known coordinate
/// state of the link plus its per-peer health metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerView<Id> {
    /// The peer's identifier.
    pub id: Id,
    /// The peer's coordinate when it was last observed (first-hand or via
    /// gossip).
    pub coordinate: Coordinate,
    /// The peer's Vivaldi error estimate when it was last observed.
    pub error_estimate: f64,
    /// The most recent filtered latency estimate for the link (ms); `None`
    /// for peers known only through gossip or whose filter has not released
    /// an estimate yet.
    pub filtered_rtt_ms: Option<f64>,
    /// Number of raw first-hand observations of this link.
    pub observations: u64,
    /// Consecutive unanswered probes of this peer (zero when the last probe
    /// was answered).
    pub loss_streak: u32,
}

/// A read-only snapshot of one node's externally observable state, returned
/// by [`StableNode::view`].
///
/// This is the node's single introspection surface: the simulator's metrics
/// collection, the coordinate query index (`nc-query`) and the deployment
/// daemon's stats lines all extract through it, so they cannot drift apart.
/// All contained state is cloned at capture time — a view stays valid (and
/// unchanged) while the node keeps digesting observations.
///
/// Peers in [`neighbors`](NodeView::neighbors) appear in discovery order
/// (the order of [`membership`](NodeView::membership)), so two nodes with
/// identical histories produce byte-identical views.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView<Id> {
    /// The system-level coordinate `c_s` (moves with every observation).
    pub system: Coordinate,
    /// The application-level coordinate `c_a` (moves only on significant
    /// change).
    pub application: Coordinate,
    /// The node's Vivaldi error estimate `w_i` (lower is better).
    pub error_estimate: f64,
    /// The node's confidence `1 − w_i` (the quantity of Figure 6).
    pub confidence: f64,
    /// Number of raw observations fed to this node.
    pub observations: u64,
    /// Number of application-level updates published by the heuristic.
    pub application_updates: u64,
    /// Total system-level coordinate movement so far (ms).
    pub system_displacement_ms: f64,
    /// Total application-level coordinate movement so far (ms).
    pub application_displacement_ms: f64,
    /// Known peers in discovery order: the round-robin probe schedule.
    pub membership: Vec<Id>,
    /// Identifier and last filtered RTT of the (approximately) nearest
    /// neighbour, learned passively from the observation stream.
    pub nearest_neighbor: Option<(Id, f64)>,
    /// Every peer with coordinate information, in discovery order, with
    /// filtered link RTTs and per-peer metrics.
    pub neighbors: Vec<PeerView<Id>>,
}

/// Error restoring a [`StableNode`] from a [`NodeSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The snapshot was taken under a different protocol version.
    Version {
        /// The version found in the snapshot.
        found: u16,
    },
    /// The snapshot's coordinate space does not match the configuration.
    Dimensions {
        /// Dimensionality the configuration expects.
        expected: usize,
        /// Dimensionality found in the snapshot.
        found: usize,
    },
    /// The snapshot's heuristic state belongs to a different heuristic
    /// family than the configuration builds.
    Heuristic(HeuristicStateMismatch),
    /// A link's filter state belongs to a different filter family than the
    /// configuration builds.
    Filter(StateMismatch),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Version { found } => write!(
                f,
                "snapshot protocol version {found} does not match {PROTOCOL_VERSION}"
            ),
            RestoreError::Dimensions { expected, found } => write!(
                f,
                "snapshot coordinate space has {found} dimensions, configuration expects {expected}"
            ),
            RestoreError::Heuristic(e) => write!(f, "{e}"),
            RestoreError::Filter(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Everything the engine tracks about one peer, kept in a single map entry
/// so the per-response hot path (streak reset, membership check, gossip
/// seeding, filter update, neighbour refresh) touches one hash slot instead
/// of four separate tables. At thousands of peers per node the engine's
/// working set no longer fits in cache, and every extra table costs a
/// dependent DRAM miss per digested response — consolidating the layout is
/// what flattened the large-mesh per-event cost cliff.
#[derive(Default)]
struct PeerState {
    /// Last-known coordinate state, present once the peer has been observed
    /// first-hand or learned through gossip.
    neighbor: Option<NeighborSnapshot>,
    /// Per-link latency filter, created lazily on the first first-hand
    /// observation (gossip-only peers carry no filter).
    filter: Option<PeerFilter>,
    /// Consecutive unanswered probes; drives eviction when
    /// [`NodeConfig::max_consecutive_losses`] is set. Zero when the last
    /// probe was answered.
    loss_streak: u32,
    /// Whether the peer sits in the round-robin `membership` rotation.
    member: bool,
}

/// A per-link latency filter as stored in the peer table.
///
/// The moving-percentile family — the paper's recommended filter and the
/// one every experiment configuration uses — is stored *inline* in the peer
/// entry: no box, no vtable, and (for the paper's `h = 4`) no heap-backed
/// window either, so digesting a response reads the filter straight out of
/// the already-loaded peer entry instead of chasing two or three pointers
/// into cold memory. Every other filter family keeps the boxed trait
/// object. Behaviour is identical either way; this is purely a layout
/// optimisation for the simulator's observation hot path.
enum PeerFilter {
    /// Moving-percentile (and its median special case), devirtualized.
    MovingPercentile(MovingPercentileFilter),
    /// Any other configured filter family.
    Boxed(Box<dyn LatencyFilter + Send>),
}

impl PeerFilter {
    /// Builds the filter the configuration describes, choosing the inline
    /// representation when it applies (no warm-up wrapper needed and a
    /// moving-percentile family configured).
    fn build(config: &NodeConfig) -> PeerFilter {
        use crate::config::FilterConfig;
        if config.warmup_samples <= 1 {
            match config.filter {
                FilterConfig::MovingPercentile {
                    history,
                    percentile,
                } => {
                    return PeerFilter::MovingPercentile(
                        MovingPercentileFilter::new(history, percentile)
                            // nc-lint: allow(panic) — same constructor the
                            // boxed builder runs; invalid parameters fail at
                            // node construction, before any hot-path call.
                            .expect("invalid moving-percentile parameters"),
                    );
                }
                FilterConfig::MovingMedian { history } => {
                    // The median filter is definitionally MP at p = 50 (and
                    // `MovingMedianFilter` is implemented as exactly that
                    // wrapper), so the inline representation covers it too.
                    return PeerFilter::MovingPercentile(
                        // nc-lint: allow(panic) — see the percentile arm above.
                        MovingPercentileFilter::new(history, 50.0).expect("invalid median history"),
                    );
                }
                _ => {}
            }
        }
        PeerFilter::Boxed(config.filter.build(config.warmup_samples))
    }

    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64> {
        match self {
            PeerFilter::MovingPercentile(filter) => filter.observe(raw_rtt_ms),
            PeerFilter::Boxed(filter) => filter.observe(raw_rtt_ms),
        }
    }

    fn current_estimate(&self) -> Option<f64> {
        match self {
            PeerFilter::MovingPercentile(filter) => filter.current_estimate(),
            PeerFilter::Boxed(filter) => filter.current_estimate(),
        }
    }

    fn observations_seen(&self) -> u64 {
        match self {
            PeerFilter::MovingPercentile(filter) => filter.observations_seen(),
            PeerFilter::Boxed(filter) => filter.observations_seen(),
        }
    }

    fn export_state(&self) -> FilterState {
        match self {
            PeerFilter::MovingPercentile(filter) => filter.export_state(),
            PeerFilter::Boxed(filter) => filter.export_state(),
        }
    }

    fn import_state(&mut self, state: &FilterState) -> Result<(), StateMismatch> {
        match self {
            PeerFilter::MovingPercentile(filter) => filter.import_state(state),
            PeerFilter::Boxed(filter) => filter.import_state(state),
        }
    }
}

/// The paper's coordinate stack for one host, exposed as a sans-I/O engine.
///
/// `Id` identifies remote peers (an address, an index into a membership list,
/// a node name in a simulator — anything hashable).
///
/// The engine performs no I/O and reads no clocks. A driver (simulator, UDP
/// daemon, trace replayer) runs the protocol loop:
///
/// 1. [`next_probe`](StableNode::next_probe) — the engine schedules the next
///    peer to measure, round-robin over everything it has learned about.
/// 2. The driver delivers the [`ProbeRequest`] to the peer, whose engine
///    answers it with [`respond`](StableNode::respond).
/// 3. The driver measures the round trip, stamps it into the
///    [`ProbeResponse`], and feeds it to
///    [`handle_response`](StableNode::handle_response), which returns the
///    typed [`Event`]s describing what the stack did with the observation.
/// 4. Rarely, the events include [`Event::ApplicationUpdated`] — the one
///    event the embedding application must react to.
///
/// [`snapshot`](StableNode::snapshot) and [`restore`](StableNode::restore)
/// capture and revive the complete runtime state, so a node can be
/// persisted, migrated between processes, and resume the exact same
/// trajectory. See the [crate-level documentation](crate) for a runnable
/// example of the full loop.
pub struct StableNode<Id: Eq + Hash + Clone> {
    config: NodeConfig,
    vivaldi: VivaldiState,
    application: ApplicationCoordinate,
    follow_system: bool,
    /// Everything known about each peer — neighbour snapshot, latency
    /// filter, loss streak, rotation membership — in one table, so the
    /// observation hot path stays cache-friendly as the peer set grows.
    peers: FxHashMap<Id, PeerState>,
    nearest_neighbor: Option<(Id, f64)>,
    observations: u64,
    /// This node's own identity, when declared. Keeps the node from
    /// scheduling probes of itself when peers gossip its address around.
    identity: Option<Id>,
    /// Known peers in discovery order: the round-robin probe schedule.
    membership: Vec<Id>,
    probe_cursor: usize,
    probe_seq: u64,
    gossip_cursor: usize,
    /// Probes sent but not yet answered or expired, oldest first.
    pending: Vec<PendingProbe<Id>>,
    /// When set, responses that correlate with no pending probe are always
    /// rejected — even before the first probe is issued. Declared by
    /// drivers exposed to untrusted traffic (the UDP transport); simulated
    /// and hand-fed drivers inherit strictness from issuing probes.
    require_correlation: bool,
    /// MAD-based outlier gate over observation residuals, built when the
    /// configuration enables it. The gate's window is runtime state that is
    /// deliberately *not* snapshotted: a restored node re-warms the gate
    /// (accepting everything for `min_samples` observations), which is the
    /// safe direction — its coordinate may have drifted while it was down,
    /// so the old residual distribution no longer applies.
    gate: Option<OutlierGate>,
}

impl<Id: Eq + Hash + Clone + std::fmt::Debug> std::fmt::Debug for StableNode<Id> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StableNode")
            .field("system_coordinate", self.vivaldi.coordinate())
            .field("application_coordinate", self.application.coordinate())
            .field("error_estimate", &self.vivaldi.error_estimate())
            .field(
                "neighbors",
                &self
                    .peers
                    .values()
                    .filter(|peer| peer.neighbor.is_some())
                    .count(),
            )
            .field("observations", &self.observations)
            .finish()
    }
}

impl<Id: Eq + Hash + Clone> StableNode<Id> {
    /// Creates a node with the given configuration. The node starts at the
    /// origin with no confidence, exactly like a freshly booted Vivaldi
    /// participant.
    pub fn new(config: NodeConfig) -> Self {
        let gate = config.outlier_gate.clone().map(OutlierGate::new);
        let vivaldi = VivaldiState::new(config.vivaldi.clone());
        let initial = vivaldi.coordinate().clone();
        let (application, follow_system) = match config.heuristic.build() {
            Some(heuristic) => (ApplicationCoordinate::new(initial, heuristic), false),
            None => (
                // A heuristic is still needed as a placeholder; FollowSystem
                // bypasses it entirely in `observe`.
                ApplicationCoordinate::new(
                    initial,
                    Box::new(nc_change::ApplicationHeuristic::new(f64::MAX / 4.0)),
                ),
                true,
            ),
        };
        StableNode {
            config,
            vivaldi,
            application,
            follow_system,
            peers: FxHashMap::default(),
            nearest_neighbor: None,
            observations: 0,
            identity: None,
            membership: Vec::new(),
            probe_cursor: 0,
            probe_seq: 0,
            gossip_cursor: 0,
            pending: Vec::new(),
            require_correlation: false,
            gate,
        }
    }

    /// The node's configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The system-level coordinate `c_s` (moves with every observation).
    pub fn system_coordinate(&self) -> &Coordinate {
        self.vivaldi.coordinate()
    }

    /// The application-level coordinate `c_a` (moves only on significant
    /// change).
    pub fn application_coordinate(&self) -> &Coordinate {
        if self.follow_system {
            self.vivaldi.coordinate()
        } else {
            self.application.coordinate()
        }
    }

    /// The node's Vivaldi error estimate `w_i` (lower is better).
    pub fn error_estimate(&self) -> f64 {
        self.vivaldi.error_estimate()
    }

    /// Predicted round-trip latency from this node to a remote coordinate,
    /// using the system-level coordinate.
    pub fn estimate_rtt_ms(&self, remote: &Coordinate) -> f64 {
        self.vivaldi.estimated_rtt_ms(remote)
    }

    /// Predicted round-trip latency using the application-level coordinate —
    /// what an application embedding `c_a` would compute.
    pub fn application_estimate_rtt_ms(&self, remote: &Coordinate) -> f64 {
        self.application_coordinate().distance(remote)
    }

    /// Captures the node's complete externally observable state as one
    /// read-only [`NodeView`]: coordinates, error and confidence, lifetime
    /// counters, the membership schedule and the neighbour table with
    /// filtered link RTTs.
    ///
    /// Clones everything it reports, so it belongs on cold paths (metrics
    /// collection, stats lines, feeding a query index) — the per-response
    /// hot path never calls it.
    pub fn view(&self) -> NodeView<Id> {
        // Membership (discovery) order makes the view a pure function of
        // the node's history; peers live in an unordered map.
        let neighbors = self
            .membership
            .iter()
            .filter_map(|id| {
                let peer = self.peers.get(id)?;
                let snapshot = peer.neighbor.as_ref()?;
                Some(PeerView {
                    id: id.clone(),
                    coordinate: snapshot.coordinate.clone(),
                    error_estimate: snapshot.error_estimate,
                    filtered_rtt_ms: snapshot.filtered_rtt_ms,
                    observations: snapshot.observations,
                    loss_streak: peer.loss_streak,
                })
            })
            .collect();
        NodeView {
            system: self.vivaldi.coordinate().clone(),
            application: self.application_coordinate().clone(),
            error_estimate: self.vivaldi.error_estimate(),
            confidence: self.vivaldi.confidence(),
            observations: self.observations,
            application_updates: self.application.update_count(),
            system_displacement_ms: self.vivaldi.total_displacement_ms(),
            application_displacement_ms: if self.follow_system {
                self.vivaldi.total_displacement_ms()
            } else {
                self.application.total_displacement_ms()
            },
            membership: self.membership.clone(),
            nearest_neighbor: self.nearest_neighbor.clone(),
            neighbors,
        }
    }

    /// This node's declared identity, if any.
    pub fn identity(&self) -> Option<&Id> {
        self.identity.as_ref()
    }

    /// Declares this node's own identity so gossip of its own address
    /// (learned indirectly through peers) never enters the probe schedule,
    /// and so outgoing probes carry a `source` that responders can exclude
    /// from their gossip payloads. Any self-entries learned before the
    /// identity was known are dropped.
    pub fn set_identity(&mut self, id: Id) {
        // Purging the self-entry is exactly an eviction of that peer.
        self.evict(&id);
        self.identity = Some(id);
    }

    /// Declares that every response must correlate with an outstanding
    /// probe, even before this node has issued its first one. Without this,
    /// the uncorrelated-reply rejection only arms once a probe has been
    /// issued through the engine (so drivers that hand-feed responses keep
    /// working); a driver exposed to untrusted traffic — a listening UDP
    /// node that has not probed yet — must opt in explicitly or a forged
    /// response arriving before its first probe would be digested.
    ///
    /// Not part of the snapshot: the driver declares it again after
    /// [`restore`](StableNode::restore), exactly like
    /// [`set_identity`](StableNode::set_identity).
    pub fn require_correlated_responses(&mut self) {
        self.require_correlation = true;
    }

    /// Re-derives the nearest neighbour from the full table (minimum
    /// filtered RTT over every observed link).
    fn recompute_nearest_neighbor(&mut self) {
        self.nearest_neighbor = self
            .peers
            .iter()
            .filter_map(|(nid, peer)| {
                let snapshot = peer.neighbor.as_ref()?;
                snapshot.filtered_rtt_ms.map(|rtt| (nid.clone(), rtt))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1));
    }

    // -----------------------------------------------------------------
    // Sans-I/O engine: scheduling, wire messages, events
    // -----------------------------------------------------------------

    /// Adds a peer to the probe schedule without any coordinate information
    /// (bootstrap membership, e.g. from a membership file). Returns `true`
    /// when the peer was not known before.
    pub fn seed_neighbor(&mut self, id: Id) -> bool {
        self.register_member(id)
    }

    /// Schedules the next probe: round-robin over every known peer.
    /// `now_ms` is the driver's clock reading, echoed through the exchange
    /// so the driver can time it (the engine itself never reads a clock).
    ///
    /// Returns `None` while the node knows no peers (seed some with
    /// [`seed_neighbor`](StableNode::seed_neighbor) or feed it gossip).
    pub fn next_probe(&mut self, now_ms: u64) -> Option<ProbeRequest<Id>> {
        if self.membership.is_empty() {
            return None;
        }
        // The cursor is an in-range index into the schedule, not a
        // free-running counter: an eviction shifts it back in step (see
        // `evict`), so membership churn mid-cycle neither skips nor repeats
        // the surviving peers.
        if self.probe_cursor >= self.membership.len() {
            self.probe_cursor = 0;
        }
        let target = self.membership[self.probe_cursor].clone();
        self.probe_cursor += 1;
        Some(self.probe_request_for(target, now_ms))
    }

    /// Builds a probe of a specific peer, registering it in the probe
    /// schedule if it is new. Drivers that control their own schedule (the
    /// simulator, trace replay) use this instead of
    /// [`next_probe`](StableNode::next_probe).
    pub fn probe_request_for(&mut self, target: Id, now_ms: u64) -> ProbeRequest<Id> {
        self.register_member(target.clone());
        let seq = self.probe_seq;
        self.probe_seq = self.probe_seq.wrapping_add(1);
        self.pending.push(PendingProbe {
            target: target.clone(),
            seq,
            sent_at_ms: now_ms,
        });
        let request = ProbeRequest::new(target, seq, now_ms);
        match &self.identity {
            Some(me) => request.from_source(me.clone()),
            None => request,
        }
    }

    /// Probes sent but not yet answered or expired, oldest first. The driver
    /// is responsible for expiring entries — either per probe with
    /// [`handle_timeout`](StableNode::handle_timeout) (when it tracks its own
    /// timers, as the discrete-event simulator does) or in bulk with
    /// [`expire_pending`](StableNode::expire_pending).
    pub fn pending_probes(&self) -> &[PendingProbe<Id>] {
        &self.pending
    }

    /// Consecutive unanswered probes of `id` (zero when the last probe was
    /// answered or the peer has never been probed).
    pub fn loss_streak(&self, id: &Id) -> u32 {
        self.peers.get(id).map(|peer| peer.loss_streak).unwrap_or(0)
    }

    /// Declares the probe with sequence number `seq` lost: its reply never
    /// arrived within the driver's timeout. The pending entry is released
    /// and [`Event::ProbeLost`] emitted; the round-robin schedule is
    /// unaffected, so the next [`next_probe`](StableNode::next_probe) simply
    /// moves on — a lost probe never stalls the engine.
    ///
    /// When [`NodeConfig::max_consecutive_losses`] is configured and the
    /// target's streak reaches it, the peer is evicted from the neighbour
    /// table and the probe schedule and [`Event::NeighborEvicted`] follows.
    ///
    /// Returns an empty vector when no pending probe carries `seq` (its
    /// response already arrived, or it was already expired) — drivers may
    /// fire timers unconditionally and let the engine sort it out.
    pub fn handle_timeout(&mut self, seq: u64) -> Vec<Event<Id>> {
        let mut events = Vec::new();
        self.handle_timeout_into(seq, &mut events);
        events
    }

    /// Buffer-reusing form of [`handle_timeout`](StableNode::handle_timeout):
    /// appends the resulting events to `events` instead of allocating a
    /// fresh vector. Hot-loop drivers (the discrete-event simulator) clear
    /// and reuse one buffer across calls so the steady-state timeout path
    /// performs no heap allocation.
    pub fn handle_timeout_into(&mut self, seq: u64, events: &mut Vec<Event<Id>>) {
        let Some(position) = self.pending.iter().position(|probe| probe.seq == seq) else {
            return;
        };
        let probe = self.pending.remove(position);
        events.push(Event::ProbeLost {
            id: probe.target.clone(),
            seq,
        });
        let peer = self.peers.entry(probe.target.clone()).or_default();
        peer.loss_streak = peer.loss_streak.saturating_add(1);
        let streak = peer.loss_streak;
        if let Some(max) = self.config.max_consecutive_losses {
            if streak >= max {
                self.evict(&probe.target);
                events.push(Event::NeighborEvicted { id: probe.target });
            }
        }
    }

    /// Expires every pending probe sent at or before `now_ms - timeout_ms`,
    /// oldest first, emitting the same events as
    /// [`handle_timeout`](StableNode::handle_timeout) for each. Drivers
    /// without per-probe timers call this once per tick.
    pub fn expire_pending(&mut self, now_ms: u64, timeout_ms: u64) -> Vec<Event<Id>> {
        let mut events = Vec::new();
        self.expire_pending_into(now_ms, timeout_ms, &mut events);
        events
    }

    /// Buffer-reusing form of [`expire_pending`](StableNode::expire_pending):
    /// appends the resulting events to `events` instead of allocating fresh
    /// vectors. Tick-driven drivers (the UDP transport's timer wheel) call
    /// this every few milliseconds, so the common no-probe-due case must not
    /// touch the heap.
    pub fn expire_pending_into(
        &mut self,
        now_ms: u64,
        timeout_ms: u64,
        events: &mut Vec<Event<Id>>,
    ) {
        // One probe is expired per scan: `handle_timeout_into` may evict a
        // peer and with it *several* pending entries, so positions cannot be
        // carried across iterations. Expiry is rare (the steady state scans
        // once and finds nothing), so the rescan costs nothing in practice.
        loop {
            let Some(seq) = self
                .pending
                .iter()
                .find(|probe| probe.sent_at_ms.saturating_add(timeout_ms) <= now_ms)
                .map(|probe| probe.seq)
            else {
                return;
            };
            self.handle_timeout_into(seq, events);
        }
    }

    /// Removes a peer from every table: membership, neighbours, filters,
    /// pending probes and loss streaks.
    fn evict(&mut self, id: &Id) {
        self.peers.remove(id);
        if let Some(position) = self.membership.iter().position(|member| member == id) {
            self.membership.remove(position);
            // Keep the round-robin cursor pointing at the same *next* peer:
            // removing an entry the cursor has already passed would
            // otherwise make the rotation skip the peer now occupying the
            // vacated slot.
            if position < self.probe_cursor {
                self.probe_cursor -= 1;
            }
        }
        self.pending.retain(|probe| probe.target != *id);
        if self
            .nearest_neighbor
            .as_ref()
            .is_some_and(|(nearest, _)| nearest == id)
        {
            self.recompute_nearest_neighbor();
        }
    }

    /// Answers a probe addressed to this node: echoes the request's
    /// correlation fields and attaches the node's current system-level
    /// coordinate, its error estimate and one gossiped peer (round-robin
    /// over the membership, as in the paper's deployment protocol).
    ///
    /// The returned response carries `rtt_ms = 0.0`; the *prober's*
    /// transport stamps the measured round trip in before handing the
    /// response to [`handle_response`](StableNode::handle_response).
    pub fn respond(&mut self, request: &ProbeRequest<Id>) -> ProbeResponse<Id> {
        let mut response = ProbeResponse::new(
            request.target.clone(),
            request,
            self.vivaldi.coordinate().clone(),
            self.vivaldi.error_estimate(),
        );
        self.respond_into(request, &mut response);
        response
    }

    /// Buffer-reusing form of [`respond`](StableNode::respond): overwrites
    /// every field of `response` (including clearing and refilling the
    /// gossip payload) instead of building a fresh message. Hot-loop drivers
    /// keep one response per slot and reuse it across exchanges, so the
    /// steady-state respond path performs no heap allocation.
    pub fn respond_into(&mut self, request: &ProbeRequest<Id>, response: &mut ProbeResponse<Id>) {
        // A probe that names its sender teaches the responder a live peer —
        // the paper's deployments bootstrap membership exactly this way.
        if let Some(source) = &request.source {
            self.register_member(source.clone());
        }
        response.version = PROTOCOL_VERSION;
        response.responder = request.target.clone();
        response.seq = request.seq;
        response.sent_at_ms = request.sent_at_ms;
        response.coordinate = self.vivaldi.coordinate().clone();
        response.error_estimate = self.vivaldi.error_estimate();
        response.gossip.clear();
        response.rtt_ms = 0.0;
        let len = self.membership.len();
        for _ in 0..len {
            let idx = self.gossip_cursor % len;
            self.gossip_cursor = self.gossip_cursor.wrapping_add(1);
            let candidate = self.membership[idx].clone();
            // Never gossip the prober's own address back to it.
            if request.source.as_ref() == Some(&candidate) {
                continue;
            }
            if let Some(snapshot) = self
                .peers
                .get(&candidate)
                .and_then(|peer| peer.neighbor.as_ref())
            {
                response.gossip.push(GossipEntry {
                    id: candidate,
                    coordinate: snapshot.coordinate.clone(),
                    error_estimate: snapshot.error_estimate,
                });
                break;
            }
        }
    }

    /// Digests one probe response: registers the responder and any gossiped
    /// peers, runs the observation through the filter → Vivaldi →
    /// application-update pipeline, and returns the typed events describing
    /// what happened. The response's `rtt_ms` must already carry the
    /// driver-measured round trip.
    ///
    /// A response claiming to come from this node itself (its declared
    /// identity) is dropped without effect — a node must never become its
    /// own neighbour, however a misrouted or hostile message is addressed.
    /// Gossip entries whose coordinates live in a different-dimensional
    /// space are skipped rather than stored (they could not be compared
    /// against, or gossiped onward, without corrupting peers).
    pub fn handle_response(&mut self, response: &ProbeResponse<Id>) -> Vec<Event<Id>> {
        let mut events = Vec::new();
        self.handle_response_into(response, &mut events);
        events
    }

    /// Buffer-reusing form of
    /// [`handle_response`](StableNode::handle_response): appends the
    /// resulting events to `events` instead of allocating a fresh vector
    /// per response. Hot-loop drivers clear and reuse one buffer across
    /// calls so the steady-state observation path performs no heap
    /// allocation.
    pub fn handle_response_into(
        &mut self,
        response: &ProbeResponse<Id>,
        events: &mut Vec<Event<Id>>,
    ) {
        if self.identity.as_ref() == Some(&response.responder) {
            return;
        }
        // The reply settles the matching outstanding probe and proves the
        // peer alive. A reply that matches *no* outstanding probe — one that
        // arrives after its probe already timed out, a duplicated datagram,
        // or an unsolicited/spoofed response — must not be digested: its
        // observation was either already accounted as a loss or never
        // requested, its RTT stamp is stale, and applying it would
        // double-count the exchange and wrongly clear the loss streak. Such
        // replies are reported as [`Event::ResponseIgnored`] and dropped
        // whole (gossip included: an uncorrelated sender is not a trusted
        // membership source). The check only arms once the node has issued a
        // probe through the engine (`probe_request_for` / `next_probe`);
        // drivers that feed hand-built responses without the pending-probe
        // machinery keep the lenient legacy behaviour.
        match self
            .pending
            .iter()
            .position(|probe| probe.seq == response.seq && probe.target == response.responder)
        {
            Some(position) => {
                self.pending.remove(position);
            }
            None if self.require_correlation || self.probe_seq > 0 => {
                events.push(Event::ResponseIgnored {
                    id: response.responder.clone(),
                    seq: response.seq,
                });
                return;
            }
            None => {}
        }
        if let Some(peer) = self.peers.get_mut(&response.responder) {
            peer.loss_streak = 0;
        }
        if self.register_member(response.responder.clone()) {
            events.push(Event::NeighborDiscovered {
                id: response.responder.clone(),
            });
        }
        if self.gate.is_some() {
            // The outlier gate changes the shape of the digest — a rejected
            // observation must drop its piggybacked gossip too — so the
            // gated flow lives in its own function. With the gate off
            // (`outlier_gate: None`, the default) the path below is the
            // engine's unmodified behaviour.
            self.handle_gated_observation(response, events);
            return;
        }
        self.ingest_gossip(response, events);

        let id = response.responder.clone();
        let outcome = self.digest_observation(
            id.clone(),
            response.coordinate.clone(),
            response.error_estimate,
            response.rtt_ms,
        );
        match outcome.filtered_rtt_ms {
            None => events.push(Event::ObservationFiltered {
                id,
                raw_rtt_ms: response.rtt_ms,
            }),
            Some(filtered_rtt_ms) => match outcome.relative_error {
                None => events.push(Event::ObservationRejected {
                    id,
                    filtered_rtt_ms,
                }),
                Some(relative_error) => {
                    events.push(Event::SystemMoved {
                        id,
                        filtered_rtt_ms,
                        displacement_ms: outcome.system_displacement_ms,
                        relative_error,
                        application_relative_error: outcome
                            .application_relative_error
                            .unwrap_or(f64::NAN),
                    });
                    if let Some(update) = outcome.application_update {
                        events.push(Event::ApplicationUpdated { update });
                    }
                }
            },
        }
    }

    /// Registers the peers a response gossips along: new ones enter the
    /// probe rotation (with an [`Event::NeighborDiscovered`] each) and seed
    /// the neighbour table, but gossip never overwrites first-hand state.
    fn ingest_gossip(&mut self, response: &ProbeResponse<Id>, events: &mut Vec<Event<Id>>) {
        let dimensions = self.config.vivaldi.dimensions();
        for entry in &response.gossip {
            // Our own address coming back around through gossip is not a
            // neighbour, and a coordinate from a different-dimensional
            // deployment is not usable information.
            if self.identity.as_ref() == Some(&entry.id)
                || entry.coordinate.dimensions() != dimensions
            {
                continue;
            }
            if self.register_member(entry.id.clone()) {
                events.push(Event::NeighborDiscovered {
                    id: entry.id.clone(),
                });
            }
            // Gossip seeds the neighbour table so the peer can itself be
            // gossiped onward, but never overwrites first-hand state.
            let peer = self.peers.entry(entry.id.clone()).or_default();
            if peer.neighbor.is_none() {
                peer.neighbor = Some(NeighborSnapshot {
                    coordinate: entry.coordinate.clone(),
                    error_estimate: entry.error_estimate,
                    filtered_rtt_ms: None,
                    observations: 0,
                });
            }
        }
    }

    /// The observation digest with the MAD outlier gate armed.
    ///
    /// Same pipeline as the ungated path — filter, then Vivaldi, then the
    /// application heuristic — with the gate's plausibility check wedged
    /// between the first two stages: the filtered RTT is compared against
    /// the distance this node's own coordinate predicts to the peer's
    /// *claimed* coordinate, and an observation whose residual falls far
    /// outside the recent (robust) residual distribution is rejected before
    /// it can move the spring. A rejected reply is dropped whole, exactly
    /// like an uncorrelated one: its gossip is a Byzantine peer's choice of
    /// membership poison, so it must not outlive the observation it rode on.
    fn handle_gated_observation(
        &mut self,
        response: &ProbeResponse<Id>,
        events: &mut Vec<Event<Id>>,
    ) {
        let id = response.responder.clone();
        let filtered = if response.coordinate.dimensions() == self.config.vivaldi.dimensions() {
            self.filter_stage(
                &id,
                &response.coordinate,
                response.error_estimate,
                response.rtt_ms,
            )
        } else {
            None
        };
        let Some(filtered_rtt_ms) = filtered else {
            // The filter withheld its estimate (warm-up, threshold cut):
            // nothing reached the update path, so nothing is gated. The
            // gossip is kept — dropping it on every warm-up sample would
            // stall discovery before the gate has anything to judge.
            self.ingest_gossip(response, events);
            events.push(Event::ObservationFiltered {
                id,
                raw_rtt_ms: response.rtt_ms,
            });
            return;
        };
        // Residual against the *pre-update* coordinate, mirroring how the
        // relative-error metric is measured.
        let predicted_ms = self.vivaldi.coordinate().distance(&response.coordinate);
        let residual_ms = filtered_rtt_ms - predicted_ms;
        // nc-lint: allow(panic) — handle_response_into dispatches here only
        // when the gate is configured; the Option is re-read purely to
        // scope the mutable borrow.
        let gate = self.gate.as_mut().expect("gated path requires the gate");
        if !gate.admits(residual_ms) {
            events.push(Event::ObservationRejected {
                id,
                filtered_rtt_ms,
            });
            return;
        }
        gate.record(residual_ms);
        // A liar advertising near-zero error would take close to the
        // maximum sample weight w_s = e_i / (e_i + e_j); flooring the
        // claimed confidence bounds how hard any single peer can pull.
        let remote_error = response.error_estimate.max(gate.config().min_remote_error);
        self.ingest_gossip(response, events);
        let outcome =
            self.vivaldi_stage(response.coordinate.clone(), remote_error, filtered_rtt_ms);
        match outcome.relative_error {
            None => events.push(Event::ObservationRejected {
                id,
                filtered_rtt_ms,
            }),
            Some(relative_error) => {
                events.push(Event::SystemMoved {
                    id,
                    filtered_rtt_ms,
                    displacement_ms: outcome.system_displacement_ms,
                    relative_error,
                    application_relative_error: outcome
                        .application_relative_error
                        .unwrap_or(f64::NAN),
                });
                if let Some(update) = outcome.application_update {
                    events.push(Event::ApplicationUpdated { update });
                }
            }
        }
    }

    /// Batch path: digests many responses in order and returns the
    /// concatenated event stream. Useful for draining a backlog of
    /// responses that were delivered together (a socket's receive queue, a
    /// trace segment). Note that each response is still subject to the
    /// correlation rules: a response whose probe already timed out or was
    /// settled produces only [`Event::ResponseIgnored`], so replaying
    /// *already-digested* responses is not a way to rebuild state.
    pub fn handle_many<'a, I>(&mut self, responses: I) -> Vec<Event<Id>>
    where
        Id: 'a,
        I: IntoIterator<Item = &'a ProbeResponse<Id>>,
    {
        let mut events = Vec::new();
        for response in responses {
            self.handle_response_into(response, &mut events);
        }
        events
    }

    // -----------------------------------------------------------------
    // Snapshot / restore
    // -----------------------------------------------------------------

    /// Captures the node's complete runtime state: Vivaldi state, per-link
    /// filter states, the application-level coordinate manager, the
    /// neighbour table and the probe-scheduling cursors. The configuration
    /// is *not* embedded — supply it again to
    /// [`restore`](StableNode::restore).
    pub fn snapshot(&self) -> NodeSnapshot<Id> {
        let links = self
            .membership
            .iter()
            .filter_map(|id| {
                let peer = self.peers.get(id)?;
                let neighbor = peer.neighbor.as_ref()?;
                Some(LinkSnapshot {
                    id: id.clone(),
                    filter: peer.filter.as_ref().map(|f| f.export_state()),
                    coordinate: neighbor.coordinate.clone(),
                    error_estimate: neighbor.error_estimate,
                    filtered_rtt_ms: neighbor.filtered_rtt_ms,
                    observations: neighbor.observations,
                })
            })
            .collect();
        // Streaks in membership order so identical nodes serialize
        // identically (the runtime table is an unordered map). Only live
        // streaks are captured — a zero entry means the slate was wiped by
        // an answered probe and carries no information.
        let loss_streaks = self
            .membership
            .iter()
            .filter_map(|id| {
                self.peers
                    .get(id)
                    .filter(|peer| peer.loss_streak > 0)
                    .map(|peer| (id.clone(), peer.loss_streak))
            })
            .collect();
        NodeSnapshot {
            version: PROTOCOL_VERSION,
            vivaldi: self.vivaldi.clone(),
            application: self.application.export_state(),
            links,
            nearest_neighbor: self.nearest_neighbor.clone(),
            observations: self.observations,
            identity: self.identity.clone(),
            membership: self.membership.clone(),
            probe_cursor: self.probe_cursor,
            probe_seq: self.probe_seq,
            gossip_cursor: self.gossip_cursor,
            pending: self.pending.clone(),
            loss_streaks,
        }
    }

    /// Rebuilds a node from a snapshot and its (externally supplied)
    /// configuration. The restored node continues the exact trajectory of
    /// the snapshotted one: identical coordinates, filter windows,
    /// heuristic windows and probe schedule.
    ///
    /// # Errors
    ///
    /// Fails when the snapshot was taken under a different protocol
    /// version, when the coordinate spaces disagree, or when the
    /// configuration builds a different filter or heuristic family than the
    /// snapshot's states belong to.
    pub fn restore(config: NodeConfig, snapshot: &NodeSnapshot<Id>) -> Result<Self, RestoreError> {
        if snapshot.version != PROTOCOL_VERSION {
            return Err(RestoreError::Version {
                found: snapshot.version,
            });
        }
        let expected = config.vivaldi.dimensions();
        // Every coordinate in the snapshot must live in the configured
        // space: the Vivaldi coordinate, the published application
        // coordinate, every link's last-seen coordinate, and the heuristic's
        // windowed coordinates. A single mismatched one would restore fine
        // and then panic the first time a distance against it is computed.
        let snapshot_coordinates = std::iter::once(snapshot.vivaldi.coordinate())
            .chain(std::iter::once(&snapshot.application.coordinate))
            .chain(snapshot.links.iter().map(|link| &link.coordinate))
            .chain(heuristic_state_coordinates(&snapshot.application.heuristic));
        for coordinate in snapshot_coordinates {
            let found = coordinate.dimensions();
            if expected != found {
                return Err(RestoreError::Dimensions { expected, found });
            }
        }
        let mut node = Self::new(config);
        // Runtime state comes from the snapshot, tuning constants from the
        // *supplied* configuration: a snapshot embeds the VivaldiConfig it
        // ran under, but configuration is deployment input and must win, or
        // operators changing e.g. the confidence-building margin would see
        // restored nodes silently keep the old constants.
        node.vivaldi = snapshot.vivaldi.clone();
        node.vivaldi.replace_config(node.config.vivaldi.clone());
        node.application
            .import_state(&snapshot.application)
            .map_err(RestoreError::Heuristic)?;
        for link in &snapshot.links {
            let peer = node.peers.entry(link.id.clone()).or_default();
            if let Some(filter_state) = &link.filter {
                let mut filter = PeerFilter::build(&node.config);
                filter
                    .import_state(filter_state)
                    .map_err(RestoreError::Filter)?;
                peer.filter = Some(filter);
            }
            peer.neighbor = Some(NeighborSnapshot {
                coordinate: link.coordinate.clone(),
                error_estimate: link.error_estimate,
                filtered_rtt_ms: link.filtered_rtt_ms,
                observations: link.observations,
            });
        }
        node.nearest_neighbor = snapshot.nearest_neighbor.clone();
        node.observations = snapshot.observations;
        node.identity = snapshot.identity.clone();
        node.membership = snapshot.membership.clone();
        for id in &node.membership {
            node.peers.entry(id.clone()).or_default().member = true;
        }
        // Snapshots written before the rotation became churn-stable carry a
        // free-running counter; reducing it modulo the schedule length lands
        // on the same next peer either way.
        node.probe_cursor = match node.membership.len() {
            0 => 0,
            len => snapshot.probe_cursor % len,
        };
        node.probe_seq = snapshot.probe_seq;
        node.gossip_cursor = snapshot.gossip_cursor;
        node.pending = snapshot.pending.clone();
        for (id, streak) in &snapshot.loss_streaks {
            node.peers.entry(id.clone()).or_default().loss_streak = *streak;
        }
        Ok(node)
    }

    // -----------------------------------------------------------------
    // Observation pipeline (engine-internal)
    // -----------------------------------------------------------------

    /// Digests one raw latency observation of peer `id` through the
    /// filter → Vivaldi → application-heuristic pipeline.
    ///
    /// `remote_coordinate` and `remote_error_estimate` are the values the
    /// peer attached to its probe reply (its system-level coordinate and
    /// Vivaldi error estimate); `raw_rtt_ms` is the measured round-trip time.
    ///
    /// This was once the public `observe` entry point; it is now internal
    /// plumbing underneath [`handle_response`](StableNode::handle_response).
    /// Drivers speak the wire API (`next_probe` / `respond` /
    /// `handle_response`), which also maintains correlation, gossip and
    /// neighbour discovery and reports through typed [`Event`]s.
    ///
    /// An observation of the node's own declared identity, or one whose
    /// coordinate lives in a different-dimensional space than this node's
    /// configuration, is discarded without touching any state (the outcome
    /// reports `filtered_rtt_ms: None`): both would otherwise corrupt the
    /// neighbour table — the first makes the node its own neighbour, the
    /// second panics every later distance computation against it.
    fn digest_observation(
        &mut self,
        id: Id,
        remote_coordinate: Coordinate,
        remote_error_estimate: f64,
        raw_rtt_ms: f64,
    ) -> ObservationOutcome {
        if self.identity.as_ref() == Some(&id)
            || remote_coordinate.dimensions() != self.config.vivaldi.dimensions()
        {
            return ObservationOutcome {
                filtered_rtt_ms: None,
                relative_error: None,
                application_relative_error: None,
                system_displacement_ms: 0.0,
                application_update: None,
            };
        }
        let Some(filtered_rtt) =
            self.filter_stage(&id, &remote_coordinate, remote_error_estimate, raw_rtt_ms)
        else {
            return ObservationOutcome {
                filtered_rtt_ms: None,
                relative_error: None,
                application_relative_error: None,
                system_displacement_ms: 0.0,
                application_update: None,
            };
        };
        self.vivaldi_stage(remote_coordinate, remote_error_estimate, filtered_rtt)
    }

    /// First half of the observation pipeline: accounting, membership, the
    /// per-link latency filter and the neighbour snapshot. Returns the
    /// filtered RTT when the filter released an estimate. The caller has
    /// already ruled out self-observations and dimension mismatches.
    fn filter_stage(
        &mut self,
        id: &Id,
        remote_coordinate: &Coordinate,
        remote_error_estimate: f64,
        raw_rtt_ms: f64,
    ) -> Option<f64> {
        self.observations += 1;
        self.register_member(id.clone());

        // One hash lookup covers the whole per-peer update: filter, neighbour
        // snapshot and (implicitly, on the response path) the loss streak all
        // live in the same `PeerState`.
        let peer = self
            .peers
            .get_mut(id)
            // nc-lint: allow(panic) — register_member two lines up inserted
            // the entry; a miss here is unreachable.
            .expect("register_member keeps every observed peer in the table");
        let filter = peer
            .filter
            .get_or_insert_with(|| PeerFilter::build(&self.config));
        let filtered = filter.observe(raw_rtt_ms);
        let link_observations = filter.observations_seen();
        let filtered_estimate = filter.current_estimate();

        // Track the neighbour snapshot regardless of whether the filter let
        // the sample through: the coordinate and error estimate are still
        // fresh information.
        peer.neighbor = Some(NeighborSnapshot {
            coordinate: remote_coordinate.clone(),
            error_estimate: remote_error_estimate,
            filtered_rtt_ms: filtered_estimate,
            observations: link_observations,
        });

        let filtered_rtt = filtered?;

        // Maintain the approximate nearest neighbour (used by RELATIVE).
        match &self.nearest_neighbor {
            None => self.nearest_neighbor = Some((id.clone(), filtered_rtt)),
            Some((current_id, current_rtt)) => {
                if filtered_rtt < *current_rtt {
                    self.nearest_neighbor = Some((id.clone(), filtered_rtt));
                } else if current_id == id {
                    // The incumbent's filtered RTT rose: it may no longer be
                    // the nearest, so re-evaluate against the whole table
                    // (the updated entry for `id` is already in place).
                    self.recompute_nearest_neighbor();
                }
            }
        }
        Some(filtered_rtt)
    }

    /// Second half of the observation pipeline: the Vivaldi spring update
    /// and the application-level heuristic, fed a filtered RTT that already
    /// cleared the filter (and, on the gated path, the outlier gate).
    fn vivaldi_stage(
        &mut self,
        remote_coordinate: Coordinate,
        remote_error_estimate: f64,
        filtered_rtt: f64,
    ) -> ObservationOutcome {
        // Application-level accuracy is measured against the observation
        // *before* any update, like the system-level error.
        let app_error = nc_vivaldi::relative_error(
            self.application_coordinate().distance(&remote_coordinate),
            filtered_rtt,
        );

        let observation =
            RemoteObservation::new(remote_coordinate, remote_error_estimate, filtered_rtt);
        let previous_system = self.vivaldi.coordinate().clone();
        let outcome = self.vivaldi.observe(&observation);
        if outcome.rejected {
            return ObservationOutcome {
                filtered_rtt_ms: Some(filtered_rtt),
                relative_error: None,
                application_relative_error: None,
                system_displacement_ms: 0.0,
                application_update: None,
            };
        }

        let application_update = if self.follow_system {
            // The application coordinate *is* the system coordinate, so every
            // system-level movement is also an application-level change (this
            // is the "constant update" mode of §V; its instability is what
            // the heuristics are measured against).
            if outcome.displacement_ms > 0.0 {
                Some(ApplicationUpdate {
                    previous: previous_system,
                    current: self.vivaldi.coordinate().clone(),
                    displacement_ms: outcome.displacement_ms,
                })
            } else {
                None
            }
        } else {
            let ctx = UpdateContext {
                nearest_neighbor: self
                    .nearest_neighbor
                    .as_ref()
                    .and_then(|(nid, _)| self.peers.get(nid))
                    .and_then(|peer| peer.neighbor.as_ref())
                    .map(|snapshot| snapshot.coordinate.clone()),
            };
            self.application
                .on_system_update(self.vivaldi.coordinate(), &ctx)
        };

        ObservationOutcome {
            filtered_rtt_ms: Some(filtered_rtt),
            relative_error: Some(outcome.relative_error),
            application_relative_error: Some(app_error),
            system_displacement_ms: outcome.displacement_ms,
            application_update,
        }
    }

    /// Registers a peer in the probe schedule; returns `true` when new.
    /// The node's own identity is never registered — a node must not probe
    /// itself, however its address comes back around through gossip.
    fn register_member(&mut self, id: Id) -> bool {
        if self.identity.as_ref() == Some(&id) {
            return false;
        }
        let peer = self.peers.entry(id.clone()).or_default();
        if peer.member || peer.neighbor.is_some() {
            return false;
        }
        peer.member = true;
        self.membership.push(id);
        true
    }
}

/// Every coordinate embedded in a heuristic's exported runtime state (the
/// windowed heuristics carry whole windows of system coordinates).
fn heuristic_state_coordinates(
    state: &nc_change::HeuristicState,
) -> Box<dyn Iterator<Item = &Coordinate> + '_> {
    use nc_change::HeuristicState;
    match state {
        HeuristicState::Stateless => Box::new(std::iter::empty()),
        HeuristicState::System { previous_system } => Box::new(previous_system.iter()),
        HeuristicState::Windowed(detector) => {
            Box::new(detector.start.iter().chain(detector.current.iter()))
        }
        HeuristicState::Centroid { window } => Box::new(window.iter()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterConfig, HeuristicConfig};
    use nc_proto::WireMessage;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type Node = StableNode<u32>;

    fn converge_pair(config: NodeConfig, rtt: f64, rounds: usize) -> (Node, Node) {
        let mut a = Node::new(config.clone());
        let mut b = Node::new(config);
        for round in 0..rounds {
            exchange(&mut a, &mut b, 1, rtt, round as u64);
            exchange(&mut b, &mut a, 0, rtt, round as u64);
        }
        (a, b)
    }

    /// Feeds one synthetic observation of peer `id` through the wire API: a
    /// real probe is issued (so correlation is satisfied), a response
    /// carrying `coordinate`/`error` is built as the peer would, the
    /// driver-measured `rtt_ms` is stamped in and the events returned.
    fn feed(
        node: &mut Node,
        id: u32,
        coordinate: Coordinate,
        error: f64,
        rtt_ms: f64,
    ) -> Vec<Event<u32>> {
        let request = node.probe_request_for(id, 0);
        let mut response = ProbeResponse::new(id, &request, coordinate, error);
        response.rtt_ms = rtt_ms;
        node.handle_response(&response)
    }

    /// The `SystemMoved` displacement reported by `events`, or `None` when
    /// the observation never reached the update path.
    fn moved_displacement(events: &[Event<u32>]) -> Option<f64> {
        events.iter().find_map(|event| match event {
            Event::SystemMoved {
                displacement_ms, ..
            } => Some(*displacement_ms),
            _ => None,
        })
    }

    /// Runs one full wire exchange: `prober` probes `target` (addressed as
    /// `target_id`), the driver measures `rtt_ms`, and the prober digests
    /// the stamped response.
    fn exchange(
        prober: &mut Node,
        target: &mut Node,
        target_id: u32,
        rtt_ms: f64,
        now_ms: u64,
    ) -> Vec<Event<u32>> {
        let request = prober.probe_request_for(target_id, now_ms);
        let mut response = target.respond(&request);
        response.rtt_ms = rtt_ms;
        prober.handle_response(&response)
    }

    #[test]
    fn new_node_starts_at_origin() {
        let node = Node::new(NodeConfig::paper_defaults());
        assert_eq!(node.system_coordinate(), &Coordinate::origin(3));
        assert_eq!(node.application_coordinate(), &Coordinate::origin(3));
        let view = node.view();
        assert_eq!(view.observations, 0);
        assert_eq!(view.confidence, 0.0);
        assert!(view.membership.is_empty());
        assert!(view.neighbors.is_empty());
    }

    #[test]
    fn pair_converges_to_link_latency() {
        let (a, b) = converge_pair(NodeConfig::paper_defaults(), 100.0, 400);
        let estimate = a.estimate_rtt_ms(b.system_coordinate());
        assert!((estimate - 100.0).abs() < 15.0, "estimate {estimate}");
    }

    #[test]
    fn pair_converges_through_the_wire_api() {
        let mut a = Node::new(NodeConfig::paper_defaults());
        let mut b = Node::new(NodeConfig::paper_defaults());
        for round in 0..400 {
            exchange(&mut a, &mut b, 1, 100.0, round);
            exchange(&mut b, &mut a, 0, 100.0, round);
        }
        let estimate = a.estimate_rtt_ms(b.system_coordinate());
        assert!((estimate - 100.0).abs() < 15.0, "estimate {estimate}");
    }

    #[test]
    fn outliers_do_not_move_filtered_node_much() {
        // Two stacks fed the same stream with rare enormous outliers: the
        // MP-filtered node accumulates far less displacement than the raw one.
        let mut rng = StdRng::seed_from_u64(42);
        let stream: Vec<f64> = (0..600)
            .map(|_| {
                if rng.gen_bool(0.02) {
                    5_000.0 + rng.gen_range(0.0..20_000.0)
                } else {
                    80.0 + rng.gen_range(-5.0..5.0)
                }
            })
            .collect();

        let run = |config: NodeConfig| -> f64 {
            let mut node = Node::new(config);
            let remote = Coordinate::new(vec![30.0, 40.0, 0.0]).unwrap();
            for &rtt in stream.iter() {
                feed(&mut node, 7, remote.clone(), 0.3, rtt);
            }
            node.view().system_displacement_ms
        };

        let raw = run(NodeConfig::original_vivaldi());
        let filtered = run(NodeConfig::builder()
            .heuristic(HeuristicConfig::FollowSystem)
            .build());
        assert!(
            filtered < raw / 3.0,
            "filtered displacement {filtered:.0} should be well below raw {raw:.0}"
        );
    }

    #[test]
    fn application_updates_are_rarer_than_observations() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = NodeConfig::paper_defaults();
        let mut node = Node::new(config);
        let remote = Coordinate::new(vec![50.0, 10.0, 5.0]).unwrap();
        let mut app_updates = 0;
        for _ in 0..1000 {
            let rtt = 70.0 + rng.gen_range(-8.0..8.0);
            let events = feed(&mut node, 3, remote.clone(), 0.3, rtt);
            app_updates += events
                .iter()
                .filter(|e| matches!(e, Event::ApplicationUpdated { .. }))
                .count();
        }
        assert!(
            app_updates < 100,
            "got {app_updates} application updates for 1000 observations"
        );
        let view = node.view();
        assert!(view.application_displacement_ms <= view.system_displacement_ms);
    }

    #[test]
    fn follow_system_keeps_app_equal_to_system() {
        let config = NodeConfig::builder()
            .heuristic(HeuristicConfig::FollowSystem)
            .build();
        let mut node = Node::new(config);
        let remote = Coordinate::new(vec![20.0, 0.0, 0.0]).unwrap();
        for _ in 0..50 {
            feed(&mut node, 1, remote.clone(), 0.5, 40.0);
            assert_eq!(node.application_coordinate(), node.system_coordinate());
        }
        let view = node.view();
        assert_eq!(
            view.application_displacement_ms,
            view.system_displacement_ms
        );
    }

    #[test]
    fn warmup_suppresses_first_sample() {
        let config = NodeConfig::builder().warmup_samples(2).build();
        let mut node = Node::new(config);
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let first = feed(&mut node, 1, remote.clone(), 0.5, 30_000.0);
        assert!(
            first
                .iter()
                .any(|e| matches!(e, Event::ObservationFiltered { id: 1, .. })),
            "the warm-up filter withholds the first sample: {first:?}"
        );
        assert_eq!(node.system_coordinate(), &Coordinate::origin(3));
        let second = feed(&mut node, 1, remote, 0.5, 80.0);
        assert!(
            !second
                .iter()
                .any(|e| matches!(e, Event::ObservationFiltered { .. })),
            "the second sample passes the filter: {second:?}"
        );
    }

    #[test]
    fn neighbors_and_nearest_are_tracked() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let far = Coordinate::new(vec![100.0, 0.0, 0.0]).unwrap();
        let near = Coordinate::new(vec![5.0, 0.0, 0.0]).unwrap();
        feed(&mut node, 1, far.clone(), 0.5, 150.0);
        feed(&mut node, 2, near, 0.5, 10.0);
        let view = node.view();
        assert_eq!(view.neighbors.len(), 2);
        // Neighbours come back in discovery order with their link state.
        assert_eq!(view.neighbors[0].id, 1);
        assert_eq!(view.neighbors[0].coordinate, far);
        assert_eq!(view.neighbors[0].observations, 1);
        let (nearest, rtt) = view.nearest_neighbor.unwrap();
        assert_eq!(nearest, 2);
        assert!(rtt <= 10.0);
    }

    #[test]
    fn nearest_neighbor_reevaluated_when_incumbent_degrades() {
        // Satellite fix: when the incumbent nearest link's filtered RTT
        // rises above another known neighbour's, the title must be handed
        // over, not kept by the stale incumbent.
        let config = NodeConfig::builder().filter(FilterConfig::Raw).build();
        let mut node = Node::new(config);
        let a = Coordinate::new(vec![5.0, 0.0, 0.0]).unwrap();
        let b = Coordinate::new(vec![12.0, 0.0, 0.0]).unwrap();
        feed(&mut node, 1, a.clone(), 0.5, 10.0);
        feed(&mut node, 2, b, 0.5, 20.0);
        assert_eq!(node.view().nearest_neighbor.unwrap().0, 1);
        // Link 1 degrades well past link 2.
        feed(&mut node, 1, a, 0.5, 50.0);
        let (nearest, rtt) = node.view().nearest_neighbor.unwrap();
        assert_eq!(nearest, 2, "nearest should migrate to the now-closer link");
        assert_eq!(rtt, 20.0);
    }

    #[test]
    fn invalid_observation_changes_nothing() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let events = feed(&mut node, 1, remote, 0.5, f64::NAN);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::ObservationFiltered { id: 1, .. })),
            "{events:?}"
        );
        assert_eq!(node.system_coordinate(), &Coordinate::origin(3));
    }

    #[test]
    fn debug_output_mentions_coordinates() {
        let node = Node::new(NodeConfig::paper_defaults());
        let s = format!("{node:?}");
        assert!(s.contains("StableNode"));
        assert!(s.contains("system_coordinate"));
    }

    #[test]
    fn application_error_is_reported() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![25.0, 0.0, 0.0]).unwrap();
        let events = feed(&mut node, 1, remote, 0.5, 50.0);
        let app_err = events
            .iter()
            .find_map(|event| match event {
                Event::SystemMoved {
                    application_relative_error,
                    ..
                } => Some(*application_relative_error),
                _ => None,
            })
            .unwrap();
        // App coordinate is at the origin, remote at 25 ms, observation 50 ms:
        // relative error |25 - 50| / 50 = 0.5.
        assert!((app_err - 0.5).abs() < 1e-9);
    }

    #[test]
    fn next_probe_cycles_round_robin_over_seeded_members() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        assert!(node.next_probe(0).is_none(), "no peers known yet");
        node.seed_neighbor(10);
        node.seed_neighbor(11);
        node.seed_neighbor(12);
        let targets: Vec<u32> = (0..6).map(|t| node.next_probe(t).unwrap().target).collect();
        assert_eq!(targets, vec![10, 11, 12, 10, 11, 12]);
        let seqs: Vec<u64> = (0..3).map(|t| node.next_probe(t).unwrap().seq).collect();
        assert_eq!(
            seqs,
            vec![6, 7, 8],
            "sequence numbers increase monotonically"
        );
    }

    #[test]
    fn handle_response_reports_discovery_filtering_movement_and_updates() {
        let config = NodeConfig::builder().warmup_samples(2).build();
        let mut node = StableNode::<u32>::new(config);
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let request = node.probe_request_for(1, 0);
        let mut response = ProbeResponse::new(1, &request, remote.clone(), 0.5);
        response.rtt_ms = 80.0;

        // First sample: the warm-up filter withholds it. The responder was
        // registered by `probe_request_for`, so no discovery event.
        let events = node.handle_response(&response);
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            Event::ObservationFiltered { id: 1, raw_rtt_ms } if raw_rtt_ms == 80.0
        ));

        // Second sample (a fresh probe, not a replay of the settled one)
        // passes the filter and moves the coordinate.
        let request = node.probe_request_for(1, 1);
        let mut response = ProbeResponse::new(1, &request, remote, 0.5);
        response.rtt_ms = 80.0;
        let events = node.handle_response(&response);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::SystemMoved { id: 1, displacement_ms, .. } if *displacement_ms > 0.0
        )));
    }

    #[test]
    fn gossip_discovers_new_neighbors() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let request = node.probe_request_for(1, 0);
        let mut response =
            ProbeResponse::new(1, &request, remote.clone(), 0.5).with_gossip(GossipEntry {
                id: 99,
                coordinate: remote,
                error_estimate: 0.8,
            });
        response.rtt_ms = 50.0;
        let events = node.handle_response(&response);
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::NeighborDiscovered { id: 99 })));
        assert!(node.view().membership.contains(&99));
        // The gossiped peer is now in the probe rotation.
        let targets: Vec<u32> = (0..2).map(|t| node.next_probe(t).unwrap().target).collect();
        assert!(targets.contains(&99));
    }

    #[test]
    fn rejected_observations_are_reported_as_events() {
        let config = NodeConfig::builder().filter(FilterConfig::Raw).build();
        let mut node = StableNode::<u32>::new(config);
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let request = node.probe_request_for(1, 0);
        let mut response = ProbeResponse::new(1, &request, remote, 0.5);
        // Beyond the Vivaldi plausibility bound but accepted by the raw
        // filter: Vivaldi rejects it.
        response.rtt_ms = 500_000.0;
        let events = node.handle_response(&response);
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::ObservationRejected { id: 1, .. })));
    }

    #[test]
    fn respond_echoes_correlation_fields_and_gossips() {
        let mut a = Node::new(NodeConfig::paper_defaults());
        let mut b = Node::new(NodeConfig::paper_defaults());
        // Teach b about peer 7 so it has something to gossip.
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        feed(&mut b, 7, remote, 0.5, 30.0);

        let request = a.probe_request_for(1, 12_345);
        let response = b.respond(&request);
        assert_eq!(response.seq, request.seq);
        assert_eq!(response.sent_at_ms, 12_345);
        assert_eq!(response.responder, 1);
        assert_eq!(response.coordinate, *b.system_coordinate());
        assert_eq!(response.gossip.len(), 1);
        assert_eq!(response.gossip[0].id, 7);
    }

    #[test]
    fn handle_many_equals_sequential_handling() {
        let build = || {
            let mut node = Node::new(NodeConfig::paper_defaults());
            node.seed_neighbor(1);
            node
        };
        let remote = Coordinate::new(vec![30.0, 0.0, 0.0]).unwrap();
        let responses: Vec<ProbeResponse<u32>> = (0..20)
            .map(|i| {
                let request = ProbeRequest::new(1, i, i);
                let mut response = ProbeResponse::new(1, &request, remote.clone(), 0.5);
                response.rtt_ms = 60.0 + (i % 5) as f64;
                response
            })
            .collect();

        let mut batch_node = build();
        let batch_events = batch_node.handle_many(&responses);
        let mut seq_node = build();
        let mut seq_events = Vec::new();
        for response in &responses {
            seq_events.extend(seq_node.handle_response(response));
        }
        assert_eq!(batch_events, seq_events);
        assert_eq!(batch_node.system_coordinate(), seq_node.system_coordinate());
    }

    #[test]
    fn snapshot_restore_resumes_identical_trajectory() {
        let mut rng = StdRng::seed_from_u64(99);
        let config = NodeConfig::paper_defaults();
        let mut original = Node::new(config.clone());
        let remote_a = Coordinate::new(vec![40.0, 10.0, 0.0]).unwrap();
        let remote_b = Coordinate::new(vec![5.0, 60.0, 0.0]).unwrap();

        // Drive the node through the wire API for a while.
        for i in 0..300u64 {
            let (peer, coordinate) = if i % 2 == 0 {
                (1, &remote_a)
            } else {
                (2, &remote_b)
            };
            let request = original.probe_request_for(peer, i);
            let mut response = ProbeResponse::new(peer, &request, coordinate.clone(), 0.4);
            response.rtt_ms = 55.0 + rng.gen_range(-6.0..6.0);
            original.handle_response(&response);
        }

        // Snapshot, serialize to the wire form, restore.
        let encoded = original.snapshot().encode();
        let snapshot = NodeSnapshot::<u32>::decode(&encoded).unwrap();
        let mut restored = Node::restore(config, &snapshot).unwrap();
        assert_eq!(restored.system_coordinate(), original.system_coordinate());
        assert_eq!(
            restored.application_coordinate(),
            original.application_coordinate()
        );
        assert_eq!(restored.view().observations, original.view().observations);
        assert_eq!(restored.view(), original.view(), "views restore whole");

        // Both must produce identical event streams on the same subsequent
        // observation sequence — including filter windows and heuristic
        // windows, which is what a naive coordinate-only restore would miss.
        for i in 0..200u64 {
            let (peer, coordinate) = if i % 2 == 0 {
                (1, &remote_a)
            } else {
                (2, &remote_b)
            };
            let rtt = 55.0 + rng.gen_range(-6.0..6.0);
            let request_o = original.probe_request_for(peer, i);
            let request_r = restored.probe_request_for(peer, i);
            assert_eq!(request_o, request_r, "probe schedules stay in lockstep");
            let mut response_o = ProbeResponse::new(peer, &request_o, coordinate.clone(), 0.4);
            response_o.rtt_ms = rtt;
            let events_o = original.handle_response(&response_o);
            let events_r = restored.handle_response(&response_o);
            assert_eq!(events_o, events_r, "event streams diverged at step {i}");
        }
        assert_eq!(restored.system_coordinate(), original.system_coordinate());
    }

    #[test]
    fn identity_keeps_self_out_of_gossip_and_probe_schedule() {
        let mut a = Node::new(NodeConfig::paper_defaults());
        let mut b = Node::new(NodeConfig::paper_defaults());
        a.set_identity(0);
        b.set_identity(1);
        // Many exchanges in both directions: b learns a (as requester and
        // neighbour) and must never gossip a's address back, and a must
        // never schedule itself even if the address leaks around.
        for round in 0..20 {
            exchange(&mut a, &mut b, 1, 40.0, round);
            exchange(&mut b, &mut a, 0, 40.0, round);
        }
        assert!(
            !a.view().membership.contains(&0),
            "a scheduled itself: {:?}",
            a.view().membership
        );
        assert!(
            !b.view().membership.contains(&1),
            "b scheduled itself: {:?}",
            b.view().membership
        );
        for t in 0..4 {
            assert_ne!(a.next_probe(t).unwrap().target, 0, "a probed itself");
        }
        // Even a (buggy or hostile) peer gossiping a's own address at it is
        // ignored.
        let request = a.probe_request_for(1, 0);
        assert_eq!(
            request.source,
            Some(0),
            "probes carry the declared identity"
        );
        let mut response =
            ProbeResponse::new(1, &request, Coordinate::origin(3), 0.5).with_gossip(GossipEntry {
                id: 0,
                coordinate: Coordinate::origin(3),
                error_estimate: 0.5,
            });
        response.rtt_ms = 40.0;
        let events = a.handle_response(&response);
        assert!(!events
            .iter()
            .any(|e| matches!(e, Event::NeighborDiscovered { id: 0 })));
        let view = a.view();
        assert!(!view.membership.contains(&0));
        assert!(!view.neighbors.iter().any(|peer| peer.id == 0));
    }

    #[test]
    fn restore_applies_the_supplied_vivaldi_constants() {
        // A snapshot embeds the VivaldiConfig it ran under; restore must
        // override it with the supplied configuration (deployment input),
        // not silently keep the old constants. Observable via confidence
        // building: under a huge error margin the restored node treats the
        // next observation as already explained and does not move.
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![30.0, 0.0, 0.0]).unwrap();
        for _ in 0..50 {
            feed(&mut node, 1, remote.clone(), 0.5, 60.0);
        }
        let snapshot = node.snapshot();

        let margin_config = NodeConfig::builder()
            .vivaldi(
                nc_vivaldi::VivaldiConfig::paper_defaults()
                    .with_confidence_building(Some(10_000.0)),
            )
            .build();
        let mut with_margin = Node::restore(margin_config, &snapshot).unwrap();
        let events = feed(&mut with_margin, 1, remote.clone(), 0.5, 60.0);
        assert_eq!(
            moved_displacement(&events),
            Some(0.0),
            "the new error margin must be in effect after restore: {events:?}"
        );

        let mut without_margin = Node::restore(NodeConfig::paper_defaults(), &snapshot).unwrap();
        let events = feed(&mut without_margin, 1, remote, 0.5, 60.0);
        assert!(
            moved_displacement(&events).unwrap() > 0.0,
            "original constants keep moving the coordinate: {events:?}"
        );
    }

    #[test]
    fn mismatched_dimensionality_is_discarded_not_a_panic() {
        // A peer from a differently-configured deployment (or a hostile one)
        // sending a 2-D coordinate into a 3-D node must be ignored, not
        // crash the engine inside a distance computation.
        let mut node = Node::new(NodeConfig::paper_defaults());
        let request = node.probe_request_for(1, 0);
        let flat = Coordinate::new(vec![10.0, 5.0]).unwrap();
        let mut response = ProbeResponse::new(1, &request, flat.clone(), 0.5);
        response.rtt_ms = 40.0;
        let events = node.handle_response(&response);
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::ObservationFiltered { id: 1, .. })));
        assert!(node.view().neighbors.is_empty(), "nothing was stored");

        // A well-dimensioned responder gossiping a flat coordinate is kept,
        // but the flat gossip entry is dropped.
        let request = node.probe_request_for(2, 1);
        let good = Coordinate::new(vec![10.0, 5.0, 1.0]).unwrap();
        let mut response = ProbeResponse::new(2, &request, good, 0.5).with_gossip(GossipEntry {
            id: 3,
            coordinate: flat,
            error_estimate: 0.5,
        });
        response.rtt_ms = 40.0;
        node.handle_response(&response);
        let view = node.view();
        assert!(view.neighbors.iter().any(|peer| peer.id == 2));
        assert!(!view.neighbors.iter().any(|peer| peer.id == 3));
    }

    #[test]
    fn self_addressed_response_is_dropped() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        node.set_identity(0);
        node.seed_neighbor(1);
        // A hostile or misrouted response claiming to come from the node
        // itself must not make it its own neighbour (with a ~0 ms loopback
        // RTT it would otherwise become its own nearest neighbour and break
        // the RELATIVE heuristic's locale scaling).
        let request = node.probe_request_for(1, 0);
        let mut response = ProbeResponse::new(0, &request, Coordinate::origin(3), 0.5);
        response.rtt_ms = 0.5;
        let events = node.handle_response(&response);
        assert!(events.is_empty());
        let view = node.view();
        assert!(view.neighbors.is_empty());
        assert_eq!(view.nearest_neighbor, None);
        assert_eq!(view.observations, 0);
    }

    #[test]
    fn probe_timeout_emits_probe_lost_and_never_stalls_the_schedule() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        node.seed_neighbor(1);
        node.seed_neighbor(2);
        let request = node.next_probe(0).unwrap();
        assert_eq!(node.pending_probes().len(), 1);
        let events = node.handle_timeout(request.seq);
        assert_eq!(
            events,
            vec![Event::ProbeLost {
                id: request.target,
                seq: request.seq
            }]
        );
        assert!(node.pending_probes().is_empty());
        // The schedule moved on to the next peer; nothing is stuck waiting.
        assert_eq!(node.next_probe(1).unwrap().target, 2);
        // A second timeout for the same seq is a no-op (reply raced the timer).
        assert!(node.handle_timeout(request.seq).is_empty());
    }

    #[test]
    fn expire_pending_expires_only_old_probes() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        node.probe_request_for(1, 1_000);
        node.probe_request_for(2, 5_000);
        let events = node.expire_pending(9_000, 5_000);
        assert_eq!(
            events.len(),
            1,
            "only the 1 s probe is 5 s stale: {events:?}"
        );
        assert!(matches!(events[0], Event::ProbeLost { id: 1, .. }));
        assert_eq!(node.pending_probes().len(), 1);
        assert_eq!(node.pending_probes()[0].target, 2);
    }

    #[test]
    fn response_settles_pending_and_resets_loss_streak() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        // One probe lost, then one answered: the streak must reset.
        let lost = node.probe_request_for(1, 0);
        node.handle_timeout(lost.seq);
        assert_eq!(node.loss_streak(&1), 1);
        let request = node.probe_request_for(1, 1);
        let mut response = ProbeResponse::new(1, &request, remote, 0.5);
        response.rtt_ms = 40.0;
        node.handle_response(&response);
        assert_eq!(node.loss_streak(&1), 0);
        assert!(node.pending_probes().is_empty());
    }

    #[test]
    fn consecutive_losses_evict_the_peer_when_configured() {
        let config = NodeConfig::builder().max_consecutive_losses(3).build();
        let mut node = Node::new(config);
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        feed(&mut node, 7, remote, 0.5, 25.0);
        node.seed_neighbor(8);
        assert!(node.view().nearest_neighbor.is_some());
        for round in 0..3u64 {
            let request = node.probe_request_for(7, round);
            let events = node.handle_timeout(request.seq);
            if round < 2 {
                assert_eq!(events.len(), 1, "no eviction yet: {events:?}");
            } else {
                assert!(
                    events.contains(&Event::NeighborEvicted { id: 7 }),
                    "third straight loss evicts: {events:?}"
                );
            }
        }
        let view = node.view();
        assert!(!view.membership.contains(&7));
        assert!(!view.neighbors.iter().any(|peer| peer.id == 7));
        assert_eq!(view.nearest_neighbor, None);
        assert_eq!(node.loss_streak(&7), 0);
        // The rest of the schedule is untouched.
        assert_eq!(node.next_probe(0).unwrap().target, 8);
    }

    #[test]
    fn late_reply_after_timeout_is_ignored() {
        // Headline regression: the probe times out (the loss is recorded),
        // then its reply straggles in. The engine must report it as ignored
        // and leave every bit of filter/coordinate/streak state untouched —
        // digesting it would double-count the exchange with a stale RTT.
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let request = node.probe_request_for(1, 0);
        node.handle_timeout(request.seq);
        assert_eq!(node.loss_streak(&1), 1);

        let mut late = ProbeResponse::new(1, &request, remote, 0.5);
        late.rtt_ms = 40.0;
        let events = node.handle_response(&late);
        assert_eq!(
            events,
            vec![Event::ResponseIgnored {
                id: 1,
                seq: request.seq
            }]
        );
        assert_eq!(node.view().observations, 0, "no observation was digested");
        assert_eq!(node.system_coordinate(), &Coordinate::origin(3));
        assert!(
            node.view().neighbors.is_empty(),
            "the stale coordinate was not stored"
        );
        assert_eq!(
            node.loss_streak(&1),
            1,
            "an ignored reply must not clear the loss streak"
        );
    }

    #[test]
    fn duplicate_reply_is_ignored() {
        // Headline regression: the same reply delivered twice (a duplicated
        // datagram) is applied exactly once. The duplicate produces
        // `ResponseIgnored` and changes nothing.
        let config = NodeConfig::builder().filter(FilterConfig::Raw).build();
        let mut node = StableNode::<u32>::new(config);
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let request = node.probe_request_for(1, 0);
        let mut response = ProbeResponse::new(1, &request, remote, 0.5);
        response.rtt_ms = 40.0;

        let first = node.handle_response(&response);
        assert!(first
            .iter()
            .any(|e| matches!(e, Event::SystemMoved { id: 1, .. })));
        let coordinate = node.system_coordinate().clone();
        let observations = node.view().observations;

        let duplicate = node.handle_response(&response);
        assert_eq!(
            duplicate,
            vec![Event::ResponseIgnored {
                id: 1,
                seq: request.seq
            }]
        );
        assert_eq!(node.system_coordinate(), &coordinate);
        assert_eq!(node.view().observations, observations);
    }

    #[test]
    fn unsolicited_reply_is_ignored_once_probing_started() {
        // A response from a peer that was never probed (spoofed, or routed
        // to the wrong node) is dropped — including its gossip payload: an
        // uncorrelated sender must not be able to poison the membership.
        let mut node = Node::new(NodeConfig::paper_defaults());
        node.probe_request_for(1, 0);
        let forged_request = ProbeRequest::new(99, 1_000, 0);
        let mut forged = ProbeResponse::new(99, &forged_request, Coordinate::origin(3), 0.5)
            .with_gossip(GossipEntry {
                id: 55,
                coordinate: Coordinate::origin(3),
                error_estimate: 0.5,
            });
        forged.rtt_ms = 1.0;
        let events = node.handle_response(&forged);
        assert_eq!(events, vec![Event::ResponseIgnored { id: 99, seq: 1_000 }]);
        let membership = node.view().membership;
        assert!(!membership.contains(&99));
        assert!(!membership.contains(&55), "gossip was not ingested");
    }

    #[test]
    fn required_correlation_protects_a_node_that_never_probed() {
        // A listening deployment node (no seeds, never probed anyone yet)
        // must not digest forged responses during the window before its
        // first probe: drivers exposed to untrusted traffic declare
        // strictness explicitly.
        let mut node = Node::new(NodeConfig::paper_defaults());
        node.require_correlated_responses();
        let forged_request = ProbeRequest::new(9, 0, 0);
        let mut forged = ProbeResponse::new(9, &forged_request, Coordinate::origin(3), 0.5);
        forged.rtt_ms = 1.0;
        let events = node.handle_response(&forged);
        assert_eq!(events, vec![Event::ResponseIgnored { id: 9, seq: 0 }]);
        let view = node.view();
        assert_eq!(view.observations, 0);
        assert!(view.neighbors.is_empty());
        assert!(view.membership.is_empty());
    }

    #[test]
    fn correlation_requires_matching_responder_not_just_seq() {
        // A reply echoing a live sequence number but claiming a different
        // responder must not settle the real probe.
        let mut node = Node::new(NodeConfig::paper_defaults());
        let request = node.probe_request_for(1, 0);
        let mut crossed = ProbeResponse::new(2, &request, Coordinate::origin(3), 0.5);
        crossed.rtt_ms = 40.0;
        let events = node.handle_response(&crossed);
        assert_eq!(
            events,
            vec![Event::ResponseIgnored {
                id: 2,
                seq: request.seq
            }]
        );
        assert_eq!(node.pending_probes().len(), 1, "the real probe still waits");
    }

    #[test]
    fn rotation_stays_churn_stable_across_mid_cycle_eviction() {
        // Satellite regression: evicting a peer mid-cycle must neither skip
        // nor repeat any surviving peer for the rest of the cycle.
        let config = NodeConfig::builder().max_consecutive_losses(1).build();
        let mut node = StableNode::<u32>::new(config);
        for peer in [10, 11, 12, 13, 14] {
            node.seed_neighbor(peer);
        }
        // Probe 10 and 11, then evict 10 (already behind the cursor).
        assert_eq!(node.next_probe(0).unwrap().target, 10);
        let lost = node.next_probe(1).unwrap();
        assert_eq!(lost.target, 11);
        let doomed = node.probe_request_for(10, 2);
        let events = node.handle_timeout(doomed.seq);
        assert!(events.contains(&Event::NeighborEvicted { id: 10 }));

        // The rest of the cycle visits exactly the not-yet-probed survivors.
        let rest: Vec<u32> = (0..3)
            .map(|t| node.next_probe(3 + t).unwrap().target)
            .collect();
        assert_eq!(rest, vec![12, 13, 14], "no skip, no repeat after eviction");
        // And the next full cycle covers every survivor exactly once.
        let cycle: Vec<u32> = (0..4)
            .map(|t| node.next_probe(10 + t).unwrap().target)
            .collect();
        assert_eq!(cycle, vec![11, 12, 13, 14]);
    }

    #[test]
    fn rotation_survives_evicting_the_peer_under_the_cursor() {
        // Eviction of the peer the cursor points at just moves on to the
        // next survivor; eviction of the last member wraps cleanly.
        let config = NodeConfig::builder().max_consecutive_losses(1).build();
        let mut node = StableNode::<u32>::new(config);
        for peer in [20, 21, 22] {
            node.seed_neighbor(peer);
        }
        assert_eq!(node.next_probe(0).unwrap().target, 20);
        // Cursor now points at 21; evict it.
        let doomed = node.probe_request_for(21, 1);
        node.handle_timeout(doomed.seq);
        assert_eq!(node.next_probe(2).unwrap().target, 22);
        assert_eq!(node.next_probe(3).unwrap().target, 20);

        // Evict 22 (now *behind* a wrapped cursor position) and keep going.
        let doomed = node.probe_request_for(22, 4);
        node.handle_timeout(doomed.seq);
        assert_eq!(node.next_probe(5).unwrap().target, 20);
        assert_eq!(node.next_probe(6).unwrap().target, 20);
    }

    #[test]
    fn expire_pending_into_reuses_the_caller_buffer() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        node.probe_request_for(1, 0);
        node.probe_request_for(2, 10_000);
        let mut events = Vec::new();
        node.expire_pending_into(20_000, 5_000, &mut events);
        assert_eq!(events.len(), 2, "both probes are stale: {events:?}");
        // The buffer is appended to, not cleared behind the caller's back.
        node.probe_request_for(3, 30_000);
        node.expire_pending_into(40_000, 5_000, &mut events);
        assert_eq!(events.len(), 3);
        assert!(matches!(events[2], Event::ProbeLost { id: 3, .. }));
    }

    #[test]
    fn snapshot_carries_pending_probes_and_streaks() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let lost = node.probe_request_for(1, 0);
        node.handle_timeout(lost.seq);
        let in_flight = node.probe_request_for(2, 10);
        let encoded = node.snapshot().encode();
        let snapshot = NodeSnapshot::<u32>::decode(&encoded).unwrap();
        let mut restored = Node::restore(NodeConfig::paper_defaults(), &snapshot).unwrap();
        assert_eq!(restored.pending_probes(), node.pending_probes());
        assert_eq!(restored.loss_streak(&1), 1);
        // The restored node settles the in-flight probe exactly like the
        // original would.
        let events_o = node.handle_timeout(in_flight.seq);
        let events_r = restored.handle_timeout(in_flight.seq);
        assert_eq!(events_o, events_r);
        assert!(restored.pending_probes().is_empty());
    }

    #[test]
    fn restore_rejects_dimensionally_inconsistent_snapshots() {
        // The vivaldi coordinate alone passing the dimension check must not
        // let a snapshot with a flat link coordinate through — it would
        // restore fine and panic later when that link is compared against.
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        feed(&mut node, 1, remote, 0.5, 40.0);
        let mut snapshot = node.snapshot();
        snapshot.links[0].coordinate = Coordinate::new(vec![10.0, 0.0]).unwrap();
        assert!(matches!(
            Node::restore(NodeConfig::paper_defaults(), &snapshot),
            Err(RestoreError::Dimensions {
                expected: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn restore_rejects_incompatible_snapshots() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        feed(&mut node, 1, remote, 0.5, 40.0);
        let snapshot = node.snapshot();

        // Wrong protocol version.
        let mut versioned = snapshot.clone();
        versioned.version = PROTOCOL_VERSION + 1;
        assert!(matches!(
            Node::restore(NodeConfig::paper_defaults(), &versioned),
            Err(RestoreError::Version { .. })
        ));

        // Wrong dimensionality.
        let config_2d = NodeConfig::builder()
            .vivaldi(nc_vivaldi::VivaldiConfig::paper_defaults().with_dimensions(2))
            .build();
        assert!(matches!(
            Node::restore(config_2d, &snapshot),
            Err(RestoreError::Dimensions {
                expected: 2,
                found: 3
            })
        ));

        // Wrong filter family.
        let config_ewma = NodeConfig::builder()
            .filter(FilterConfig::Ewma { alpha: 0.1 })
            .build();
        let err = Node::restore(config_ewma, &snapshot).unwrap_err();
        assert!(matches!(err, RestoreError::Filter(_)), "{err}");
    }

    // -----------------------------------------------------------------
    // Outlier gate
    // -----------------------------------------------------------------

    fn gated_config() -> NodeConfig {
        NodeConfig::builder()
            .filter(FilterConfig::Raw)
            .outlier_gate(nc_vivaldi::OutlierGateConfig::default())
            .build()
    }

    /// Warms a gated prober against an honest target until the gate is past
    /// its warm-up, returning the prober, the target and the next probe
    /// timestamp.
    fn warmed_gated_prober(config: NodeConfig) -> (Node, Node, u64) {
        let mut prober = Node::new(config);
        let mut target = Node::new(NodeConfig::paper_defaults());
        let mut now = 0;
        for _ in 0..30 {
            exchange(&mut prober, &mut target, 1, 50.0, now);
            exchange(&mut target, &mut prober, 0, 50.0, now);
            now += 1_000;
        }
        (prober, target, now)
    }

    /// A correlated response from peer `1` claiming a coordinate far from
    /// anything a 50 ms link could explain, with a gossip entry riding on
    /// it.
    fn lying_response(prober: &mut Node, now: u64) -> ProbeResponse<u32> {
        let request = prober.probe_request_for(1, now);
        let fake = Coordinate::new(vec![5_000.0, 0.0, 0.0]).unwrap();
        let mut response = ProbeResponse::new(1, &request, fake, 0.001);
        response.rtt_ms = 50.0;
        response.gossip.push(GossipEntry {
            id: 777,
            coordinate: Coordinate::new(vec![1.0, 2.0, 3.0]).unwrap(),
            error_estimate: 0.3,
        });
        response
    }

    #[test]
    fn gate_rejects_implausible_observations_and_drops_their_gossip() {
        let (mut prober, _target, now) = warmed_gated_prober(gated_config());
        let response = lying_response(&mut prober, now);
        let events = prober.handle_response(&response);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::ObservationRejected { id: 1, .. })),
            "{events:?}"
        );
        // The whole reply is dropped: the gossiped peer 777 must not enter
        // membership, the neighbour table, or the probe rotation.
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, Event::NeighborDiscovered { id: 777 })),
            "{events:?}"
        );
        let view = prober.view();
        assert!(!view.membership.contains(&777));
        assert!(view.neighbors.iter().all(|peer| peer.id != 777));
        // And the spring never moved.
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, Event::SystemMoved { .. })),
            "{events:?}"
        );
    }

    #[test]
    fn ungated_node_accepts_the_same_lying_response() {
        let config = NodeConfig::builder().filter(FilterConfig::Raw).build();
        let (mut prober, _target, now) = warmed_gated_prober(config);
        let response = lying_response(&mut prober, now);
        let events = prober.handle_response(&response);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SystemMoved { .. })),
            "{events:?}"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::NeighborDiscovered { id: 777 })));
        assert!(prober.view().membership.contains(&777));
    }

    #[test]
    fn gate_admits_an_honest_stream_untouched() {
        let (mut prober, mut target, mut now) = warmed_gated_prober(gated_config());
        let mut moved = 0;
        for _ in 0..40 {
            let events = exchange(&mut prober, &mut target, 1, 50.0, now);
            exchange(&mut target, &mut prober, 0, 50.0, now);
            assert!(
                !events
                    .iter()
                    .any(|e| matches!(e, Event::ObservationRejected { .. })),
                "honest observation rejected: {events:?}"
            );
            moved += events
                .iter()
                .filter(|e| matches!(e, Event::SystemMoved { .. }))
                .count();
            now += 1_000;
        }
        assert!(moved > 0);
    }

    #[test]
    fn gate_keeps_accepting_honest_observations_after_an_attack() {
        let (mut prober, mut target, mut now) = warmed_gated_prober(gated_config());
        for _ in 0..5 {
            let response = lying_response(&mut prober, now);
            let events = prober.handle_response(&response);
            assert!(events
                .iter()
                .any(|e| matches!(e, Event::ObservationRejected { id: 1, .. })));
            now += 1_000;
        }
        let events = exchange(&mut prober, &mut target, 1, 50.0, now);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SystemMoved { .. })),
            "honest follow-up rejected: {events:?}"
        );
    }

    #[test]
    fn gated_node_converges_like_an_ungated_one_on_honest_links() {
        // The gate judges every wire observation, so the two stacks are not
        // bit-identical — but on a clean constant-latency link the gate must
        // not keep an honest node from converging to the same place.
        let (gated, gated_peer) = converge_pair(gated_config(), 100.0, 400);
        let (plain, plain_peer) = converge_pair(
            NodeConfig::builder().filter(FilterConfig::Raw).build(),
            100.0,
            400,
        );
        let gated_estimate = gated.estimate_rtt_ms(gated_peer.system_coordinate());
        let plain_estimate = plain.estimate_rtt_ms(plain_peer.system_coordinate());
        assert!(
            (gated_estimate - 100.0).abs() < 15.0,
            "gated estimate {gated_estimate}"
        );
        assert!(
            (plain_estimate - 100.0).abs() < 15.0,
            "plain estimate {plain_estimate}"
        );
    }

    #[test]
    fn gate_rewarns_after_restore() {
        let (prober, _target, now) = warmed_gated_prober(gated_config());
        let snapshot = prober.snapshot();
        let mut revived = Node::restore(gated_config(), &snapshot).unwrap();
        // The gate window is runtime state and is not persisted: right
        // after restore the gate is in warm-up and even an implausible
        // observation passes (and the reply's gossip with it).
        let response = lying_response(&mut revived, now);
        let events = revived.handle_response(&response);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SystemMoved { .. })),
            "{events:?}"
        );
    }
}
