//! The per-host coordinate subsystem: filter → Vivaldi → application-level
//! coordinate.

use std::collections::HashMap;
use std::hash::Hash;

use nc_change::{ApplicationCoordinate, ApplicationUpdate, UpdateContext};
use nc_filters::LatencyFilter;
use nc_vivaldi::{Coordinate, RemoteObservation, VivaldiState};

use crate::config::NodeConfig;

/// What one call to [`StableNode::observe`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationOutcome {
    /// The filtered latency estimate handed to Vivaldi, or `None` when the
    /// filter suppressed the observation (warm-up, threshold discard, or an
    /// invalid sample) and nothing further happened.
    pub filtered_rtt_ms: Option<f64>,
    /// Relative error of the pre-update system coordinate against the
    /// *filtered* observation (the per-node accuracy metric of §II-A).
    pub relative_error: Option<f64>,
    /// Relative error of the *application-level* coordinate against the
    /// filtered observation (the accuracy an application embedding `c_a`
    /// experiences, §V-B).
    pub application_relative_error: Option<f64>,
    /// System-level coordinate displacement caused by this observation
    /// (milliseconds).
    pub system_displacement_ms: f64,
    /// The application-level update published because of this observation,
    /// if the heuristic decided the change was significant.
    pub application_update: Option<ApplicationUpdate>,
}

/// A remote node as last seen by this node.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborSnapshot {
    /// The neighbour's coordinate when we last observed it.
    pub coordinate: Coordinate,
    /// The neighbour's error estimate when we last observed it.
    pub error_estimate: f64,
    /// The most recent filtered latency estimate for the link (ms).
    pub filtered_rtt_ms: Option<f64>,
    /// Number of raw observations of this link.
    pub observations: u64,
}

/// The paper's coordinate stack for one host.
///
/// `Id` identifies remote peers (an address, an index into a membership list,
/// a node name in a simulator — anything hashable).
///
/// See the [crate-level documentation](crate) for a usage example.
pub struct StableNode<Id: Eq + Hash + Clone> {
    config: NodeConfig,
    vivaldi: VivaldiState,
    application: ApplicationCoordinate,
    follow_system: bool,
    filters: HashMap<Id, Box<dyn LatencyFilter + Send>>,
    neighbors: HashMap<Id, NeighborSnapshot>,
    nearest_neighbor: Option<(Id, f64)>,
    observations: u64,
}

impl<Id: Eq + Hash + Clone + std::fmt::Debug> std::fmt::Debug for StableNode<Id> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StableNode")
            .field("system_coordinate", self.vivaldi.coordinate())
            .field("application_coordinate", self.application.coordinate())
            .field("error_estimate", &self.vivaldi.error_estimate())
            .field("neighbors", &self.neighbors.len())
            .field("observations", &self.observations)
            .finish()
    }
}

impl<Id: Eq + Hash + Clone> StableNode<Id> {
    /// Creates a node with the given configuration. The node starts at the
    /// origin with no confidence, exactly like a freshly booted Vivaldi
    /// participant.
    pub fn new(config: NodeConfig) -> Self {
        let vivaldi = VivaldiState::new(config.vivaldi.clone());
        let initial = vivaldi.coordinate().clone();
        let (application, follow_system) = match config.heuristic.build() {
            Some(heuristic) => (ApplicationCoordinate::new(initial, heuristic), false),
            None => (
                // A heuristic is still needed as a placeholder; FollowSystem
                // bypasses it entirely in `observe`.
                ApplicationCoordinate::new(
                    initial,
                    Box::new(nc_change::ApplicationHeuristic::new(f64::MAX / 4.0)),
                ),
                true,
            ),
        };
        StableNode {
            config,
            vivaldi,
            application,
            follow_system,
            filters: HashMap::new(),
            neighbors: HashMap::new(),
            nearest_neighbor: None,
            observations: 0,
        }
    }

    /// The node's configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The system-level coordinate `c_s` (moves with every observation).
    pub fn system_coordinate(&self) -> &Coordinate {
        self.vivaldi.coordinate()
    }

    /// The application-level coordinate `c_a` (moves only on significant
    /// change).
    pub fn application_coordinate(&self) -> &Coordinate {
        if self.follow_system {
            self.vivaldi.coordinate()
        } else {
            self.application.coordinate()
        }
    }

    /// The node's Vivaldi error estimate `w_i` (lower is better).
    pub fn error_estimate(&self) -> f64 {
        self.vivaldi.error_estimate()
    }

    /// The node's confidence `1 − w_i` (the quantity of Figure 6).
    pub fn confidence(&self) -> f64 {
        self.vivaldi.confidence()
    }

    /// Number of raw observations fed to this node.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of application-level updates published so far.
    pub fn application_update_count(&self) -> u64 {
        self.application.update_count()
    }

    /// Total system-level coordinate movement so far (ms).
    pub fn system_displacement_ms(&self) -> f64 {
        self.vivaldi.total_displacement_ms()
    }

    /// Total application-level coordinate movement so far (ms).
    pub fn application_displacement_ms(&self) -> f64 {
        if self.follow_system {
            self.vivaldi.total_displacement_ms()
        } else {
            self.application.total_displacement_ms()
        }
    }

    /// Predicted round-trip latency from this node to a remote coordinate,
    /// using the system-level coordinate.
    pub fn estimate_rtt_ms(&self, remote: &Coordinate) -> f64 {
        self.vivaldi.estimated_rtt_ms(remote)
    }

    /// Predicted round-trip latency using the application-level coordinate —
    /// what an application embedding `c_a` would compute.
    pub fn application_estimate_rtt_ms(&self, remote: &Coordinate) -> f64 {
        self.application_coordinate().distance(remote)
    }

    /// The neighbours this node has observed, with their last-known state.
    pub fn neighbors(&self) -> impl Iterator<Item = (&Id, &NeighborSnapshot)> {
        self.neighbors.iter()
    }

    /// The identifier and last filtered RTT of the (approximately) nearest
    /// neighbour, learned passively from the observation stream.
    pub fn nearest_neighbor(&self) -> Option<(&Id, f64)> {
        self.nearest_neighbor.as_ref().map(|(id, rtt)| (id, *rtt))
    }

    /// Feeds one raw latency observation of peer `id`.
    ///
    /// `remote_coordinate` and `remote_error_estimate` are the values the
    /// peer attached to its probe reply (its system-level coordinate and
    /// Vivaldi error estimate); `raw_rtt_ms` is the measured round-trip time.
    pub fn observe(
        &mut self,
        id: Id,
        remote_coordinate: Coordinate,
        remote_error_estimate: f64,
        raw_rtt_ms: f64,
    ) -> ObservationOutcome {
        self.observations += 1;

        let filter = self
            .filters
            .entry(id.clone())
            .or_insert_with(|| self.config.filter.build(self.config.warmup_samples));
        let filtered = filter.observe(raw_rtt_ms);
        let link_observations = filter.observations_seen();
        let filtered_estimate = filter.current_estimate();

        // Track the neighbour snapshot regardless of whether the filter let
        // the sample through: the coordinate and error estimate are still
        // fresh information.
        self.neighbors.insert(
            id.clone(),
            NeighborSnapshot {
                coordinate: remote_coordinate.clone(),
                error_estimate: remote_error_estimate,
                filtered_rtt_ms: filtered_estimate,
                observations: link_observations,
            },
        );

        let Some(filtered_rtt) = filtered else {
            return ObservationOutcome {
                filtered_rtt_ms: None,
                relative_error: None,
                application_relative_error: None,
                system_displacement_ms: 0.0,
                application_update: None,
            };
        };

        // Maintain the approximate nearest neighbour (used by RELATIVE).
        let is_nearer = match &self.nearest_neighbor {
            Some((current_id, current_rtt)) => {
                filtered_rtt < *current_rtt || *current_id == id
            }
            None => true,
        };
        if is_nearer {
            self.nearest_neighbor = Some((id.clone(), filtered_rtt));
        }

        // Application-level accuracy is measured against the observation
        // *before* any update, like the system-level error.
        let app_error = nc_vivaldi::relative_error(
            self.application_coordinate().distance(&remote_coordinate),
            filtered_rtt,
        );

        let observation =
            RemoteObservation::new(remote_coordinate, remote_error_estimate, filtered_rtt);
        let previous_system = self.vivaldi.coordinate().clone();
        let outcome = self.vivaldi.observe(&observation);
        if outcome.rejected {
            return ObservationOutcome {
                filtered_rtt_ms: Some(filtered_rtt),
                relative_error: None,
                application_relative_error: None,
                system_displacement_ms: 0.0,
                application_update: None,
            };
        }

        let application_update = if self.follow_system {
            // The application coordinate *is* the system coordinate, so every
            // system-level movement is also an application-level change (this
            // is the "constant update" mode of §V; its instability is what
            // the heuristics are measured against).
            if outcome.displacement_ms > 0.0 {
                Some(ApplicationUpdate {
                    previous: previous_system,
                    current: self.vivaldi.coordinate().clone(),
                    displacement_ms: outcome.displacement_ms,
                })
            } else {
                None
            }
        } else {
            let ctx = UpdateContext {
                nearest_neighbor: self
                    .nearest_neighbor
                    .as_ref()
                    .and_then(|(nid, _)| self.neighbors.get(nid))
                    .map(|snapshot| snapshot.coordinate.clone()),
            };
            self.application
                .on_system_update(self.vivaldi.coordinate(), &ctx)
        };

        ObservationOutcome {
            filtered_rtt_ms: Some(filtered_rtt),
            relative_error: Some(outcome.relative_error),
            application_relative_error: Some(app_error),
            system_displacement_ms: outcome.displacement_ms,
            application_update,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeuristicConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type Node = StableNode<u32>;

    fn converge_pair(config: NodeConfig, rtt: f64, rounds: usize) -> (Node, Node) {
        let mut a = Node::new(config.clone());
        let mut b = Node::new(config);
        for _ in 0..rounds {
            let (bc, be) = (b.system_coordinate().clone(), b.error_estimate());
            a.observe(1, bc, be, rtt);
            let (ac, ae) = (a.system_coordinate().clone(), a.error_estimate());
            b.observe(0, ac, ae, rtt);
        }
        (a, b)
    }

    #[test]
    fn new_node_starts_at_origin() {
        let node = Node::new(NodeConfig::paper_defaults());
        assert_eq!(node.system_coordinate(), &Coordinate::origin(3));
        assert_eq!(node.application_coordinate(), &Coordinate::origin(3));
        assert_eq!(node.observations(), 0);
        assert_eq!(node.confidence(), 0.0);
    }

    #[test]
    fn pair_converges_to_link_latency() {
        let (a, b) = converge_pair(NodeConfig::paper_defaults(), 100.0, 400);
        let estimate = a.estimate_rtt_ms(b.system_coordinate());
        assert!((estimate - 100.0).abs() < 15.0, "estimate {estimate}");
    }

    #[test]
    fn outliers_do_not_move_filtered_node_much() {
        // Two stacks fed the same stream with rare enormous outliers: the
        // MP-filtered node accumulates far less displacement than the raw one.
        let mut rng = StdRng::seed_from_u64(42);
        let stream: Vec<f64> = (0..600)
            .map(|_| {
                if rng.gen_bool(0.02) {
                    5_000.0 + rng.gen_range(0.0..20_000.0)
                } else {
                    80.0 + rng.gen_range(-5.0..5.0)
                }
            })
            .collect();

        let run = |config: NodeConfig| -> f64 {
            let mut node = Node::new(config);
            let remote = Coordinate::new(vec![30.0, 40.0, 0.0]).unwrap();
            // Skip the first 100 samples as start-up.
            for (i, &rtt) in stream.iter().enumerate() {
                node.observe(7, remote.clone(), 0.3, rtt);
                if i == 100 {
                    // reset accounting by remembering? keep simple: measure total
                }
            }
            node.system_displacement_ms()
        };

        let raw = run(NodeConfig::original_vivaldi());
        let filtered = run(NodeConfig::builder().heuristic(HeuristicConfig::FollowSystem).build());
        assert!(
            filtered < raw / 3.0,
            "filtered displacement {filtered:.0} should be well below raw {raw:.0}"
        );
    }

    #[test]
    fn application_updates_are_rarer_than_observations() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = NodeConfig::paper_defaults();
        let mut node = Node::new(config);
        let remote = Coordinate::new(vec![50.0, 10.0, 5.0]).unwrap();
        let mut app_updates = 0;
        for _ in 0..1000 {
            let rtt = 70.0 + rng.gen_range(-8.0..8.0);
            let outcome = node.observe(3, remote.clone(), 0.3, rtt);
            if outcome.application_update.is_some() {
                app_updates += 1;
            }
        }
        assert!(app_updates < 100, "got {app_updates} application updates for 1000 observations");
        assert!(node.application_displacement_ms() <= node.system_displacement_ms());
    }

    #[test]
    fn follow_system_keeps_app_equal_to_system() {
        let config = NodeConfig::builder()
            .heuristic(HeuristicConfig::FollowSystem)
            .build();
        let mut node = Node::new(config);
        let remote = Coordinate::new(vec![20.0, 0.0, 0.0]).unwrap();
        for _ in 0..50 {
            node.observe(1, remote.clone(), 0.5, 40.0);
            assert_eq!(node.application_coordinate(), node.system_coordinate());
        }
        assert_eq!(node.application_displacement_ms(), node.system_displacement_ms());
    }

    #[test]
    fn warmup_suppresses_first_sample() {
        let config = NodeConfig::builder().warmup_samples(2).build();
        let mut node = Node::new(config);
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let first = node.observe(1, remote.clone(), 0.5, 30_000.0);
        assert_eq!(first.filtered_rtt_ms, None);
        assert_eq!(first.system_displacement_ms, 0.0);
        let second = node.observe(1, remote, 0.5, 80.0);
        assert!(second.filtered_rtt_ms.is_some());
    }

    #[test]
    fn neighbors_and_nearest_are_tracked() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let far = Coordinate::new(vec![100.0, 0.0, 0.0]).unwrap();
        let near = Coordinate::new(vec![5.0, 0.0, 0.0]).unwrap();
        node.observe(1, far, 0.5, 150.0);
        node.observe(2, near, 0.5, 10.0);
        assert_eq!(node.neighbors().count(), 2);
        let (nearest, rtt) = node.nearest_neighbor().unwrap();
        assert_eq!(*nearest, 2);
        assert!(rtt <= 10.0);
    }

    #[test]
    fn invalid_observation_changes_nothing() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let outcome = node.observe(1, remote, 0.5, f64::NAN);
        assert_eq!(outcome.filtered_rtt_ms, None);
        assert_eq!(node.system_coordinate(), &Coordinate::origin(3));
    }

    #[test]
    fn debug_output_mentions_coordinates() {
        let node = Node::new(NodeConfig::paper_defaults());
        let s = format!("{node:?}");
        assert!(s.contains("StableNode"));
        assert!(s.contains("system_coordinate"));
    }

    #[test]
    fn application_error_is_reported() {
        let mut node = Node::new(NodeConfig::paper_defaults());
        let remote = Coordinate::new(vec![25.0, 0.0, 0.0]).unwrap();
        let outcome = node.observe(1, remote, 0.5, 50.0);
        let app_err = outcome.application_relative_error.unwrap();
        // App coordinate is at the origin, remote at 25 ms, observation 50 ms:
        // relative error |25 - 50| / 50 = 0.5.
        assert!((app_err - 0.5).abs() < 1e-9);
    }
}
