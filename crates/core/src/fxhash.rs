//! A fast, deterministic hasher for the engine's internal per-peer tables.
//!
//! The std `HashMap` default (SipHash with a random key) is designed to
//! resist hash-flooding from untrusted keys. The engine's tables are keyed
//! by peer identifiers the embedding application already controls, and the
//! per-observation path performs several lookups per probe, so the
//! DoS-hardening tax is pure overhead here. This is the FxHash
//! multiply-rotate scheme used by rustc, reimplemented locally because the
//! build environment is offline (no `rustc-hash` / `fxhash` crates).
//!
//! Determinism is a feature, not just speed: with a fixed hasher, table
//! iteration order — and therefore anything derived from it — is identical
//! across processes and runs, which keeps simulation reports reproducible.

// nc-lint: allow(det-map) — definition site: this import exists to build
// the deterministic alias every other crate is required to use.
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the deterministic [`FxHasher`].
// nc-lint: allow(det-map) — the alias itself; the fixed hasher is what
// makes it deterministic.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc FxHash function: fold each word into the state with a rotate,
/// xor and multiply. Not cryptographic; excellent for small integer-like
/// keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let remainder = chunks.remainder();
        if !remainder.is_empty() {
            let mut word = [0u8; 8];
            word[..remainder.len()].copy_from_slice(remainder);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut map_a: FxHashMap<u64, u32> = FxHashMap::default();
        let mut map_b: FxHashMap<u64, u32> = FxHashMap::default();
        for key in 0..100u64 {
            map_a.insert(key * 7, key as u32);
            map_b.insert(key * 7, key as u32);
        }
        let order_a: Vec<u64> = map_a.keys().copied().collect();
        let order_b: Vec<u64> = map_b.keys().copied().collect();
        assert_eq!(order_a, order_b, "identical inserts iterate identically");
    }

    #[test]
    fn distinct_keys_hash_distinctly() {
        // Smoke check that the function actually disperses nearby keys.
        let hash = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        let hashes: std::collections::HashSet<u64> = (0..10_000).map(hash).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let hash_bytes = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(hash_bytes(b"abcdefgh_x"), hash_bytes(b"abcdefgh_y"));
    }
}
