//! Stable and accurate network coordinates.
//!
//! This crate is the paper's contribution assembled behind one API. A
//! [`StableNode`] is the per-host coordinate subsystem a distributed
//! application embeds:
//!
//! 1. **Per-link moving-percentile filters** (`nc-filters`) turn the raw,
//!    heavy-tailed stream of latency observations of each neighbour into a
//!    clean estimate of the link's underlying latency.
//! 2. **Vivaldi** (`nc-vivaldi`) consumes the filtered estimates and
//!    maintains the node's *system-level* coordinate, which moves a little
//!    with every observation.
//! 3. **An application-update heuristic** (`nc-change`, ENERGY by default)
//!    watches the stream of system-level coordinates and publishes a new
//!    *application-level* coordinate only when a statistically significant
//!    change has occurred, so the embedding application is not disturbed by
//!    coordinate jitter.
//!
//! The defaults reproduce the configuration the paper deploys on PlanetLab
//! (§VI): a 3-dimensional space, `c_c = c_e = 0.25`, an MP filter with a
//! four-observation history returning the 25th percentile, and the ENERGY
//! heuristic with window 32 and threshold 8.
//!
//! # The sans-I/O engine
//!
//! A node is driven entirely through the wire messages of [`nc_proto`]: it
//! schedules probes with [`StableNode::next_probe`], answers incoming
//! probes with [`StableNode::respond`], and digests measured responses with
//! [`StableNode::handle_response`], which reports what happened as typed
//! [`Event`]s. The engine never touches a socket or a clock — the same code
//! runs under the discrete-event simulator, a UDP daemon, or a trace
//! replayer, which is what makes the stack testable and deployable at once.
//! Read-only introspection goes through [`StableNode::view`], which captures
//! the node's complete externally observable state (coordinates, error,
//! neighbour table with filtered RTTs, per-peer metrics) as one [`NodeView`]
//! snapshot.
//!
//! # Quickstart: the request/response loop
//!
//! ```
//! use stable_nc::{Event, NodeConfig, StableNode};
//!
//! let mut a: StableNode<&'static str> = StableNode::new(NodeConfig::paper_defaults());
//! let mut b: StableNode<&'static str> = StableNode::new(NodeConfig::paper_defaults());
//!
//! // Two nodes measuring each other at ~80 ms with occasional huge outliers.
//! let mut app_updates = 0;
//! for round in 0..400u64 {
//!     let rtt = if round % 50 == 7 { 2_500.0 } else { 80.0 };
//!
//!     // a probes b: build the request, let b answer it, stamp the
//!     // measured round trip in, digest the events.
//!     let request = a.probe_request_for("b", round);
//!     let mut response = b.respond(&request);
//!     response.rtt_ms = rtt;
//!     for event in a.handle_response(&response) {
//!         if matches!(event, Event::ApplicationUpdated { .. }) {
//!             app_updates += 1;
//!         }
//!     }
//!
//!     // ... and b probes a.
//!     let request = b.probe_request_for("a", round);
//!     let mut response = a.respond(&request);
//!     response.rtt_ms = rtt;
//!     b.handle_response(&response);
//! }
//!
//! let estimate = a.estimate_rtt_ms(b.system_coordinate());
//! assert!((estimate - 80.0).abs() < 15.0, "estimated {estimate:.1} ms");
//! // The outliers moved the system coordinate a little but the application
//! // saw only a handful of updates.
//! assert!(app_updates < 40, "published {app_updates} application updates");
//! ```
//!
//! # Snapshot and restore
//!
//! [`StableNode::snapshot`] captures the complete runtime state — Vivaldi
//! state, per-link filter windows, heuristic windows, neighbour table and
//! probe schedule — as a serializable [`NodeSnapshot`];
//! [`StableNode::restore`] revives it under the same configuration and the
//! node continues the exact same trajectory:
//!
//! ```
//! use nc_proto::WireMessage;
//! use stable_nc::{NodeConfig, ProbeResponse, StableNode};
//!
//! let mut node: StableNode<u32> = StableNode::new(NodeConfig::paper_defaults());
//! let remote = stable_nc::Coordinate::new(vec![20.0, 30.0, 0.0]).unwrap();
//! for i in 0..64u64 {
//!     let request = node.probe_request_for(1, i);
//!     let mut response = ProbeResponse::new(1, &request, remote.clone(), 0.5);
//!     response.rtt_ms = 42.0 + (i % 3) as f64;
//!     node.handle_response(&response);
//! }
//!
//! let persisted = node.snapshot().encode(); // JSON, version-tagged
//! let snapshot = stable_nc::NodeSnapshot::<u32>::decode(&persisted).unwrap();
//! let restored = StableNode::restore(NodeConfig::paper_defaults(), &snapshot).unwrap();
//! assert_eq!(restored.system_coordinate(), node.system_coordinate());
//! assert_eq!(restored.view(), node.view());
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod config;
pub mod fxhash;
pub mod node;

pub use config::{FilterConfig, HeuristicConfig, NodeConfig, NodeConfigBuilder, NodeConfigError};
pub use fxhash::FxHashMap;
pub use node::{NodeView, PeerView, RestoreError, StableNode};

// Re-export the building blocks so downstream users need only one dependency.
pub use nc_change::{ApplicationUpdate, HeuristicKind};
pub use nc_filters::FilterKind;
pub use nc_proto::{
    Event, GossipEntry, NodeSnapshot, ProbeRequest, ProbeResponse, WireError, WireMessage,
    PROTOCOL_VERSION,
};
pub use nc_vivaldi::{Coordinate, OutlierGateConfig, VivaldiConfig};
