//! Stable and accurate network coordinates.
//!
//! This crate is the paper's contribution assembled behind one API. A
//! [`StableNode`] is the per-host coordinate subsystem a distributed
//! application embeds:
//!
//! 1. **Per-link moving-percentile filters** (`nc-filters`) turn the raw,
//!    heavy-tailed stream of latency observations of each neighbour into a
//!    clean estimate of the link's underlying latency.
//! 2. **Vivaldi** (`nc-vivaldi`) consumes the filtered estimates and
//!    maintains the node's *system-level* coordinate, which moves a little
//!    with every observation.
//! 3. **An application-update heuristic** (`nc-change`, ENERGY by default)
//!    watches the stream of system-level coordinates and publishes a new
//!    *application-level* coordinate only when a statistically significant
//!    change has occurred, so the embedding application is not disturbed by
//!    coordinate jitter.
//!
//! The defaults reproduce the configuration the paper deploys on PlanetLab
//! (§VI): a 3-dimensional space, `c_c = c_e = 0.25`, an MP filter with a
//! four-observation history returning the 25th percentile, and the ENERGY
//! heuristic with window 32 and threshold 8.
//!
//! # Quickstart
//!
//! ```
//! use stable_nc::{NodeConfig, StableNode};
//!
//! // Two nodes measuring each other at ~80 ms with occasional huge outliers.
//! let mut a: StableNode<&'static str> = StableNode::new(NodeConfig::paper_defaults());
//! let mut b: StableNode<&'static str> = StableNode::new(NodeConfig::paper_defaults());
//!
//! for round in 0..400 {
//!     let rtt = if round % 50 == 7 { 2_500.0 } else { 80.0 };
//!     a.observe("b", b.system_coordinate().clone(), b.error_estimate(), rtt);
//!     b.observe("a", a.system_coordinate().clone(), a.error_estimate(), rtt);
//! }
//!
//! let estimate = a.estimate_rtt_ms(b.system_coordinate());
//! assert!((estimate - 80.0).abs() < 15.0, "estimated {estimate:.1} ms");
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod node;

pub use config::{FilterConfig, HeuristicConfig, NodeConfig, NodeConfigBuilder};
pub use node::{NeighborSnapshot, ObservationOutcome, StableNode};

// Re-export the building blocks so downstream users need only one dependency.
pub use nc_change::{ApplicationUpdate, HeuristicKind};
pub use nc_filters::FilterKind;
pub use nc_vivaldi::{Coordinate, VivaldiConfig};
