//! Configuration of a [`crate::StableNode`].

use nc_change::{
    ApplicationHeuristic, CentroidHeuristic, EnergyHeuristic, HeuristicKind, RelativeHeuristic,
    SystemHeuristic, UpdateHeuristic,
};
use nc_filters::{
    EwmaFilter, LatencyFilter, MovingMedianFilter, MovingPercentileFilter, RawFilter,
    ThresholdFilter, WarmupFilter,
};
use nc_vivaldi::{OutlierGateConfig, VivaldiConfig};
use serde::{Deserialize, Serialize};

/// Typed error from validating a [`NodeConfig`] (or one of its parts).
///
/// This is the shared validation idiom of the workspace's config surfaces:
/// `NodeConfig::validate`, `SimConfig::validate` (`nc-netsim`),
/// `LinkModelConfig::validate` and `QueryConfig::validate` (`nc-query`) all
/// return a typed error instead of panicking, so drivers can surface bad
/// deployment input without unwinding.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeConfigError {
    /// A moving-percentile or moving-median history of zero samples.
    EmptyFilterHistory,
    /// A percentile outside the `[0, 100]` range (or not finite).
    PercentileOutOfRange(f64),
    /// An EWMA smoothing factor outside `(0, 1]` (or not finite).
    AlphaOutOfRange(f64),
    /// A non-positive or non-finite threshold cut-off (ms).
    NonPositiveCutoff(f64),
    /// A non-positive or non-finite heuristic threshold.
    NonPositiveThreshold(f64),
    /// A windowed heuristic with fewer than two samples per window.
    WindowTooSmall(usize),
    /// An eviction limit of zero consecutive losses (a peer would be
    /// evicted before its first probe could even be answered).
    ZeroLossLimit,
}

impl std::fmt::Display for NodeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeConfigError::EmptyFilterHistory => {
                write!(f, "filter history must hold at least one sample")
            }
            NodeConfigError::PercentileOutOfRange(p) => {
                write!(f, "percentile must be in [0, 100], got {p}")
            }
            NodeConfigError::AlphaOutOfRange(a) => {
                write!(f, "EWMA alpha must be in (0, 1], got {a}")
            }
            NodeConfigError::NonPositiveCutoff(c) => {
                write!(f, "threshold cutoff must be positive and finite, got {c}")
            }
            NodeConfigError::NonPositiveThreshold(t) => {
                write!(
                    f,
                    "heuristic threshold must be positive and finite, got {t}"
                )
            }
            NodeConfigError::WindowTooSmall(w) => {
                write!(f, "heuristic windows need at least 2 samples, got {w}")
            }
            NodeConfigError::ZeroLossLimit => {
                write!(f, "max consecutive losses must be at least 1")
            }
        }
    }
}

impl std::error::Error for NodeConfigError {}

/// Which per-link filter a node applies to raw latency observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterConfig {
    /// No filtering: raw observations go straight into Vivaldi (the paper's
    /// "No Filter" baseline).
    Raw,
    /// Moving-percentile filter with history `h` and percentile `p`
    /// (`h = 4`, `p = 25` in the paper).
    MovingPercentile {
        /// Number of recent observations kept per link.
        history: usize,
        /// Percentile (0–100) of the window returned as the estimate.
        percentile: f64,
    },
    /// Moving-median filter with history `h`.
    MovingMedian {
        /// Number of recent observations kept per link.
        history: usize,
    },
    /// Exponentially-weighted moving average with smoothing factor `alpha`.
    Ewma {
        /// Weight of the newest observation, in `(0, 1]`.
        alpha: f64,
    },
    /// Fixed threshold: observations above `cutoff_ms` are discarded.
    Threshold {
        /// Discard cut-off in milliseconds.
        cutoff_ms: f64,
    },
}

impl FilterConfig {
    /// The paper's recommended filter: MP with `h = 4`, `p = 25`.
    pub fn paper_mp() -> Self {
        FilterConfig::MovingPercentile {
            history: 4,
            percentile: 25.0,
        }
    }

    /// The filter family, for reporting.
    pub fn kind(&self) -> nc_filters::FilterKind {
        match self {
            FilterConfig::Raw => nc_filters::FilterKind::Raw,
            FilterConfig::MovingPercentile { .. } => nc_filters::FilterKind::MovingPercentile,
            FilterConfig::MovingMedian { .. } => nc_filters::FilterKind::MovingMedian,
            FilterConfig::Ewma { .. } => nc_filters::FilterKind::Ewma,
            FilterConfig::Threshold { .. } => nc_filters::FilterKind::Threshold,
        }
    }

    /// Checks the filter parameters and returns the config unchanged when
    /// they are buildable.
    ///
    /// # Errors
    ///
    /// Returns the first [`NodeConfigError`] found: a zero history, a
    /// percentile outside `[0, 100]`, an alpha outside `(0, 1]`, or a
    /// non-positive threshold cut-off.
    pub fn validate(self) -> Result<Self, NodeConfigError> {
        match &self {
            FilterConfig::Raw => {}
            FilterConfig::MovingPercentile {
                history,
                percentile,
            } => {
                if *history == 0 {
                    return Err(NodeConfigError::EmptyFilterHistory);
                }
                if !percentile.is_finite() || !(0.0..=100.0).contains(percentile) {
                    return Err(NodeConfigError::PercentileOutOfRange(*percentile));
                }
            }
            FilterConfig::MovingMedian { history } => {
                if *history == 0 {
                    return Err(NodeConfigError::EmptyFilterHistory);
                }
            }
            FilterConfig::Ewma { alpha } => {
                if !alpha.is_finite() || *alpha <= 0.0 || *alpha > 1.0 {
                    return Err(NodeConfigError::AlphaOutOfRange(*alpha));
                }
            }
            FilterConfig::Threshold { cutoff_ms } => {
                if !cutoff_ms.is_finite() || *cutoff_ms <= 0.0 {
                    return Err(NodeConfigError::NonPositiveCutoff(*cutoff_ms));
                }
            }
        }
        Ok(self)
    }

    /// Builds one filter instance for a newly discovered link.
    ///
    /// # Panics
    ///
    /// Panics when the configuration holds invalid parameters — exactly the
    /// ones [`FilterConfig::validate`] reports as typed errors.
    /// Configurations built through the public constructors are always
    /// valid.
    pub(crate) fn build(&self, warmup_samples: u64) -> Box<dyn LatencyFilter + Send> {
        let inner: Box<dyn LatencyFilter + Send> = match self {
            FilterConfig::Raw => Box::new(RawFilter::new()),
            FilterConfig::MovingPercentile {
                history,
                percentile,
            } => Box::new(
                MovingPercentileFilter::new(*history, *percentile)
                    .expect("invalid moving-percentile parameters"),
            ),
            FilterConfig::MovingMedian { history } => {
                Box::new(MovingMedianFilter::new(*history).expect("invalid median history"))
            }
            FilterConfig::Ewma { alpha } => {
                Box::new(EwmaFilter::new(*alpha).expect("invalid EWMA alpha"))
            }
            FilterConfig::Threshold { cutoff_ms } => {
                Box::new(ThresholdFilter::new(*cutoff_ms).expect("invalid threshold cutoff"))
            }
        };
        if warmup_samples > 1 {
            Box::new(WarmupFilter::new(BoxedFilter(inner), warmup_samples))
        } else {
            inner
        }
    }
}

/// Adapter so a boxed filter can be wrapped by [`WarmupFilter`], which is
/// generic over its inner filter.
struct BoxedFilter(Box<dyn LatencyFilter + Send>);

impl LatencyFilter for BoxedFilter {
    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64> {
        self.0.observe(raw_rtt_ms)
    }
    fn current_estimate(&self) -> Option<f64> {
        self.0.current_estimate()
    }
    fn observations_seen(&self) -> u64 {
        self.0.observations_seen()
    }
    fn reset(&mut self) {
        self.0.reset()
    }
    fn export_state(&self) -> nc_filters::FilterState {
        self.0.export_state()
    }
    fn import_state(
        &mut self,
        state: &nc_filters::FilterState,
    ) -> Result<(), nc_filters::StateMismatch> {
        self.0.import_state(state)
    }
}

/// Which application-update heuristic a node runs on top of its system-level
/// coordinate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HeuristicConfig {
    /// Publish every system-level update unchanged — the application sees the
    /// raw (filtered) coordinate stream. This is the "Raw MP Filter"
    /// configuration of Figures 11 and 13.
    FollowSystem,
    /// SYSTEM heuristic with step threshold `τ` (ms).
    System {
        /// Step threshold in milliseconds.
        threshold_ms: f64,
    },
    /// APPLICATION heuristic with drift threshold `τ` (ms).
    Application {
        /// Drift threshold in milliseconds.
        threshold_ms: f64,
    },
    /// RELATIVE heuristic with relative threshold `ε_r` and window size.
    Relative {
        /// Relative movement threshold.
        threshold: f64,
        /// Per-window size.
        window: usize,
    },
    /// ENERGY heuristic with energy threshold `τ` and window size.
    Energy {
        /// Energy-distance threshold.
        threshold: f64,
        /// Per-window size.
        window: usize,
    },
    /// APPLICATION/CENTROID ablation with drift threshold `τ` (ms) and
    /// window size.
    ApplicationCentroid {
        /// Drift threshold in milliseconds.
        threshold_ms: f64,
        /// Sliding window size for the centroid target.
        window: usize,
    },
}

impl HeuristicConfig {
    /// The deployment configuration of §VI: ENERGY with window 32, τ = 8.
    pub fn paper_energy() -> Self {
        HeuristicConfig::Energy {
            threshold: 8.0,
            window: 32,
        }
    }

    /// The RELATIVE configuration of §V-D: ε_r = 0.3, window 32.
    pub fn paper_relative() -> Self {
        HeuristicConfig::Relative {
            threshold: 0.3,
            window: 32,
        }
    }

    /// The heuristic family, or `None` for [`HeuristicConfig::FollowSystem`].
    pub fn kind(&self) -> Option<HeuristicKind> {
        match self {
            HeuristicConfig::FollowSystem => None,
            HeuristicConfig::System { .. } => Some(HeuristicKind::System),
            HeuristicConfig::Application { .. } => Some(HeuristicKind::Application),
            HeuristicConfig::Relative { .. } => Some(HeuristicKind::Relative),
            HeuristicConfig::Energy { .. } => Some(HeuristicKind::Energy),
            HeuristicConfig::ApplicationCentroid { .. } => Some(HeuristicKind::ApplicationCentroid),
        }
    }

    /// Checks the heuristic parameters and returns the config unchanged
    /// when they are buildable.
    ///
    /// # Errors
    ///
    /// Returns the first [`NodeConfigError`] found: a non-positive
    /// threshold, or a window smaller than two samples.
    pub fn validate(self) -> Result<Self, NodeConfigError> {
        let check_threshold = |t: f64| {
            if !t.is_finite() || t <= 0.0 {
                Err(NodeConfigError::NonPositiveThreshold(t))
            } else {
                Ok(())
            }
        };
        match &self {
            HeuristicConfig::FollowSystem => {}
            HeuristicConfig::System { threshold_ms }
            | HeuristicConfig::Application { threshold_ms } => check_threshold(*threshold_ms)?,
            HeuristicConfig::Relative { threshold, window }
            | HeuristicConfig::Energy { threshold, window } => {
                check_threshold(*threshold)?;
                if *window < 2 {
                    return Err(NodeConfigError::WindowTooSmall(*window));
                }
            }
            HeuristicConfig::ApplicationCentroid {
                threshold_ms,
                window,
            } => {
                check_threshold(*threshold_ms)?;
                if *window < 2 {
                    return Err(NodeConfigError::WindowTooSmall(*window));
                }
            }
        }
        Ok(self)
    }

    /// Builds the heuristic, or `None` for the follow-system configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters — exactly the ones
    /// [`HeuristicConfig::validate`] reports as typed errors; configurations
    /// from the provided constructors are always valid.
    pub(crate) fn build(&self) -> Option<Box<dyn UpdateHeuristic + Send>> {
        match self {
            HeuristicConfig::FollowSystem => None,
            HeuristicConfig::System { threshold_ms } => {
                Some(Box::new(SystemHeuristic::new(*threshold_ms)))
            }
            HeuristicConfig::Application { threshold_ms } => {
                Some(Box::new(ApplicationHeuristic::new(*threshold_ms)))
            }
            HeuristicConfig::Relative { threshold, window } => {
                Some(Box::new(RelativeHeuristic::new(*threshold, *window)))
            }
            HeuristicConfig::Energy { threshold, window } => {
                Some(Box::new(EnergyHeuristic::new(*threshold, *window)))
            }
            HeuristicConfig::ApplicationCentroid {
                threshold_ms,
                window,
            } => Some(Box::new(CentroidHeuristic::new(*threshold_ms, *window))),
        }
    }
}

/// Full configuration of a [`crate::StableNode`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Vivaldi algorithm parameters.
    pub vivaldi: VivaldiConfig,
    /// Per-link filter applied to raw observations.
    pub filter: FilterConfig,
    /// Application-level update heuristic.
    pub heuristic: HeuristicConfig,
    /// Number of samples a link must deliver before the filter output is used
    /// (§VI warm-up fix). `0` or `1` disables the warm-up.
    pub warmup_samples: u64,
    /// When set, a peer whose last `n` probes all went unanswered is evicted
    /// from the neighbour table and the probe schedule (the engine emits
    /// `Event::NeighborEvicted`). `None` keeps unresponsive peers forever —
    /// the paper's deployments never pruned membership, so that remains the
    /// default.
    pub max_consecutive_losses: Option<u32>,
    /// When set, a MAD-based outlier gate sits between the per-link filter
    /// and the Vivaldi update: observations whose filtered RTT is wildly
    /// inconsistent with the coordinate-predicted distance are rejected
    /// (surfaced as `Event::ObservationRejected`), their piggybacked gossip
    /// is dropped with them, and remote error estimates are floored so a
    /// liar cannot claim perfect confidence. `None` — the default, and the
    /// paper's behaviour — runs every filtered observation straight into
    /// Vivaldi.
    pub outlier_gate: Option<OutlierGateConfig>,
}

impl NodeConfig {
    /// The full paper configuration: 3-D Vivaldi with `c_c = c_e = 0.25`, MP
    /// filter `h = 4` / `p = 25`, ENERGY heuristic (window 32, τ = 8), no
    /// warm-up (the paper measures the warm-up fix separately).
    pub fn paper_defaults() -> Self {
        NodeConfig {
            vivaldi: VivaldiConfig::paper_defaults(),
            filter: FilterConfig::paper_mp(),
            heuristic: HeuristicConfig::paper_energy(),
            warmup_samples: 0,
            max_consecutive_losses: None,
            outlier_gate: None,
        }
    }

    /// The original, unmodified Vivaldi: raw observations, application
    /// coordinate follows the system coordinate. This is the baseline every
    /// figure compares against.
    pub fn original_vivaldi() -> Self {
        NodeConfig {
            vivaldi: VivaldiConfig::paper_defaults(),
            filter: FilterConfig::Raw,
            heuristic: HeuristicConfig::FollowSystem,
            warmup_samples: 0,
            max_consecutive_losses: None,
            outlier_gate: None,
        }
    }

    /// Starts a builder from the paper defaults.
    pub fn builder() -> NodeConfigBuilder {
        NodeConfigBuilder {
            config: Self::paper_defaults(),
        }
    }

    /// Checks every invariant of the configuration and returns it unchanged
    /// when a [`crate::StableNode`] can be built from it.
    ///
    /// # Errors
    ///
    /// Returns the first [`NodeConfigError`] found in the filter, the
    /// heuristic, or the eviction limit.
    pub fn validate(self) -> Result<Self, NodeConfigError> {
        self.filter.clone().validate()?;
        self.heuristic.clone().validate()?;
        if self.max_consecutive_losses == Some(0) {
            return Err(NodeConfigError::ZeroLossLimit);
        }
        Ok(self)
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Builder for [`NodeConfig`].
///
/// # Examples
///
/// ```
/// use stable_nc::{FilterConfig, HeuristicConfig, NodeConfig};
///
/// let config = NodeConfig::builder()
///     .filter(FilterConfig::MovingPercentile { history: 8, percentile: 50.0 })
///     .heuristic(HeuristicConfig::paper_relative())
///     .warmup_samples(2)
///     .build();
/// assert_eq!(config.warmup_samples, 2);
/// ```
#[derive(Debug, Clone)]
pub struct NodeConfigBuilder {
    config: NodeConfig,
}

impl NodeConfigBuilder {
    /// Sets the Vivaldi parameters.
    pub fn vivaldi(mut self, vivaldi: VivaldiConfig) -> Self {
        self.config.vivaldi = vivaldi;
        self
    }

    /// Sets the per-link filter.
    pub fn filter(mut self, filter: FilterConfig) -> Self {
        self.config.filter = filter;
        self
    }

    /// Sets the application-update heuristic.
    pub fn heuristic(mut self, heuristic: HeuristicConfig) -> Self {
        self.config.heuristic = heuristic;
        self
    }

    /// Sets the per-link warm-up sample count.
    pub fn warmup_samples(mut self, samples: u64) -> Self {
        self.config.warmup_samples = samples;
        self
    }

    /// Enables eviction of peers whose last `losses` probes all expired
    /// unanswered. A limit of zero is stored as given and reported by
    /// [`NodeConfig::validate`] / [`NodeConfigBuilder::try_build`] as
    /// [`NodeConfigError::ZeroLossLimit`] (setters never panic and never
    /// silently correct their input).
    pub fn max_consecutive_losses(mut self, losses: u32) -> Self {
        self.config.max_consecutive_losses = Some(losses);
        self
    }

    /// Enables the MAD-based outlier gate between the per-link filter and
    /// the Vivaldi update (see [`OutlierGateConfig`]).
    pub fn outlier_gate(mut self, gate: OutlierGateConfig) -> Self {
        self.config.outlier_gate = Some(gate);
        self
    }

    /// Finishes the builder, checking every invariant.
    ///
    /// # Errors
    ///
    /// Returns the first [`NodeConfigError`] that
    /// [`NodeConfig::validate`] finds.
    pub fn try_build(self) -> Result<NodeConfig, NodeConfigError> {
        self.config.validate()
    }

    /// Finishes the builder without validation.
    ///
    /// Deprecation note: prefer [`try_build`](NodeConfigBuilder::try_build),
    /// which applies [`NodeConfig::validate`] and reports bad parameters as
    /// a typed [`NodeConfigError`] instead of deferring the failure to a
    /// panic inside [`crate::StableNode::new`]. `build` is kept for the
    /// common case of hard-coded, known-good configurations.
    pub fn build(self) -> NodeConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_compose_the_deployment_stack() {
        let c = NodeConfig::paper_defaults();
        assert_eq!(c.filter, FilterConfig::paper_mp());
        assert_eq!(c.heuristic, HeuristicConfig::paper_energy());
        assert_eq!(c.vivaldi.dimensions(), 3);
        assert_eq!(c.warmup_samples, 0);
    }

    #[test]
    fn original_vivaldi_is_unfiltered_and_follows_system() {
        let c = NodeConfig::original_vivaldi();
        assert_eq!(c.filter, FilterConfig::Raw);
        assert_eq!(c.heuristic, HeuristicConfig::FollowSystem);
        assert!(c.heuristic.kind().is_none());
    }

    #[test]
    fn builder_overrides_fields() {
        let c = NodeConfig::builder()
            .filter(FilterConfig::Ewma { alpha: 0.1 })
            .heuristic(HeuristicConfig::Application { threshold_ms: 16.0 })
            .warmup_samples(2)
            .vivaldi(VivaldiConfig::paper_defaults().with_dimensions(2))
            .build();
        assert_eq!(c.filter.kind(), nc_filters::FilterKind::Ewma);
        assert_eq!(c.heuristic.kind(), Some(HeuristicKind::Application));
        assert_eq!(c.warmup_samples, 2);
        assert_eq!(c.vivaldi.dimensions(), 2);
    }

    #[test]
    fn outlier_gate_is_off_everywhere_by_default() {
        assert!(NodeConfig::paper_defaults().outlier_gate.is_none());
        assert!(NodeConfig::original_vivaldi().outlier_gate.is_none());
        assert!(NodeConfig::default().outlier_gate.is_none());
        let gated = NodeConfig::builder()
            .outlier_gate(OutlierGateConfig::default())
            .build();
        assert_eq!(gated.outlier_gate, Some(OutlierGateConfig::default()));
    }

    #[test]
    fn validate_accepts_every_shipped_configuration() {
        for config in [
            NodeConfig::paper_defaults(),
            NodeConfig::original_vivaldi(),
            NodeConfig::builder()
                .filter(FilterConfig::Ewma { alpha: 0.1 })
                .heuristic(HeuristicConfig::paper_relative())
                .max_consecutive_losses(3)
                .build(),
        ] {
            assert!(config.clone().validate().is_ok(), "{config:?}");
        }
    }

    #[test]
    fn try_build_reports_typed_errors_instead_of_panicking() {
        let err = NodeConfig::builder()
            .filter(FilterConfig::MovingPercentile {
                history: 0,
                percentile: 25.0,
            })
            .try_build()
            .unwrap_err();
        assert_eq!(err, NodeConfigError::EmptyFilterHistory);

        let err = NodeConfig::builder()
            .filter(FilterConfig::Ewma { alpha: 1.5 })
            .try_build()
            .unwrap_err();
        assert_eq!(err, NodeConfigError::AlphaOutOfRange(1.5));

        let err = NodeConfig::builder()
            .heuristic(HeuristicConfig::Energy {
                threshold: -1.0,
                window: 32,
            })
            .try_build()
            .unwrap_err();
        assert_eq!(err, NodeConfigError::NonPositiveThreshold(-1.0));

        let err = NodeConfig::builder()
            .heuristic(HeuristicConfig::Relative {
                threshold: 0.3,
                window: 1,
            })
            .try_build()
            .unwrap_err();
        assert_eq!(err, NodeConfigError::WindowTooSmall(1));

        let err = NodeConfig::builder()
            .max_consecutive_losses(0)
            .try_build()
            .unwrap_err();
        assert_eq!(err, NodeConfigError::ZeroLossLimit);
        // Errors render as prose for operator-facing logs.
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn filter_config_builds_working_filters() {
        for config in [
            FilterConfig::Raw,
            FilterConfig::paper_mp(),
            FilterConfig::MovingMedian { history: 4 },
            FilterConfig::Ewma { alpha: 0.2 },
            FilterConfig::Threshold { cutoff_ms: 500.0 },
        ] {
            let mut f = config.build(0);
            f.observe(42.0);
            assert_eq!(f.observations_seen(), 1, "{config:?}");
        }
    }

    #[test]
    fn warmup_wrapping_delays_output() {
        let mut f = FilterConfig::paper_mp().build(3);
        assert_eq!(f.observe(100.0), None);
        assert_eq!(f.observe(100.0), None);
        assert!(f.observe(100.0).is_some());
    }

    #[test]
    fn heuristic_config_builds_every_kind() {
        let configs = [
            HeuristicConfig::System { threshold_ms: 16.0 },
            HeuristicConfig::Application { threshold_ms: 16.0 },
            HeuristicConfig::paper_relative(),
            HeuristicConfig::paper_energy(),
            HeuristicConfig::ApplicationCentroid {
                threshold_ms: 16.0,
                window: 32,
            },
        ];
        for config in configs {
            let built = config
                .build()
                .expect("non-follow configs build a heuristic");
            assert_eq!(Some(built.kind()), config.kind());
        }
        assert!(HeuristicConfig::FollowSystem.build().is_none());
    }
}
