//! Counting-allocator proof of the allocation-free observation path.
//!
//! The acceptance criterion for the hot-path work is *zero heap allocations
//! per steady-state observation*: once a link's filter exists, its window is
//! full, the peer is registered and the reusable buffers have grown to their
//! working size, digesting one more observation must not touch the
//! allocator. A counting `GlobalAlloc` wrapper makes that an assertion
//! instead of a benchmark eyeball: the counter is thread-local, so the other
//! tests in this binary (and the harness itself) cannot pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use stable_nc::{Event, NodeConfig, ProbeResponse, StableNode};

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the only addition is a
// thread-local counter bump, which itself never allocates (const-initialised
// TLS slot).
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: the counter bump cannot allocate or unwind; allocation itself
    // is `System`'s, under the caller's (valid) layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        // SAFETY: `layout` is the caller's obligation, forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: pure delegation; `ptr`/`layout` validity is the caller's
    // obligation, forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: see the function-level note.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: the counter bump cannot allocate or unwind; reallocation
    // itself is `System`'s, under the caller's (valid) pointer and layout.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        // SAFETY: `ptr`/`layout`/`new_size` are the caller's obligation,
        // forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `body` and returns how many heap allocations it performed on this
/// thread.
fn allocations_during<R>(body: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(Cell::get);
    let result = body();
    let after = ALLOCATIONS.with(Cell::get);
    (after - before, result)
}

#[test]
fn steady_state_response_digest_performs_zero_allocations() {
    // The prober-side half of the loop in isolation: one response message is
    // built up front and re-stamped per step, so the only code under the
    // counter is `probe_request_for` plus the full observation pipeline
    // behind `handle_response_into` (filter, gate, Vivaldi, heuristic).
    let mut node: StableNode<usize> = StableNode::new(NodeConfig::paper_defaults());
    let remote = nc_vivaldi::Coordinate::new(vec![30.0, 40.0, 10.0]).unwrap();
    let mut events: Vec<Event<usize>> = Vec::with_capacity(32);

    let request = node.probe_request_for(7, 0);
    let mut response = ProbeResponse::new(7, &request, remote, 0.4);

    // Warm up: register the peer, fill the filter window, fill both ENERGY
    // windows (32 each) and let every table and scratch buffer reach its
    // working size.
    for step in 0..512u64 {
        let request = node.probe_request_for(7, step);
        response.seq = request.seq;
        response.rtt_ms = 60.0 + (step % 9) as f64;
        events.clear();
        node.handle_response_into(&response, &mut events);
    }

    let (allocations, _) = allocations_during(|| {
        for step in 512..1_512u64 {
            let request = node.probe_request_for(7, step);
            response.seq = request.seq;
            response.rtt_ms = 60.0 + (step % 9) as f64;
            events.clear();
            node.handle_response_into(&response, &mut events);
            std::hint::black_box(&events);
        }
    });
    assert_eq!(
        allocations, 0,
        "steady-state response digestion must not allocate"
    );
}

#[test]
fn steady_state_vivaldi_update_performs_zero_allocations() {
    let mut state = nc_vivaldi::VivaldiState::new(nc_vivaldi::VivaldiConfig::paper_defaults());
    let remote = nc_vivaldi::Coordinate::new(vec![12.0, -9.0, 4.0]).unwrap();
    for _ in 0..64 {
        state.observe(&nc_vivaldi::RemoteObservation::new(
            remote.clone(),
            0.4,
            55.0,
        ));
    }
    let (allocations, _) = allocations_during(|| {
        for step in 0..1_000u64 {
            let observation =
                nc_vivaldi::RemoteObservation::new(remote.clone(), 0.4, 55.0 + (step % 13) as f64);
            std::hint::black_box(state.observe(&observation));
        }
    });
    assert_eq!(
        allocations, 0,
        "the Vivaldi spring update must run entirely on the stack"
    );
}

#[test]
fn steady_state_filter_observe_performs_zero_allocations() {
    use nc_filters::LatencyFilter;
    let mut filter = nc_filters::MovingPercentileFilter::new(128, 25.0).unwrap();
    for step in 0..256u64 {
        filter.observe(80.0 + (step % 17) as f64);
    }
    let (allocations, _) = allocations_during(|| {
        for step in 0..1_000u64 {
            std::hint::black_box(filter.observe(80.0 + (step % 17) as f64));
        }
    });
    assert_eq!(
        allocations, 0,
        "a full moving-percentile window must update without allocating"
    );
}

#[test]
fn steady_state_expire_pending_performs_zero_allocations() {
    // The transport's timer wheel calls `expire_pending_into` every few
    // milliseconds; almost every call finds nothing due. Neither the empty
    // scan nor an actual expiry (with warmed buffers and an existing streak
    // entry) may touch the allocator.
    let mut node: StableNode<usize> = StableNode::new(NodeConfig::paper_defaults());
    let mut events: Vec<Event<usize>> = Vec::with_capacity(32);

    // Warm up: register the peer, create its loss-streak entry via one real
    // timeout, and let the pending table reach its working size.
    for step in 0..16u64 {
        let request = node.probe_request_for(7, step);
        node.handle_timeout_into(request.seq, &mut events);
    }
    events.clear();
    for step in 0..4u64 {
        node.probe_request_for(7, 1_000 + step);
    }

    let (allocations, _) = allocations_during(|| {
        // The common case: nothing is due.
        for tick in 0..1_000u64 {
            node.expire_pending_into(1_500 + tick, 10_000, &mut events);
            std::hint::black_box(&events);
        }
        assert!(events.is_empty());
        // An actual expiry sweep over the warmed table.
        node.expire_pending_into(1_000_000, 1_000, &mut events);
        std::hint::black_box(&events);
    });
    assert_eq!(events.len(), 4, "all four pending probes expired");
    assert_eq!(
        allocations, 0,
        "steady-state expire_pending_into must not allocate"
    );
}

#[test]
fn steady_state_wire_exchange_performs_zero_allocations() {
    // The driver-facing form the simulator uses: probe → respond_into →
    // handle_response_into with reused buffers end to end.
    let mut prober: StableNode<usize> = StableNode::new(NodeConfig::paper_defaults());
    let mut responder: StableNode<usize> = StableNode::new(NodeConfig::paper_defaults());
    let mut events: Vec<Event<usize>> = Vec::new();

    // Prime one exchange to build the reusable response message.
    let request = prober.probe_request_for(1, 0);
    let mut response: ProbeResponse<usize> = responder.respond(&request);
    response.rtt_ms = 60.0;
    prober.handle_response_into(&response, &mut events);

    // Warm the rest of the stacks (filter windows, heuristic windows).
    for step in 1..512u64 {
        let request = prober.probe_request_for(1, step);
        responder.respond_into(&request, &mut response);
        response.rtt_ms = 60.0 + (step % 9) as f64;
        events.clear();
        prober.handle_response_into(&response, &mut events);
    }

    let (allocations, _) = allocations_during(|| {
        for step in 512..1_512u64 {
            let request = prober.probe_request_for(1, step);
            responder.respond_into(&request, &mut response);
            response.rtt_ms = 60.0 + (step % 9) as f64;
            events.clear();
            prober.handle_response_into(&response, &mut events);
            std::hint::black_box(&events);
        }
    });
    assert_eq!(
        allocations, 0,
        "a steady-state wire exchange with reused buffers must not allocate"
    );
}
