//! The moving-percentile (MP) filter — the paper's core filtering
//! contribution (§IV).
//!
//! A Moving Percentile filter keeps a sliding window of the last `h` raw
//! observations of a link and outputs their `p`-th percentile as the latency
//! estimate. It is a non-linear low-pass filter: impulses in the heavy tail
//! are removed entirely (rather than averaged in, as an EWMA would), while a
//! genuine shift in the underlying latency propagates to the output within
//! `h` observations. The paper's parameter study (Figure 4) found `h = 4`
//! and `p = 25` — i.e. the minimum of the last four samples — to predict the
//! next observation best.

use std::collections::VecDeque;

use nc_stats::percentile::percentile_of_sorted;

use crate::{FilterState, LatencyFilter, StateMismatch};

/// Error constructing a filter with invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidFilterParameter(pub(crate) &'static str);

impl std::fmt::Display for InvalidFilterParameter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid filter parameter: {}", self.0)
    }
}

impl std::error::Error for InvalidFilterParameter {}

/// Moving-percentile filter over a per-link observation window.
///
/// # Examples
///
/// ```
/// use nc_filters::{LatencyFilter, MovingPercentileFilter};
///
/// let mut f = MovingPercentileFilter::new(4, 25.0).unwrap();
/// f.observe(100.0);
/// f.observe(102.0);
/// f.observe(5_000.0); // heavy-tail outlier
/// let estimate = f.observe(101.0).unwrap();
/// assert!(estimate <= 102.0, "the outlier is filtered out, got {estimate}");
/// ```
#[derive(Debug, Clone)]
pub struct MovingPercentileFilter {
    history_size: usize,
    percentile: f64,
    buf: WindowStorage,
    seen: u64,
}

/// Window sizes up to this bound (the paper's `h = 4` comfortably included)
/// store both buffers inline in the filter value itself.
const INLINE_HISTORY: usize = 8;

/// Backing storage for the observation window and its sorted companion.
///
/// The sorted companion keeps the window's values incrementally ordered:
/// each observation does one removal of the expiring sample and one ordered
/// insertion of the new one instead of cloning and re-sorting the whole
/// window. Identical multiset to the window, so the percentile is
/// bit-identical to the clone-and-sort approach.
///
/// Small histories — every filter the paper evaluates — live in the
/// `Inline` arm: plain arrays inside the filter value, so a per-link filter
/// embedded in a node's peer table costs zero heap allocations and zero
/// pointer chases per observation. That locality is worth real wall-clock
/// time in large simulations, where millions of per-link filters dominate
/// the working set. Larger windows spill to the `Heap` arm, which keeps the
/// original pre-allocated buffers.
#[derive(Debug, Clone)]
enum WindowStorage {
    Inline {
        /// The last `len` observations in arrival order, oldest first.
        window: [f64; INLINE_HISTORY],
        /// The same `len` values ordered by `total_cmp`.
        sorted: [f64; INLINE_HISTORY],
        len: u8,
    },
    Heap {
        window: VecDeque<f64>,
        sorted: Vec<f64>,
    },
}

impl WindowStorage {
    fn with_capacity(history_size: usize) -> Self {
        if history_size <= INLINE_HISTORY {
            WindowStorage::Inline {
                window: [0.0; INLINE_HISTORY],
                sorted: [0.0; INLINE_HISTORY],
                len: 0,
            }
        } else {
            WindowStorage::Heap {
                window: VecDeque::with_capacity(history_size),
                sorted: Vec::with_capacity(history_size),
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            WindowStorage::Inline { len, .. } => *len as usize,
            WindowStorage::Heap { window, .. } => window.len(),
        }
    }

    /// The window's values ordered by `total_cmp`.
    fn sorted_values(&self) -> &[f64] {
        match self {
            WindowStorage::Inline { sorted, len, .. } => &sorted[..*len as usize],
            WindowStorage::Heap { sorted, .. } => sorted,
        }
    }

    fn clear(&mut self) {
        match self {
            WindowStorage::Inline { len, .. } => *len = 0,
            WindowStorage::Heap { window, sorted } => {
                window.clear();
                sorted.clear();
            }
        }
    }

    /// Appends `value`, first expiring the oldest sample when the window
    /// already holds `history_size` entries. Both representations keep the
    /// sorted companion totally ordered under `total_cmp` (consistent with
    /// [`rebuild_sorted`](WindowStorage::rebuild_sorted)), so the expiring
    /// sample is always found even when an imported snapshot carries values
    /// `observe` itself would have rejected (e.g. `-0.0`).
    fn push(&mut self, value: f64, history_size: usize) {
        match self {
            WindowStorage::Inline {
                window,
                sorted,
                len,
            } => {
                let mut n = *len as usize;
                if n == history_size {
                    let expiring = window[0];
                    window.copy_within(1..n, 0);
                    let at = sorted[..n]
                        .iter()
                        .position(|probe| probe.total_cmp(&expiring) == std::cmp::Ordering::Equal)
                        .expect("expiring value is present in the sorted window");
                    sorted.copy_within(at + 1..n, at);
                    n -= 1;
                }
                window[n] = value;
                let at = sorted[..n]
                    .partition_point(|probe| probe.total_cmp(&value) == std::cmp::Ordering::Less);
                sorted.copy_within(at..n, at + 1);
                sorted[at] = value;
                *len = (n + 1) as u8;
            }
            WindowStorage::Heap { window, sorted } => {
                if window.len() == history_size {
                    let expiring = window
                        .pop_front()
                        .expect("full window holds at least one sample");
                    let index = sorted
                        .binary_search_by(|probe| probe.total_cmp(&expiring))
                        .expect("expiring value is present in the sorted window");
                    sorted.remove(index);
                }
                window.push_back(value);
                let index = sorted
                    .partition_point(|probe| probe.total_cmp(&value) == std::cmp::Ordering::Less);
                sorted.insert(index, value);
            }
        }
    }

    /// Replaces the window contents with `values` (oldest first) and
    /// rebuilds the sorted companion — the state-import path.
    fn replace(&mut self, values: &[f64]) {
        match self {
            WindowStorage::Inline {
                window,
                sorted,
                len,
            } => {
                window[..values.len()].copy_from_slice(values);
                sorted[..values.len()].copy_from_slice(values);
                sorted[..values.len()].sort_by(|a, b| a.total_cmp(b));
                *len = values.len() as u8;
            }
            WindowStorage::Heap { window, sorted } => {
                window.clear();
                window.extend(values.iter().copied());
                sorted.clear();
                sorted.extend(values.iter().copied());
                sorted.sort_by(|a, b| a.total_cmp(b));
            }
        }
    }

    /// The window in arrival order, for state export.
    fn export_window(&self) -> Vec<f64> {
        match self {
            WindowStorage::Inline { window, len, .. } => window[..*len as usize].to_vec(),
            WindowStorage::Heap { window, .. } => window.iter().copied().collect(),
        }
    }
}

impl MovingPercentileFilter {
    /// Creates a filter with history size `h` and percentile `p` (0–100).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFilterParameter`] when `history_size == 0` or `p` is
    /// not a finite value in `0.0..=100.0`.
    pub fn new(history_size: usize, percentile: f64) -> Result<Self, InvalidFilterParameter> {
        if history_size == 0 {
            return Err(InvalidFilterParameter("history size must be at least 1"));
        }
        if !percentile.is_finite() || !(0.0..=100.0).contains(&percentile) {
            return Err(InvalidFilterParameter("percentile must be in 0..=100"));
        }
        Ok(MovingPercentileFilter {
            history_size,
            percentile,
            buf: WindowStorage::with_capacity(history_size),
            seen: 0,
        })
    }

    /// The parameters the paper recommends and uses in its PlanetLab
    /// deployment: a history of four observations and the 25th percentile.
    pub fn paper_defaults() -> Self {
        Self::new(4, 25.0).expect("paper defaults are valid")
    }

    /// The configured history size `h`.
    pub fn history_size(&self) -> usize {
        self.history_size
    }

    /// The configured percentile `p`.
    pub fn percentile(&self) -> f64 {
        self.percentile
    }

    /// Number of observations currently held in the window (≤ `h`).
    pub fn window_len(&self) -> usize {
        self.buf.len()
    }

    fn estimate_from_window(&self) -> Option<f64> {
        let sorted = self.buf.sorted_values();
        if sorted.is_empty() {
            return None;
        }
        percentile_of_sorted(sorted, self.percentile).ok()
    }
}

impl LatencyFilter for MovingPercentileFilter {
    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64> {
        if !raw_rtt_ms.is_finite() || raw_rtt_ms <= 0.0 {
            return None;
        }
        self.buf.push(raw_rtt_ms, self.history_size);
        self.seen += 1;
        self.estimate_from_window()
    }

    fn current_estimate(&self) -> Option<f64> {
        self.estimate_from_window()
    }

    fn observations_seen(&self) -> u64 {
        self.seen
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.seen = 0;
    }

    fn export_state(&self) -> FilterState {
        FilterState::MovingPercentile {
            window: self.buf.export_window(),
            seen: self.seen,
        }
    }

    fn import_state(&mut self, state: &FilterState) -> Result<(), StateMismatch> {
        match state {
            FilterState::MovingPercentile { window, seen } => {
                // Keep only the newest `history_size` entries so a state
                // exported under a larger history still restores sanely.
                let start = window.len().saturating_sub(self.history_size);
                self.buf.replace(&window[start..]);
                self.seen = *seen;
                Ok(())
            }
            other => Err(StateMismatch {
                expected: "moving-percentile",
                found: other.family(),
            }),
        }
    }
}

/// Moving-median filter: the `p = 50` special case of the moving-percentile
/// filter, provided as its own type because the median variant is what the
/// filtering literature the paper cites usually discusses.
#[derive(Debug, Clone)]
pub struct MovingMedianFilter {
    inner: MovingPercentileFilter,
}

impl MovingMedianFilter {
    /// Creates a moving-median filter over the last `history_size`
    /// observations.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFilterParameter`] when `history_size == 0`.
    pub fn new(history_size: usize) -> Result<Self, InvalidFilterParameter> {
        Ok(MovingMedianFilter {
            inner: MovingPercentileFilter::new(history_size, 50.0)?,
        })
    }

    /// The configured history size.
    pub fn history_size(&self) -> usize {
        self.inner.history_size()
    }
}

impl LatencyFilter for MovingMedianFilter {
    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64> {
        self.inner.observe(raw_rtt_ms)
    }

    fn current_estimate(&self) -> Option<f64> {
        self.inner.current_estimate()
    }

    fn observations_seen(&self) -> u64 {
        self.inner.observations_seen()
    }

    fn reset(&mut self) {
        self.inner.reset()
    }

    fn export_state(&self) -> FilterState {
        self.inner.export_state()
    }

    fn import_state(&mut self, state: &FilterState) -> Result<(), StateMismatch> {
        self.inner.import_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(MovingPercentileFilter::new(0, 25.0).is_err());
        assert!(MovingPercentileFilter::new(4, -1.0).is_err());
        assert!(MovingPercentileFilter::new(4, 101.0).is_err());
        assert!(MovingPercentileFilter::new(4, f64::NAN).is_err());
        assert!(MovingMedianFilter::new(0).is_err());
    }

    #[test]
    fn paper_defaults_are_h4_p25() {
        let f = MovingPercentileFilter::paper_defaults();
        assert_eq!(f.history_size(), 4);
        assert_eq!(f.percentile(), 25.0);
    }

    #[test]
    fn emits_from_first_observation() {
        // The paper notes the filter "outputted a value for every input,
        // regardless of the history length".
        let mut f = MovingPercentileFilter::paper_defaults();
        assert_eq!(f.observe(123.0), Some(123.0));
    }

    #[test]
    fn ignores_invalid_observations() {
        let mut f = MovingPercentileFilter::paper_defaults();
        assert_eq!(f.observe(f64::NAN), None);
        assert_eq!(f.observe(-1.0), None);
        assert_eq!(f.observe(0.0), None);
        assert_eq!(f.observations_seen(), 0);
        assert_eq!(f.current_estimate(), None);
    }

    #[test]
    fn suppresses_heavy_tail_outliers() {
        let mut f = MovingPercentileFilter::paper_defaults();
        let mut estimates = Vec::new();
        for raw in [80.0, 82.0, 79.0, 81.0, 9_000.0, 80.0, 83.0, 78.0] {
            if let Some(e) = f.observe(raw) {
                estimates.push(e);
            }
        }
        assert!(
            estimates.iter().all(|&e| e < 100.0),
            "estimates {estimates:?}"
        );
    }

    #[test]
    fn window_slides_and_adapts_to_level_shift() {
        let mut f = MovingPercentileFilter::paper_defaults();
        for _ in 0..10 {
            f.observe(50.0);
        }
        // The underlying latency shifts to 150 ms (e.g. a route change).
        let mut last = 0.0;
        for _ in 0..4 {
            last = f.observe(150.0).unwrap();
        }
        assert!(
            (last - 150.0).abs() < 1e-9,
            "filter should adapt within h samples, got {last}"
        );
    }

    #[test]
    fn p25_of_full_window_is_low_quantile() {
        let mut f = MovingPercentileFilter::new(4, 25.0).unwrap();
        for raw in [10.0, 20.0, 30.0, 40.0] {
            f.observe(raw);
        }
        // 25th percentile of {10,20,30,40} with linear interpolation = 17.5.
        assert!((f.current_estimate().unwrap() - 17.5).abs() < 1e-9);
    }

    #[test]
    fn median_filter_matches_percentile_50() {
        let mut median = MovingMedianFilter::new(5).unwrap();
        let mut p50 = MovingPercentileFilter::new(5, 50.0).unwrap();
        for raw in [10.0, 200.0, 15.0, 12.0, 900.0, 11.0] {
            assert_eq!(median.observe(raw), p50.observe(raw));
        }
        assert_eq!(median.history_size(), 5);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = MovingPercentileFilter::paper_defaults();
        f.observe(10.0);
        f.observe(20.0);
        f.reset();
        assert_eq!(f.observations_seen(), 0);
        assert_eq!(f.current_estimate(), None);
        assert_eq!(f.window_len(), 0);
    }

    #[test]
    fn imported_window_with_mixed_zeros_survives_expiry() {
        // A snapshot off the wire may carry values `observe` itself would
        // have rejected, such as -0.0. The sorted companion buffer must stay
        // totally ordered so the expiring sample is always found (this
        // panicked when insertion used partial_cmp but removal total_cmp).
        let mut f = MovingPercentileFilter::new(3, 50.0).unwrap();
        f.import_state(&FilterState::MovingPercentile {
            window: vec![0.0, 0.0, -0.0],
            seen: 3,
        })
        .unwrap();
        // Two valid observations expire the zeros without panicking.
        assert!(f.observe(5.0).is_some());
        assert!(f.observe(6.0).is_some());
        assert_eq!(f.window_len(), 3);
    }

    #[test]
    fn history_of_one_is_identity() {
        let mut f = MovingPercentileFilter::new(1, 25.0).unwrap();
        for raw in [5.0, 900.0, 42.0] {
            assert_eq!(f.observe(raw), Some(raw));
        }
    }

    proptest! {
        #[test]
        fn output_is_bounded_by_window_extremes(
            values in proptest::collection::vec(0.1f64..1e5, 1..100),
            h in 1usize..16,
            p in 0.0f64..=100.0,
        ) {
            let mut f = MovingPercentileFilter::new(h, p).unwrap();
            let mut window: Vec<f64> = Vec::new();
            for &v in &values {
                window.push(v);
                if window.len() > h {
                    window.remove(0);
                }
                let est = f.observe(v).unwrap();
                let min = window.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = window.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(est >= min - 1e-9 && est <= max + 1e-9);
            }
        }

        #[test]
        fn window_never_exceeds_history_size(
            values in proptest::collection::vec(0.1f64..1e4, 0..200),
            h in 1usize..32,
        ) {
            let mut f = MovingPercentileFilter::new(h, 25.0).unwrap();
            for &v in &values {
                f.observe(v);
                prop_assert!(f.window_len() <= h);
            }
        }
    }
}
