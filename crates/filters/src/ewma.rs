//! Exponentially-weighted moving average filter (evaluated baseline).
//!
//! The EWMA is the conventional way to smooth jittery measurements:
//! `v_{t+1} = α·s + (1−α)·v_t`. The paper's Table I shows that for
//! heavy-tailed latency streams it performs *worse than no filter at all* —
//! the huge outliers are not a trend to be tracked but noise to be discarded,
//! and even a small `α` lets them drag the estimate far from the true
//! latency for a long time. It is implemented here as the baseline the
//! experiments compare against.

use crate::moving_percentile::InvalidFilterParameter;
use crate::{FilterState, LatencyFilter, StateMismatch};

/// Exponentially-weighted moving average of raw observations.
///
/// # Examples
///
/// ```
/// use nc_filters::{EwmaFilter, LatencyFilter};
///
/// let mut f = EwmaFilter::new(0.1).unwrap();
/// f.observe(100.0);
/// let after_outlier = f.observe(10_000.0).unwrap();
/// assert!(after_outlier > 1_000.0, "the EWMA lets the outlier through: {after_outlier}");
/// ```
#[derive(Debug, Clone)]
pub struct EwmaFilter {
    alpha: f64,
    value: Option<f64>,
    seen: u64,
}

impl EwmaFilter {
    /// Creates an EWMA filter with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFilterParameter`] when `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Result<Self, InvalidFilterParameter> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return Err(InvalidFilterParameter("alpha must be in (0, 1]"));
        }
        Ok(EwmaFilter {
            alpha,
            value: None,
            seen: 0,
        })
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl LatencyFilter for EwmaFilter {
    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64> {
        if !raw_rtt_ms.is_finite() || raw_rtt_ms <= 0.0 {
            return None;
        }
        self.seen += 1;
        let next = match self.value {
            None => raw_rtt_ms,
            Some(v) => self.alpha * raw_rtt_ms + (1.0 - self.alpha) * v,
        };
        self.value = Some(next);
        Some(next)
    }

    fn current_estimate(&self) -> Option<f64> {
        self.value
    }

    fn observations_seen(&self) -> u64 {
        self.seen
    }

    fn reset(&mut self) {
        self.value = None;
        self.seen = 0;
    }

    fn export_state(&self) -> FilterState {
        FilterState::Ewma {
            value: self.value,
            seen: self.seen,
        }
    }

    fn import_state(&mut self, state: &FilterState) -> Result<(), StateMismatch> {
        match state {
            FilterState::Ewma { value, seen } => {
                self.value = *value;
                self.seen = *seen;
                Ok(())
            }
            other => Err(StateMismatch {
                expected: "ewma",
                found: other.family(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_alpha() {
        assert!(EwmaFilter::new(0.0).is_err());
        assert!(EwmaFilter::new(-0.5).is_err());
        assert!(EwmaFilter::new(1.5).is_err());
        assert!(EwmaFilter::new(f64::NAN).is_err());
        assert!(EwmaFilter::new(1.0).is_ok());
    }

    #[test]
    fn first_observation_initializes_value() {
        let mut f = EwmaFilter::new(0.2).unwrap();
        assert_eq!(f.observe(50.0), Some(50.0));
    }

    #[test]
    fn matches_recurrence() {
        let alpha = 0.25;
        let mut f = EwmaFilter::new(alpha).unwrap();
        let inputs = [10.0, 20.0, 30.0, 40.0];
        let mut expected = inputs[0];
        assert_eq!(f.observe(inputs[0]), Some(expected));
        for &s in &inputs[1..] {
            expected = alpha * s + (1.0 - alpha) * expected;
            let got = f.observe(s).unwrap();
            assert!((got - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn outliers_contaminate_the_estimate() {
        // The failure mode Table I documents: after one 10-second outlier the
        // EWMA overestimates an 80 ms link for many samples.
        let mut f = EwmaFilter::new(0.1).unwrap();
        for _ in 0..20 {
            f.observe(80.0);
        }
        f.observe(10_000.0);
        let next = f.observe(80.0).unwrap();
        assert!(next > 800.0, "estimate should be contaminated, got {next}");
    }

    #[test]
    fn alpha_one_tracks_input_exactly() {
        let mut f = EwmaFilter::new(1.0).unwrap();
        for v in [10.0, 500.0, 3.0] {
            assert_eq!(f.observe(v), Some(v));
        }
    }

    #[test]
    fn ignores_invalid_input_and_reset_clears() {
        let mut f = EwmaFilter::new(0.5).unwrap();
        assert_eq!(f.observe(f64::INFINITY), None);
        assert_eq!(f.observe(-2.0), None);
        f.observe(10.0);
        f.reset();
        assert_eq!(f.current_estimate(), None);
        assert_eq!(f.observations_seen(), 0);
    }

    proptest! {
        #[test]
        fn estimate_stays_within_input_range(
            values in proptest::collection::vec(0.1f64..1e5, 1..200),
            alpha in 0.01f64..=1.0,
        ) {
            let mut f = EwmaFilter::new(alpha).unwrap();
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for &v in &values {
                let e = f.observe(v).unwrap();
                prop_assert!(e >= min - 1e-9 && e <= max + 1e-9);
            }
        }
    }
}
