//! Latency observation filters.
//!
//! In a live deployment a link does not have *one* latency: a node sees a
//! stream of observations for each neighbour that can span three orders of
//! magnitude (paper §III, Figures 2–3). Feeding those raw samples straight
//! into Vivaldi periodically distorts the whole coordinate space. This crate
//! implements the filters the paper evaluates between the measurement layer
//! and the coordinate update:
//!
//! * [`MovingPercentileFilter`] — the paper's recommended non-linear low-pass
//!   filter: keep the last `h` observations per link and output their `p`-th
//!   percentile (`h = 4`, `p = 25` performed best, §IV).
//! * [`MovingMedianFilter`] — the classic special case `p = 50`.
//! * [`EwmaFilter`] — exponentially-weighted moving average baseline
//!   (Table I shows it is *worse* than no filter at all for this workload).
//! * [`ThresholdFilter`] — discard observations above a fixed cut-off, the
//!   stateless baseline the paper tried first (§IV-B "Thresholds").
//! * [`RawFilter`] — identity pass-through (the "No Filter" configuration).
//! * [`WarmupFilter`] — wrapper that withholds output until a minimum number
//!   of samples has been seen, the fix the paper proposes (§VI) for the
//!   pathological case where the very first observation on a link is an
//!   extreme outlier.
//!
//! All filters implement [`LatencyFilter`]: they consume one raw observation
//! at a time and produce the filtered latency estimate that should be handed
//! to the coordinate algorithm (or `None` when no estimate should be emitted
//! yet).
//!
//! # Example
//!
//! ```
//! use nc_filters::{LatencyFilter, MovingPercentileFilter};
//!
//! let mut filter = MovingPercentileFilter::paper_defaults();
//! // A stream with a huge outlier: the filter output stays near the base RTT.
//! let outputs: Vec<f64> = [80.0, 82.0, 4000.0, 81.0, 79.0]
//!     .into_iter()
//!     .filter_map(|raw| filter.observe(raw))
//!     .collect();
//! assert!(outputs.iter().all(|&v| v < 100.0));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ewma;
pub mod moving_percentile;
pub mod raw;
pub mod threshold;
pub mod warmup;

pub use ewma::EwmaFilter;
pub use moving_percentile::{MovingMedianFilter, MovingPercentileFilter};
pub use raw::RawFilter;
pub use threshold::ThresholdFilter;
pub use warmup::WarmupFilter;

/// A per-link latency filter.
///
/// A filter receives the raw observation stream of **one** link and emits the
/// latency estimate the coordinate algorithm should use. Implementations are
/// deliberately small state machines; a node keeps one filter instance per
/// neighbour.
pub trait LatencyFilter {
    /// Feeds one raw observation (milliseconds) and returns the filtered
    /// estimate to use, or `None` when the filter chooses to suppress output
    /// for this observation (e.g. during warm-up or when a threshold filter
    /// discards an outlier).
    ///
    /// Non-finite or non-positive observations are ignored and produce
    /// `None`.
    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64>;

    /// The filter's current estimate without feeding a new observation, if it
    /// has one.
    fn current_estimate(&self) -> Option<f64>;

    /// Number of raw observations consumed so far (including discarded ones,
    /// excluding invalid ones).
    fn observations_seen(&self) -> u64;

    /// Resets the filter to its initial state (used when a link is considered
    /// dead and later reappears).
    fn reset(&mut self);
}

/// Identifies a filter family for configuration and reporting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FilterKind {
    /// Raw pass-through (the paper's "No Filter").
    Raw,
    /// Moving-percentile filter with the paper's default parameters.
    MovingPercentile,
    /// Moving-median filter.
    MovingMedian,
    /// EWMA filter.
    Ewma,
    /// Fixed-threshold filter.
    Threshold,
}

impl std::fmt::Display for FilterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FilterKind::Raw => "raw",
            FilterKind::MovingPercentile => "moving-percentile",
            FilterKind::MovingMedian => "moving-median",
            FilterKind::Ewma => "ewma",
            FilterKind::Threshold => "threshold",
        };
        write!(f, "{name}")
    }
}

/// Constructs a boxed filter of the given kind with its paper-default
/// parameters. Convenient for experiment sweeps that select filters by name.
pub fn make_filter(kind: FilterKind) -> Box<dyn LatencyFilter + Send> {
    match kind {
        FilterKind::Raw => Box::new(RawFilter::new()),
        FilterKind::MovingPercentile => Box::new(MovingPercentileFilter::paper_defaults()),
        FilterKind::MovingMedian => Box::new(MovingMedianFilter::new(4).expect("4 > 0")),
        FilterKind::Ewma => Box::new(EwmaFilter::new(0.1).expect("alpha in range")),
        FilterKind::Threshold => Box::new(ThresholdFilter::new(1000.0).expect("positive cutoff")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_filter_produces_working_filters() {
        for kind in [
            FilterKind::Raw,
            FilterKind::MovingPercentile,
            FilterKind::MovingMedian,
            FilterKind::Ewma,
            FilterKind::Threshold,
        ] {
            let mut f = make_filter(kind);
            let out = f.observe(50.0);
            assert!(out.is_some() || kind == FilterKind::MovingPercentile || kind == FilterKind::MovingMedian,
                "{kind} swallowed a valid observation unexpectedly");
            assert_eq!(f.observations_seen(), 1);
        }
    }

    #[test]
    fn filter_kind_display_is_nonempty() {
        assert_eq!(FilterKind::MovingPercentile.to_string(), "moving-percentile");
        assert_eq!(FilterKind::Raw.to_string(), "raw");
    }

    #[test]
    fn filters_are_object_safe_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let f = make_filter(FilterKind::Raw);
        assert_send(&f);
    }
}
