//! Latency observation filters.
//!
//! In a live deployment a link does not have *one* latency: a node sees a
//! stream of observations for each neighbour that can span three orders of
//! magnitude (paper §III, Figures 2–3). Feeding those raw samples straight
//! into Vivaldi periodically distorts the whole coordinate space. This crate
//! implements the filters the paper evaluates between the measurement layer
//! and the coordinate update:
//!
//! * [`MovingPercentileFilter`] — the paper's recommended non-linear low-pass
//!   filter: keep the last `h` observations per link and output their `p`-th
//!   percentile (`h = 4`, `p = 25` performed best, §IV).
//! * [`MovingMedianFilter`] — the classic special case `p = 50`.
//! * [`EwmaFilter`] — exponentially-weighted moving average baseline
//!   (Table I shows it is *worse* than no filter at all for this workload).
//! * [`ThresholdFilter`] — discard observations above a fixed cut-off, the
//!   stateless baseline the paper tried first (§IV-B "Thresholds").
//! * [`RawFilter`] — identity pass-through (the "No Filter" configuration).
//! * [`WarmupFilter`] — wrapper that withholds output until a minimum number
//!   of samples has been seen, the fix the paper proposes (§VI) for the
//!   pathological case where the very first observation on a link is an
//!   extreme outlier.
//!
//! All filters implement [`LatencyFilter`]: they consume one raw observation
//! at a time and produce the filtered latency estimate that should be handed
//! to the coordinate algorithm (or `None` when no estimate should be emitted
//! yet).
//!
//! # Example
//!
//! ```
//! use nc_filters::{LatencyFilter, MovingPercentileFilter};
//!
//! let mut filter = MovingPercentileFilter::paper_defaults();
//! // A stream with a huge outlier: the filter output stays near the base RTT.
//! let outputs: Vec<f64> = [80.0, 82.0, 4000.0, 81.0, 79.0]
//!     .into_iter()
//!     .filter_map(|raw| filter.observe(raw))
//!     .collect();
//! assert!(outputs.iter().all(|&v| v < 100.0));
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod ewma;
pub mod moving_percentile;
pub mod raw;
pub mod threshold;
pub mod warmup;

pub use ewma::EwmaFilter;
pub use moving_percentile::{MovingMedianFilter, MovingPercentileFilter};
pub use raw::RawFilter;
pub use threshold::ThresholdFilter;
pub use warmup::WarmupFilter;

/// The serializable runtime state of a per-link filter.
///
/// Filters are small state machines; this enum captures exactly the fields
/// that evolve at run time (window contents, counters), not the
/// configuration (history size, percentile, cut-off), which is supplied
/// separately when a filter is rebuilt. Used by snapshot/restore: a filter
/// exports its state with [`LatencyFilter::export_state`] and a freshly
/// configured filter re-adopts it with [`LatencyFilter::import_state`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FilterState {
    /// State of a [`RawFilter`].
    Raw {
        /// The last valid observation, if any.
        last: Option<f64>,
        /// Number of valid observations consumed.
        seen: u64,
    },
    /// State of a [`MovingPercentileFilter`] or [`MovingMedianFilter`].
    MovingPercentile {
        /// The sliding observation window, oldest first.
        window: Vec<f64>,
        /// Number of valid observations consumed.
        seen: u64,
    },
    /// State of an [`EwmaFilter`].
    Ewma {
        /// The current smoothed estimate, if initialised.
        value: Option<f64>,
        /// Number of valid observations consumed.
        seen: u64,
    },
    /// State of a [`ThresholdFilter`].
    Threshold {
        /// The last observation that passed the cut-off.
        last_passed: Option<f64>,
        /// Number of valid observations consumed.
        seen: u64,
        /// Number of observations discarded by the cut-off.
        discarded: u64,
    },
}

impl FilterState {
    /// The filter family this state belongs to, for error messages.
    pub fn family(&self) -> &'static str {
        match self {
            FilterState::Raw { .. } => "raw",
            FilterState::MovingPercentile { .. } => "moving-percentile",
            FilterState::Ewma { .. } => "ewma",
            FilterState::Threshold { .. } => "threshold",
        }
    }
}

/// Error returned when a filter is asked to adopt state exported by a filter
/// of a different family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMismatch {
    /// The family of the filter doing the importing.
    pub expected: &'static str,
    /// The family the state was exported from.
    pub found: &'static str,
}

impl std::fmt::Display for StateMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot restore a {} filter from {} state",
            self.expected, self.found
        )
    }
}

impl std::error::Error for StateMismatch {}

/// A per-link latency filter.
///
/// A filter receives the raw observation stream of **one** link and emits the
/// latency estimate the coordinate algorithm should use. Implementations are
/// deliberately small state machines; a node keeps one filter instance per
/// neighbour.
pub trait LatencyFilter {
    /// Feeds one raw observation (milliseconds) and returns the filtered
    /// estimate to use, or `None` when the filter chooses to suppress output
    /// for this observation (e.g. during warm-up or when a threshold filter
    /// discards an outlier).
    ///
    /// Non-finite or non-positive observations are ignored and produce
    /// `None`.
    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64>;

    /// The filter's current estimate without feeding a new observation, if it
    /// has one.
    fn current_estimate(&self) -> Option<f64>;

    /// Number of raw observations consumed so far (including discarded ones,
    /// excluding invalid ones).
    fn observations_seen(&self) -> u64;

    /// Resets the filter to its initial state (used when a link is considered
    /// dead and later reappears).
    fn reset(&mut self);

    /// Exports the filter's runtime state for persistence.
    fn export_state(&self) -> FilterState;

    /// Adopts runtime state previously produced by
    /// [`export_state`](LatencyFilter::export_state) on a filter of the same
    /// family.
    ///
    /// # Errors
    ///
    /// Returns [`StateMismatch`] when `state` was exported by a different
    /// filter family; the filter is left unchanged in that case.
    fn import_state(&mut self, state: &FilterState) -> Result<(), StateMismatch>;
}

/// Identifies a filter family for configuration and reporting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FilterKind {
    /// Raw pass-through (the paper's "No Filter").
    Raw,
    /// Moving-percentile filter with the paper's default parameters.
    MovingPercentile,
    /// Moving-median filter.
    MovingMedian,
    /// EWMA filter.
    Ewma,
    /// Fixed-threshold filter.
    Threshold,
}

impl std::fmt::Display for FilterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FilterKind::Raw => "raw",
            FilterKind::MovingPercentile => "moving-percentile",
            FilterKind::MovingMedian => "moving-median",
            FilterKind::Ewma => "ewma",
            FilterKind::Threshold => "threshold",
        };
        write!(f, "{name}")
    }
}

/// Constructs a boxed filter of the given kind with its paper-default
/// parameters. Convenient for experiment sweeps that select filters by name.
pub fn make_filter(kind: FilterKind) -> Box<dyn LatencyFilter + Send> {
    match kind {
        FilterKind::Raw => Box::new(RawFilter::new()),
        FilterKind::MovingPercentile => Box::new(MovingPercentileFilter::paper_defaults()),
        FilterKind::MovingMedian => Box::new(MovingMedianFilter::new(4).expect("4 > 0")),
        FilterKind::Ewma => Box::new(EwmaFilter::new(0.1).expect("alpha in range")),
        FilterKind::Threshold => Box::new(ThresholdFilter::new(1000.0).expect("positive cutoff")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_filter_produces_working_filters() {
        for kind in [
            FilterKind::Raw,
            FilterKind::MovingPercentile,
            FilterKind::MovingMedian,
            FilterKind::Ewma,
            FilterKind::Threshold,
        ] {
            let mut f = make_filter(kind);
            let out = f.observe(50.0);
            assert!(
                out.is_some()
                    || kind == FilterKind::MovingPercentile
                    || kind == FilterKind::MovingMedian,
                "{kind} swallowed a valid observation unexpectedly"
            );
            assert_eq!(f.observations_seen(), 1);
        }
    }

    #[test]
    fn filter_kind_display_is_nonempty() {
        assert_eq!(
            FilterKind::MovingPercentile.to_string(),
            "moving-percentile"
        );
        assert_eq!(FilterKind::Raw.to_string(), "raw");
    }

    #[test]
    fn filters_are_object_safe_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let f = make_filter(FilterKind::Raw);
        assert_send(&f);
    }

    #[test]
    fn state_round_trips_through_a_fresh_filter() {
        for kind in [
            FilterKind::Raw,
            FilterKind::MovingPercentile,
            FilterKind::MovingMedian,
            FilterKind::Ewma,
            FilterKind::Threshold,
        ] {
            let mut original = make_filter(kind);
            for raw in [80.0, 90.0, 4_000.0, 85.0, 82.0] {
                original.observe(raw);
            }
            let state = original.export_state();
            let mut restored = make_filter(kind);
            restored.import_state(&state).expect("same family restores");
            assert_eq!(
                restored.current_estimate(),
                original.current_estimate(),
                "{kind}"
            );
            assert_eq!(restored.observations_seen(), original.observations_seen());
            // Both continue identically.
            assert_eq!(restored.observe(88.0), original.observe(88.0), "{kind}");
        }
    }

    #[test]
    fn importing_foreign_state_is_rejected() {
        let mut ewma = make_filter(FilterKind::Ewma);
        let raw_state = make_filter(FilterKind::Raw).export_state();
        let err = ewma.import_state(&raw_state).unwrap_err();
        assert_eq!(err.expected, "ewma");
        assert_eq!(err.found, "raw");
        assert!(!err.to_string().is_empty());
    }
}
