//! Fixed-threshold filter (evaluated baseline).
//!
//! The simplest conceivable defence against heavy tails: discard every
//! observation above a fixed cut-off and pass the rest through unchanged.
//! The paper tried this first (§IV-B "Thresholds") and found it wanting —
//! each link has its *own* tail, so a global cut-off that removes the worst
//! outliers of trans-continental links does nothing for a 20 ms link whose
//! outliers are 500 ms.

use crate::moving_percentile::InvalidFilterParameter;
use crate::{FilterState, LatencyFilter, StateMismatch};

/// Pass-through filter that drops observations above a fixed cut-off.
///
/// # Examples
///
/// ```
/// use nc_filters::{LatencyFilter, ThresholdFilter};
///
/// let mut f = ThresholdFilter::new(1000.0).unwrap();
/// assert_eq!(f.observe(80.0), Some(80.0));
/// assert_eq!(f.observe(5000.0), None); // discarded
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdFilter {
    cutoff_ms: f64,
    last_passed: Option<f64>,
    seen: u64,
    discarded: u64,
}

impl ThresholdFilter {
    /// Creates a filter that discards observations above `cutoff_ms`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFilterParameter`] when the cut-off is not a positive
    /// finite number.
    pub fn new(cutoff_ms: f64) -> Result<Self, InvalidFilterParameter> {
        if !cutoff_ms.is_finite() || cutoff_ms <= 0.0 {
            return Err(InvalidFilterParameter("cutoff must be positive"));
        }
        Ok(ThresholdFilter {
            cutoff_ms,
            last_passed: None,
            seen: 0,
            discarded: 0,
        })
    }

    /// The configured cut-off in milliseconds.
    pub fn cutoff_ms(&self) -> f64 {
        self.cutoff_ms
    }

    /// Number of observations discarded so far.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }
}

impl LatencyFilter for ThresholdFilter {
    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64> {
        if !raw_rtt_ms.is_finite() || raw_rtt_ms <= 0.0 {
            return None;
        }
        self.seen += 1;
        if raw_rtt_ms > self.cutoff_ms {
            self.discarded += 1;
            return None;
        }
        self.last_passed = Some(raw_rtt_ms);
        Some(raw_rtt_ms)
    }

    fn current_estimate(&self) -> Option<f64> {
        self.last_passed
    }

    fn observations_seen(&self) -> u64 {
        self.seen
    }

    fn reset(&mut self) {
        self.last_passed = None;
        self.seen = 0;
        self.discarded = 0;
    }

    fn export_state(&self) -> FilterState {
        FilterState::Threshold {
            last_passed: self.last_passed,
            seen: self.seen,
            discarded: self.discarded,
        }
    }

    fn import_state(&mut self, state: &FilterState) -> Result<(), StateMismatch> {
        match state {
            FilterState::Threshold {
                last_passed,
                seen,
                discarded,
            } => {
                self.last_passed = *last_passed;
                self.seen = *seen;
                self.discarded = *discarded;
                Ok(())
            }
            other => Err(StateMismatch {
                expected: "threshold",
                found: other.family(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_invalid_cutoff() {
        assert!(ThresholdFilter::new(0.0).is_err());
        assert!(ThresholdFilter::new(-10.0).is_err());
        assert!(ThresholdFilter::new(f64::NAN).is_err());
    }

    #[test]
    fn passes_below_and_drops_above() {
        let mut f = ThresholdFilter::new(100.0).unwrap();
        assert_eq!(f.observe(99.0), Some(99.0));
        assert_eq!(f.observe(100.0), Some(100.0));
        assert_eq!(f.observe(100.1), None);
        assert_eq!(f.discarded(), 1);
        assert_eq!(f.observations_seen(), 3);
        assert_eq!(f.current_estimate(), Some(100.0));
    }

    #[test]
    fn per_link_tails_slip_under_a_global_cutoff() {
        // The paper's complaint: a cut-off tuned for the global distribution
        // (say 1 s) passes 500 ms outliers on a 20 ms link untouched.
        let mut f = ThresholdFilter::new(1000.0).unwrap();
        assert_eq!(f.observe(20.0), Some(20.0));
        assert_eq!(f.observe(500.0), Some(500.0));
    }

    #[test]
    fn reset_clears_counts() {
        let mut f = ThresholdFilter::new(50.0).unwrap();
        f.observe(10.0);
        f.observe(100.0);
        f.reset();
        assert_eq!(f.observations_seen(), 0);
        assert_eq!(f.discarded(), 0);
        assert_eq!(f.current_estimate(), None);
    }

    proptest! {
        #[test]
        fn output_never_exceeds_cutoff(
            values in proptest::collection::vec(0.1f64..1e5, 0..200),
            cutoff in 1.0f64..1e4,
        ) {
            let mut f = ThresholdFilter::new(cutoff).unwrap();
            for &v in &values {
                if let Some(out) = f.observe(v) {
                    prop_assert!(out <= cutoff);
                    prop_assert_eq!(out, v);
                }
            }
        }
    }
}
