//! Identity pass-through — the "No Filter" configuration.

use crate::{FilterState, LatencyFilter, StateMismatch};

/// Passes every valid observation straight through. This is the
/// configuration the paper calls "No Filter" / "Raw": the original Vivaldi
/// behaviour of feeding raw samples directly into the update rule.
///
/// # Examples
///
/// ```
/// use nc_filters::{LatencyFilter, RawFilter};
///
/// let mut f = RawFilter::new();
/// assert_eq!(f.observe(123.4), Some(123.4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RawFilter {
    last: Option<f64>,
    seen: u64,
}

impl RawFilter {
    /// Creates the pass-through filter.
    pub fn new() -> Self {
        RawFilter::default()
    }
}

impl LatencyFilter for RawFilter {
    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64> {
        if !raw_rtt_ms.is_finite() || raw_rtt_ms <= 0.0 {
            return None;
        }
        self.seen += 1;
        self.last = Some(raw_rtt_ms);
        Some(raw_rtt_ms)
    }

    fn current_estimate(&self) -> Option<f64> {
        self.last
    }

    fn observations_seen(&self) -> u64 {
        self.seen
    }

    fn reset(&mut self) {
        self.last = None;
        self.seen = 0;
    }

    fn export_state(&self) -> FilterState {
        FilterState::Raw {
            last: self.last,
            seen: self.seen,
        }
    }

    fn import_state(&mut self, state: &FilterState) -> Result<(), StateMismatch> {
        match state {
            FilterState::Raw { last, seen } => {
                self.last = *last;
                self.seen = *seen;
                Ok(())
            }
            other => Err(StateMismatch {
                expected: "raw",
                found: other.family(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn passes_values_through() {
        let mut f = RawFilter::new();
        for v in [1.0, 10_000.0, 0.5] {
            assert_eq!(f.observe(v), Some(v));
        }
        assert_eq!(f.observations_seen(), 3);
        assert_eq!(f.current_estimate(), Some(0.5));
    }

    #[test]
    fn rejects_invalid_values() {
        let mut f = RawFilter::new();
        assert_eq!(f.observe(f64::NAN), None);
        assert_eq!(f.observe(0.0), None);
        assert_eq!(f.observe(-1.0), None);
        assert_eq!(f.observations_seen(), 0);
    }

    #[test]
    fn reset_clears() {
        let mut f = RawFilter::new();
        f.observe(5.0);
        f.reset();
        assert_eq!(f.current_estimate(), None);
        assert_eq!(f.observations_seen(), 0);
    }

    proptest! {
        #[test]
        fn identity_on_valid_input(v in 0.0001f64..1e6) {
            let mut f = RawFilter::new();
            prop_assert_eq!(f.observe(v), Some(v));
        }
    }
}
