//! Warm-up wrapper: withhold output until a link has enough samples.
//!
//! Section VI of the paper traces the five largest coordinate disruptions in
//! its PlanetLab deployment to a pathological case: when the *first*
//! observation of a link is an extreme outlier, the MP filter — which emits
//! an output for every input regardless of history length — hands that
//! outlier straight to Vivaldi, and the echoes of the resulting displacement
//! last for minutes. The proposed fix is to delay the filter's output until
//! at least a second sample has arrived. [`WarmupFilter`] wraps any inner
//! filter and suppresses output until `min_samples` observations have been
//! consumed.

use crate::{FilterState, LatencyFilter, StateMismatch};

/// Wraps an inner filter and suppresses its output until `min_samples`
/// observations of the link have been seen.
///
/// # Examples
///
/// ```
/// use nc_filters::{LatencyFilter, MovingPercentileFilter, WarmupFilter};
///
/// let mut f = WarmupFilter::new(MovingPercentileFilter::paper_defaults(), 2);
/// assert_eq!(f.observe(9000.0), None);          // a first-sample outlier is withheld
/// assert!(f.observe(80.0).is_some());           // output starts with the second sample
/// ```
#[derive(Debug, Clone)]
pub struct WarmupFilter<F> {
    inner: F,
    min_samples: u64,
}

impl<F: LatencyFilter> WarmupFilter<F> {
    /// Wraps `inner`, requiring `min_samples` valid observations before any
    /// output is produced. `min_samples = 0` or `1` make the wrapper a
    /// no-op.
    pub fn new(inner: F, min_samples: u64) -> Self {
        WarmupFilter { inner, min_samples }
    }

    /// The wrapped filter.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The number of samples required before output starts.
    pub fn min_samples(&self) -> u64 {
        self.min_samples
    }

    /// True once the warm-up requirement has been met.
    pub fn is_warm(&self) -> bool {
        self.inner.observations_seen() >= self.min_samples
    }
}

impl<F: LatencyFilter> LatencyFilter for WarmupFilter<F> {
    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64> {
        let out = self.inner.observe(raw_rtt_ms)?;
        if self.is_warm() {
            Some(out)
        } else {
            None
        }
    }

    fn current_estimate(&self) -> Option<f64> {
        if self.is_warm() {
            self.inner.current_estimate()
        } else {
            None
        }
    }

    fn observations_seen(&self) -> u64 {
        self.inner.observations_seen()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    // The warm-up requirement is configuration, not state: delegating both
    // directions makes a warm-up-wrapped filter round-trip against the bare
    // inner filter's state.
    fn export_state(&self) -> FilterState {
        self.inner.export_state()
    }

    fn import_state(&mut self, state: &FilterState) -> Result<(), StateMismatch> {
        self.inner.import_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MovingPercentileFilter, RawFilter};

    #[test]
    fn withholds_until_min_samples() {
        let mut f = WarmupFilter::new(RawFilter::new(), 3);
        assert_eq!(f.observe(10.0), None);
        assert_eq!(f.observe(11.0), None);
        assert_eq!(f.observe(12.0), Some(12.0));
        assert!(f.is_warm());
    }

    #[test]
    fn zero_or_one_min_samples_is_noop() {
        let mut f0 = WarmupFilter::new(RawFilter::new(), 0);
        assert_eq!(f0.observe(5.0), Some(5.0));
        let mut f1 = WarmupFilter::new(RawFilter::new(), 1);
        assert_eq!(f1.observe(5.0), Some(5.0));
    }

    #[test]
    fn first_sample_outlier_is_contained() {
        // The §VI pathological case: a 30-second first sample.
        let mut unprotected = MovingPercentileFilter::paper_defaults();
        let mut protected = WarmupFilter::new(MovingPercentileFilter::paper_defaults(), 2);
        let first_unprotected = unprotected.observe(30_000.0);
        let first_protected = protected.observe(30_000.0);
        assert_eq!(
            first_unprotected,
            Some(30_000.0),
            "without warm-up the outlier leaks"
        );
        assert_eq!(first_protected, None, "warm-up withholds the outlier");
        // From the second sample on, the MP window still contains the outlier
        // but the low percentile hides it.
        let second = protected.observe(80.0).unwrap();
        assert!(second < 10_000.0);
    }

    #[test]
    fn invalid_samples_do_not_count_toward_warmup() {
        let mut f = WarmupFilter::new(RawFilter::new(), 2);
        assert_eq!(f.observe(f64::NAN), None);
        assert_eq!(f.observe(10.0), None);
        assert_eq!(f.observe(11.0), Some(11.0));
    }

    #[test]
    fn current_estimate_respects_warmup() {
        let mut f = WarmupFilter::new(RawFilter::new(), 2);
        f.observe(10.0);
        assert_eq!(f.current_estimate(), None);
        f.observe(20.0);
        assert_eq!(f.current_estimate(), Some(20.0));
    }

    #[test]
    fn reset_restarts_warmup() {
        let mut f = WarmupFilter::new(RawFilter::new(), 2);
        f.observe(10.0);
        f.observe(20.0);
        assert!(f.is_warm());
        f.reset();
        assert!(!f.is_warm());
        assert_eq!(f.observe(30.0), None);
    }

    #[test]
    fn accessors_expose_configuration() {
        let f = WarmupFilter::new(RawFilter::new(), 7);
        assert_eq!(f.min_samples(), 7);
        assert_eq!(f.inner().observations_seen(), 0);
    }
}
