//! Equivalence suite for the incrementally-sorted moving-percentile window:
//! the binary-search insert/remove maintenance must produce **bit-identical**
//! estimates to the original clone-and-sort implementation, reproduced here
//! as a reference filter with the exact arithmetic of the pre-incremental
//! code.

use std::collections::VecDeque;

use nc_filters::{LatencyFilter, MovingPercentileFilter};
use proptest::prelude::*;

/// The original implementation: keep the raw window, clone and re-sort it on
/// every query.
struct CloneAndSortReference {
    history_size: usize,
    percentile: f64,
    window: VecDeque<f64>,
}

impl CloneAndSortReference {
    fn new(history_size: usize, percentile: f64) -> Self {
        CloneAndSortReference {
            history_size,
            percentile,
            window: VecDeque::new(),
        }
    }

    fn observe(&mut self, raw_rtt_ms: f64) -> Option<f64> {
        if !raw_rtt_ms.is_finite() || raw_rtt_ms <= 0.0 {
            return None;
        }
        if self.window.len() == self.history_size {
            self.window.pop_front();
        }
        self.window.push_back(raw_rtt_ms);
        self.estimate()
    }

    fn estimate(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.window.iter().cloned().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("only finite values"));
        nc_stats::percentile_of_sorted(&sorted, self.percentile).ok()
    }
}

fn bits(value: Option<f64>) -> Option<u64> {
    value.map(f64::to_bits)
}

proptest! {
    #[test]
    fn incremental_window_matches_clone_and_sort(
        values in proptest::collection::vec(0.01f64..1e6, 0..400),
        history in 1usize..40,
        percentile in 0.0f64..=100.0,
    ) {
        let mut incremental = MovingPercentileFilter::new(history, percentile).unwrap();
        let mut reference = CloneAndSortReference::new(history, percentile);
        for &value in &values {
            prop_assert_eq!(
                bits(incremental.observe(value)),
                bits(reference.observe(value)),
                "estimates diverged at value {}", value
            );
            prop_assert_eq!(
                bits(incremental.current_estimate()),
                bits(reference.estimate())
            );
        }
    }

    #[test]
    fn duplicate_heavy_streams_stay_identical(
        // Tiny value alphabet: hammers the equal-element removal path where
        // binary search may land on any of several equal samples.
        values in proptest::collection::vec(1usize..6, 0..300),
        history in 1usize..10,
    ) {
        let mut incremental = MovingPercentileFilter::new(history, 25.0).unwrap();
        let mut reference = CloneAndSortReference::new(history, 25.0);
        for &index in &values {
            let value = index as f64 * 10.0;
            prop_assert_eq!(
                bits(incremental.observe(value)),
                bits(reference.observe(value))
            );
        }
    }

    #[test]
    fn invalid_samples_are_ignored_identically(
        selectors in proptest::collection::vec(0usize..5, 0..200),
        raws in proptest::collection::vec(0.01f64..1e4, 200..201),
    ) {
        let mut incremental = MovingPercentileFilter::new(4, 25.0).unwrap();
        let mut reference = CloneAndSortReference::new(4, 25.0);
        for (index, &selector) in selectors.iter().enumerate() {
            let value = match selector {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => -3.0,
                3 => 0.0,
                _ => raws[index % raws.len()],
            };
            prop_assert_eq!(
                bits(incremental.observe(value)),
                bits(reference.observe(value))
            );
        }
    }

    #[test]
    fn state_import_rebuilds_the_sorted_companion(
        before in proptest::collection::vec(0.01f64..1e4, 1..50),
        after in proptest::collection::vec(0.01f64..1e4, 1..50),
        history in 1usize..12,
    ) {
        let mut original = MovingPercentileFilter::new(history, 25.0).unwrap();
        let mut reference = CloneAndSortReference::new(history, 25.0);
        for &value in &before {
            original.observe(value);
            reference.observe(value);
        }
        let mut restored = MovingPercentileFilter::new(history, 25.0).unwrap();
        restored.import_state(&original.export_state()).unwrap();
        for &value in &after {
            prop_assert_eq!(
                bits(restored.observe(value)),
                bits(reference.observe(value))
            );
        }
    }
}
