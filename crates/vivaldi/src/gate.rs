//! MAD-based outlier gating of latency observations.
//!
//! The paper's MP filter cleans up *honest* measurement noise: queueing
//! spikes and heavy-tailed outliers on an otherwise truthful link. It has no
//! answer to a *Byzantine* peer — one that reports a displaced coordinate, a
//! bogus error estimate, or a deliberately inflated reply delay. Such a peer
//! produces a perfectly smooth stream of filtered observations that are
//! nevertheless wildly inconsistent with the embedding, and every one of
//! them yanks the victim's spring.
//!
//! The [`OutlierGate`] defends the update path with a robust statistic over
//! the *residual* of each observation — the filtered RTT minus the distance
//! the node's own coordinate predicts to the peer's claimed coordinate. For
//! a converged embedding and honest peers the residuals cluster near zero;
//! a coordinate liar or delay attacker shows up as a residual far outside
//! the cluster. The gate keeps a sliding window of recently *accepted*
//! residuals and rejects an observation whose residual deviates from the
//! window median by more than `mad_threshold` times the window's median
//! absolute deviation (MAD). Median and MAD have a 50 % breakdown point, so
//! the statistic itself survives a substantial minority of liars slipping
//! into the window.
//!
//! Two guards keep the gate from strangling an honest node:
//!
//! * during warm-up (fewer than `min_samples` accepted residuals) every
//!   observation is accepted — a fresh node's residuals are legitimately
//!   huge while its coordinate converges;
//! * the MAD is floored at `mad_floor_ms`, so a window of eerily consistent
//!   residuals (or an all-liar window, where MAD collapses toward zero)
//!   cannot turn the gate into a reject-everything filter.
//!
//! The gate also clamps the *remote error estimate* a peer reports to at
//! least [`OutlierGateConfig::min_remote_error`]: a liar advertising
//! near-zero error would otherwise grab close to the maximum sample weight
//! `w_s = e_i / (e_i + e_j)` and drag the victim twice as hard.
//!
//! The gate is **off by default** and entirely opt-in; see
//! `stable_nc::NodeConfigBuilder::outlier_gate`.

use serde::{Deserialize, Serialize};

/// Tuning parameters of the [`OutlierGate`].
///
/// The defaults (window 16, threshold 4 MADs, warm-up 8, MAD floor 10 ms,
/// remote-error floor 0.05) tolerate the lognormal jitter and drift of a
/// live wide-area link while rejecting coordinate lies displaced by a few
/// hundred milliseconds or more.
///
/// # Examples
///
/// ```
/// use nc_vivaldi::gate::OutlierGateConfig;
///
/// let config = OutlierGateConfig::default();
/// assert_eq!(config.window, 16);
/// assert!(config.mad_threshold > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutlierGateConfig {
    /// Number of most-recently accepted residuals the gate remembers.
    pub window: usize,
    /// Rejection threshold in MADs: an observation is rejected when its
    /// residual deviates from the window median by more than this many
    /// (floored) MADs.
    pub mad_threshold: f64,
    /// Number of residuals that must be accepted before the gate starts
    /// rejecting anything. Everything is accepted during warm-up.
    pub min_samples: usize,
    /// Lower bound on the MAD, in milliseconds. Keeps a too-consistent
    /// window from rejecting ordinary jitter.
    pub mad_floor_ms: f64,
    /// Lower bound applied to the error estimate a remote peer reports,
    /// blunting the extra pull of a liar advertising perfect confidence.
    pub min_remote_error: f64,
}

impl Default for OutlierGateConfig {
    fn default() -> Self {
        OutlierGateConfig {
            window: 16,
            mad_threshold: 4.0,
            min_samples: 8,
            mad_floor_ms: 10.0,
            min_remote_error: 0.05,
        }
    }
}

impl OutlierGateConfig {
    /// Checks the configuration for nonsense values.
    ///
    /// Returns a human-readable description of the first problem found, or
    /// `Ok(())` when the configuration is usable.
    pub fn validate(&self) -> Result<(), String> {
        if self.window < 2 {
            return Err(format!(
                "outlier gate window must be at least 2, got {}",
                self.window
            ));
        }
        if !self.mad_threshold.is_finite() || self.mad_threshold <= 0.0 {
            return Err(format!(
                "outlier gate MAD threshold must be finite and positive, got {}",
                self.mad_threshold
            ));
        }
        if !self.mad_floor_ms.is_finite() || self.mad_floor_ms < 0.0 {
            return Err(format!(
                "outlier gate MAD floor must be finite and non-negative, got {}",
                self.mad_floor_ms
            ));
        }
        if !self.min_remote_error.is_finite() || !(0.0..=1.0).contains(&self.min_remote_error) {
            return Err(format!(
                "outlier gate remote-error floor must lie in [0, 1], got {}",
                self.min_remote_error
            ));
        }
        Ok(())
    }
}

/// Sliding-window MAD rejector over observation residuals.
///
/// Allocation-free in steady state: the residual window is a fixed ring
/// buffer and the median/MAD computation reuses one sorted scratch buffer,
/// both sized once at construction.
///
/// # Examples
///
/// ```
/// use nc_vivaldi::gate::{OutlierGate, OutlierGateConfig};
///
/// let mut gate = OutlierGate::new(OutlierGateConfig::default());
/// // Warm up with plausible residuals ...
/// for _ in 0..8 {
///     assert!(gate.admits(2.0));
///     gate.record(2.0);
/// }
/// // ... then a 500 ms-inconsistent observation is rejected,
/// assert!(!gate.admits(500.0));
/// // while an ordinary one still passes.
/// assert!(gate.admits(5.0));
/// ```
#[derive(Debug, Clone)]
pub struct OutlierGate {
    config: OutlierGateConfig,
    /// Ring buffer of the residuals of accepted observations.
    residuals: Vec<f64>,
    /// Next write position in `residuals`.
    head: usize,
    /// Total residuals recorded (saturating at the window size for
    /// occupancy purposes; kept as a full count for diagnostics).
    recorded: u64,
    /// Reusable scratch for the sorted copy of the window.
    scratch: Vec<f64>,
}

impl OutlierGate {
    /// Builds a gate with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`OutlierGateConfig::validate`].
    pub fn new(config: OutlierGateConfig) -> Self {
        if let Err(error) = config.validate() {
            panic!("invalid outlier gate config: {error}");
        }
        let window = config.window;
        OutlierGate {
            config,
            residuals: Vec::with_capacity(window),
            head: 0,
            recorded: 0,
            scratch: Vec::with_capacity(window),
        }
    }

    /// The tuning this gate runs with.
    pub fn config(&self) -> &OutlierGateConfig {
        &self.config
    }

    /// Number of residuals recorded so far (not capped at the window size).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Whether an observation with this residual (filtered RTT minus
    /// coordinate-predicted distance, in milliseconds) should be admitted to
    /// the update path.
    ///
    /// Non-finite residuals are always rejected. During warm-up — fewer than
    /// `min_samples` residuals recorded — every finite residual is admitted.
    pub fn admits(&mut self, residual_ms: f64) -> bool {
        if !residual_ms.is_finite() {
            return false;
        }
        if (self.recorded as usize) < self.config.min_samples || self.residuals.len() < 2 {
            return true;
        }
        let (median, mad) = self.median_and_mad();
        let spread = mad.max(self.config.mad_floor_ms);
        (residual_ms - median).abs() <= self.config.mad_threshold * spread
    }

    /// Records the residual of an observation that was admitted (and
    /// applied). Rejected observations must *not* be recorded — the window
    /// models the residual distribution of the updates actually taken.
    pub fn record(&mut self, residual_ms: f64) {
        if !residual_ms.is_finite() {
            return;
        }
        if self.residuals.len() < self.config.window {
            self.residuals.push(residual_ms);
        } else {
            self.residuals[self.head] = residual_ms;
        }
        self.head = (self.head + 1) % self.config.window;
        self.recorded = self.recorded.saturating_add(1);
    }

    /// Median and median-absolute-deviation of the current window.
    fn median_and_mad(&mut self) -> (f64, f64) {
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.residuals);
        let median = median_in_place(&mut self.scratch);
        for value in &mut self.scratch {
            *value = (*value - median).abs();
        }
        let mad = median_in_place(&mut self.scratch);
        (median, mad)
    }
}

/// Median of a non-empty slice, sorting it in place.
fn median_in_place(values: &mut [f64]) -> f64 {
    debug_assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).expect("residuals are finite"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warmed_gate() -> OutlierGate {
        let mut gate = OutlierGate::new(OutlierGateConfig::default());
        // Honest residuals: small, mildly noisy.
        for i in 0..12 {
            let residual = (i % 5) as f64 - 2.0;
            assert!(gate.admits(residual));
            gate.record(residual);
        }
        gate
    }

    #[test]
    fn warmup_admits_everything_finite() {
        let mut gate = OutlierGate::new(OutlierGateConfig::default());
        assert!(gate.admits(10_000.0));
        assert!(gate.admits(-10_000.0));
        assert!(!gate.admits(f64::NAN));
        assert!(!gate.admits(f64::INFINITY));
    }

    #[test]
    fn rejects_far_outliers_after_warmup() {
        let mut gate = warmed_gate();
        assert!(!gate.admits(500.0));
        assert!(!gate.admits(-500.0));
        assert!(gate.admits(3.0));
    }

    #[test]
    fn mad_floor_keeps_ordinary_jitter_admissible() {
        let config = OutlierGateConfig::default();
        let mut gate = OutlierGate::new(config.clone());
        // A pathologically consistent window: MAD would be 0 without the
        // floor and everything off the median would be rejected.
        for _ in 0..config.window {
            gate.record(1.0);
        }
        assert!(gate.admits(1.0 + config.mad_threshold * config.mad_floor_ms - 1e-9));
        assert!(!gate.admits(1.0 + config.mad_threshold * config.mad_floor_ms + 1.0));
    }

    #[test]
    fn window_slides_and_adapts() {
        let mut gate = warmed_gate();
        assert!(!gate.admits(200.0));
        // A genuine regime change (say, a route change adding 200 ms) is
        // re-learned once the node's coordinate catches up: as accepted
        // residuals migrate, the window median follows.
        for _ in 0..OutlierGateConfig::default().window {
            gate.record(40.0);
        }
        assert!(gate.admits(41.0));
        assert!(!gate.admits(0.0) || !gate.admits(300.0));
    }

    #[test]
    fn recorded_counts_all_records() {
        let mut gate = OutlierGate::new(OutlierGateConfig::default());
        for _ in 0..40 {
            gate.record(1.0);
        }
        assert_eq!(gate.recorded(), 40);
        assert_eq!(gate.residuals.len(), gate.config.window);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let config = OutlierGateConfig {
            window: 1,
            ..OutlierGateConfig::default()
        };
        assert!(config.validate().is_err());
        let config = OutlierGateConfig {
            mad_threshold: 0.0,
            ..OutlierGateConfig::default()
        };
        assert!(config.validate().is_err());
        let config = OutlierGateConfig {
            mad_floor_ms: f64::NAN,
            ..OutlierGateConfig::default()
        };
        assert!(config.validate().is_err());
        let config = OutlierGateConfig {
            min_remote_error: 1.5,
            ..OutlierGateConfig::default()
        };
        assert!(config.validate().is_err());
        assert!(OutlierGateConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid outlier gate config")]
    fn new_panics_on_invalid_config() {
        let config = OutlierGateConfig {
            mad_threshold: -1.0,
            ..OutlierGateConfig::default()
        };
        let _ = OutlierGate::new(config);
    }

    #[test]
    fn config_serializes_round_trip() {
        let config = OutlierGateConfig::default();
        let text = serde::json::to_string(&config);
        let back: OutlierGateConfig = serde::json::from_str(&text).unwrap();
        assert_eq!(back, config);
    }
}
