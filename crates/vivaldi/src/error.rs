//! Error types and the relative-error accuracy metric.

use serde::{Deserialize, Serialize};

/// Errors raised when constructing or combining coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordinateError {
    /// The coordinate would have zero dimensions.
    Dimension,
    /// The coordinate would exceed [`crate::coordinate::MAX_DIMS`]
    /// dimensions (the inline-storage capacity).
    TooManyDimensions {
        /// The number of dimensions that was requested.
        requested: usize,
    },
    /// A component or height was NaN or infinite.
    NotFinite,
    /// The height was negative.
    NegativeHeight,
}

impl std::fmt::Display for CoordinateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordinateError::Dimension => write!(f, "coordinate must have at least one dimension"),
            CoordinateError::TooManyDimensions { requested } => write!(
                f,
                "coordinate limited to {} dimensions, requested {requested}",
                crate::coordinate::MAX_DIMS
            ),
            CoordinateError::NotFinite => write!(f, "coordinate components must be finite"),
            CoordinateError::NegativeHeight => write!(f, "coordinate height must be non-negative"),
        }
    }
}

impl std::error::Error for CoordinateError {}

/// Relative error of a latency prediction: `| predicted − observed | /
/// observed`.
///
/// This is the accuracy metric the paper uses throughout ("we use relative
/// error as the metric of accuracy because it facilitates comparison of a
/// wide range of latencies", §II-A). Observations that are zero or negative
/// (possible with a coarse timer) are clamped to a small positive floor so
/// the ratio stays finite.
///
/// # Examples
///
/// ```
/// let e = nc_vivaldi::relative_error(90.0, 100.0);
/// assert!((e - 0.1).abs() < 1e-12);
/// ```
pub fn relative_error(predicted_ms: f64, observed_ms: f64) -> f64 {
    let observed = observed_ms.max(MIN_LATENCY_MS);
    (predicted_ms - observed).abs() / observed
}

/// Latencies below this floor (milliseconds) are clamped before being used
/// as the denominator of a relative error or inside the update rule. The
/// paper's own measurement software could not resolve latencies much below a
/// tenth of a millisecond.
pub const MIN_LATENCY_MS: f64 = 0.1;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_is_nonempty() {
        for e in [
            CoordinateError::Dimension,
            CoordinateError::TooManyDimensions { requested: 99 },
            CoordinateError::NotFinite,
            CoordinateError::NegativeHeight,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn exact_prediction_has_zero_error() {
        assert_eq!(relative_error(80.0, 80.0), 0.0);
    }

    #[test]
    fn overestimate_and_underestimate_are_symmetric() {
        assert_eq!(relative_error(110.0, 100.0), relative_error(90.0, 100.0));
    }

    #[test]
    fn zero_observation_is_clamped() {
        let e = relative_error(1.0, 0.0);
        assert!(e.is_finite());
        assert!(e > 0.0);
    }

    proptest! {
        #[test]
        fn relative_error_is_nonnegative_and_finite(
            predicted in 0.0f64..1e5,
            observed in 0.0f64..1e5,
        ) {
            let e = relative_error(predicted, observed);
            prop_assert!(e >= 0.0);
            prop_assert!(e.is_finite());
        }
    }
}
