//! Tuning parameters for the Vivaldi update rule.

use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::VivaldiState`].
///
/// The paper runs Vivaldi in three dimensions with `c_c = c_e = 0.25` (the
/// values of the original authors' p2psim simulator) and, when *confidence
/// building* is enabled, treats a prediction and an observation within 3 ms
/// of each other as equal. Use [`VivaldiConfig::paper_defaults`] for exactly
/// that configuration, or the builder-style setters to deviate from it.
///
/// # Examples
///
/// ```
/// use nc_vivaldi::VivaldiConfig;
///
/// let config = VivaldiConfig::paper_defaults()
///     .with_dimensions(2)
///     .with_confidence_building(Some(3.0));
/// assert_eq!(config.dimensions(), 2);
/// assert_eq!(config.error_margin_ms(), Some(3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VivaldiConfig {
    dimensions: usize,
    cc: f64,
    ce: f64,
    error_margin_ms: Option<f64>,
    initial_error_estimate: f64,
    max_observed_latency_ms: f64,
    seed: u64,
}

impl VivaldiConfig {
    /// The configuration used throughout the paper's evaluation: three
    /// dimensions, `c_c = c_e = 0.25`, no height, confidence building
    /// disabled (it is switched on only for the Figure 6 cluster
    /// experiment), initial error estimate of 1.0 (no confidence at all).
    pub fn paper_defaults() -> Self {
        VivaldiConfig {
            dimensions: 3,
            cc: 0.25,
            ce: 0.25,
            error_margin_ms: None,
            initial_error_estimate: 1.0,
            max_observed_latency_ms: 120_000.0,
            seed: 0x5eed_c0de,
        }
    }

    /// Number of Euclidean dimensions of the coordinate space.
    pub fn dimensions(&self) -> usize {
        self.dimensions
    }

    /// The coordinate tuning constant `c_c` (maximum fraction of the spring
    /// displacement applied per observation).
    pub fn cc(&self) -> f64 {
        self.cc
    }

    /// The confidence tuning constant `c_e` (maximum weight a single
    /// observation has on the error estimate).
    pub fn ce(&self) -> f64 {
        self.ce
    }

    /// The measurement-error margin in milliseconds when confidence building
    /// (§IV-B) is enabled, or `None` when disabled.
    pub fn error_margin_ms(&self) -> Option<f64> {
        self.error_margin_ms
    }

    /// Error estimate assigned to a brand-new node (1.0 = completely
    /// unconfident).
    pub fn initial_error_estimate(&self) -> f64 {
        self.initial_error_estimate
    }

    /// Observations above this bound (milliseconds) are rejected outright by
    /// the state machine as implausible (two minutes by default — far above
    /// any real round-trip time, so only guards against corrupt input).
    pub fn max_observed_latency_ms(&self) -> f64 {
        self.max_observed_latency_ms
    }

    /// Seed for the deterministic direction chooser used when two nodes
    /// occupy the same point (e.g. both at the origin during bootstrap).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the number of dimensions (must be in `1..=MAX_DIMS`).
    ///
    /// # Panics
    ///
    /// Panics when `dimensions == 0` or when `dimensions` exceeds the inline
    /// coordinate capacity [`crate::coordinate::MAX_DIMS`].
    pub fn with_dimensions(mut self, dimensions: usize) -> Self {
        assert!(
            dimensions > 0,
            "coordinate space must have at least one dimension"
        );
        assert!(
            dimensions <= crate::coordinate::MAX_DIMS,
            "coordinate space limited to {} dimensions, requested {dimensions}",
            crate::coordinate::MAX_DIMS
        );
        self.dimensions = dimensions;
        self
    }

    /// Sets the coordinate constant `c_c`. The paper notes values in
    /// `0.05..=0.25` behave similarly; values outside `(0, 1]` are rejected.
    ///
    /// # Panics
    ///
    /// Panics when `cc` is not in `(0.0, 1.0]`.
    pub fn with_cc(mut self, cc: f64) -> Self {
        assert!(cc > 0.0 && cc <= 1.0, "c_c must be in (0, 1]");
        self.cc = cc;
        self
    }

    /// Sets the confidence constant `c_e`.
    ///
    /// # Panics
    ///
    /// Panics when `ce` is not in `(0.0, 1.0]`.
    pub fn with_ce(mut self, ce: f64) -> Self {
        assert!(ce > 0.0 && ce <= 1.0, "c_e must be in (0, 1]");
        self.ce = ce;
        self
    }

    /// Enables confidence building with the given measurement-error margin in
    /// milliseconds (the paper uses 3 ms), or disables it with `None`.
    ///
    /// # Panics
    ///
    /// Panics when the margin is not a positive finite number.
    pub fn with_confidence_building(mut self, margin_ms: Option<f64>) -> Self {
        if let Some(m) = margin_ms {
            assert!(m.is_finite() && m > 0.0, "error margin must be positive");
        }
        self.error_margin_ms = margin_ms;
        self
    }

    /// Sets the initial error estimate in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when the value is outside `(0.0, 1.0]`.
    pub fn with_initial_error_estimate(mut self, estimate: f64) -> Self {
        assert!(
            estimate > 0.0 && estimate <= 1.0,
            "initial error estimate must be in (0, 1]"
        );
        self.initial_error_estimate = estimate;
        self
    }

    /// Sets the upper bound on plausible observations in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics when the bound is not a positive finite number.
    pub fn with_max_observed_latency_ms(mut self, bound: f64) -> Self {
        assert!(
            bound.is_finite() && bound > 0.0,
            "latency bound must be positive"
        );
        self.max_observed_latency_ms = bound;
        self
    }

    /// Sets the seed of the deterministic tie-break direction chooser.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_ii() {
        let c = VivaldiConfig::paper_defaults();
        assert_eq!(c.dimensions(), 3);
        assert_eq!(c.cc(), 0.25);
        assert_eq!(c.ce(), 0.25);
        assert_eq!(c.error_margin_ms(), None);
        assert_eq!(c.initial_error_estimate(), 1.0);
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(VivaldiConfig::default(), VivaldiConfig::paper_defaults());
    }

    #[test]
    fn builder_setters_apply() {
        let c = VivaldiConfig::paper_defaults()
            .with_dimensions(5)
            .with_cc(0.05)
            .with_ce(0.1)
            .with_confidence_building(Some(3.0))
            .with_initial_error_estimate(0.5)
            .with_max_observed_latency_ms(10_000.0)
            .with_seed(7);
        assert_eq!(c.dimensions(), 5);
        assert_eq!(c.cc(), 0.05);
        assert_eq!(c.ce(), 0.1);
        assert_eq!(c.error_margin_ms(), Some(3.0));
        assert_eq!(c.initial_error_estimate(), 0.5);
        assert_eq!(c.max_observed_latency_ms(), 10_000.0);
        assert_eq!(c.seed(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dimensions_panics() {
        let _ = VivaldiConfig::paper_defaults().with_dimensions(0);
    }

    #[test]
    #[should_panic(expected = "c_c must be in")]
    fn bad_cc_panics() {
        let _ = VivaldiConfig::paper_defaults().with_cc(1.5);
    }

    #[test]
    #[should_panic(expected = "error margin must be positive")]
    fn bad_margin_panics() {
        let _ = VivaldiConfig::paper_defaults().with_confidence_building(Some(-1.0));
    }
}
