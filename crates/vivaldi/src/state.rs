//! The per-node Vivaldi algorithm state and update rule (paper Figure 1).

use serde::{Deserialize, Serialize};

use crate::config::VivaldiConfig;
use crate::coordinate::{self as nc_coordinate, Coordinate};
use crate::error::{relative_error, MIN_LATENCY_MS};

/// One latency observation of a remote node: the remote coordinate, the
/// remote node's error estimate `w_j`, and the measured round-trip latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteObservation {
    remote_coordinate: Coordinate,
    remote_error_estimate: f64,
    rtt_ms: f64,
}

impl RemoteObservation {
    /// Builds an observation. The remote error estimate is clamped into
    /// `[MIN_ERROR_ESTIMATE, 1.0]` — a non-finite value (possible from a
    /// corrupt or hostile wire message, since `NaN.clamp(..)` stays NaN) is
    /// treated as 1.0, i.e. a completely unconfident peer. The RTT is used
    /// as provided (the state machine validates it against the configured
    /// plausibility bound).
    pub fn new(remote_coordinate: Coordinate, remote_error_estimate: f64, rtt_ms: f64) -> Self {
        let remote_error_estimate = if remote_error_estimate.is_finite() {
            remote_error_estimate.clamp(MIN_ERROR_ESTIMATE, 1.0)
        } else {
            1.0
        };
        RemoteObservation {
            remote_coordinate,
            remote_error_estimate,
            rtt_ms,
        }
    }

    /// The remote node's coordinate at observation time.
    pub fn remote_coordinate(&self) -> &Coordinate {
        &self.remote_coordinate
    }

    /// The remote node's error estimate `w_j`.
    pub fn remote_error_estimate(&self) -> f64 {
        self.remote_error_estimate
    }

    /// The measured round-trip latency in milliseconds.
    pub fn rtt_ms(&self) -> f64 {
        self.rtt_ms
    }
}

/// What one call to [`VivaldiState::observe`] did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateOutcome {
    /// Relative error of the pre-update prediction against this observation.
    pub relative_error: f64,
    /// Magnitude of the coordinate displacement applied (milliseconds in the
    /// coordinate space). This is the per-observation contribution to the
    /// paper's instability metric.
    pub displacement_ms: f64,
    /// The node's error estimate after the update.
    pub error_estimate: f64,
    /// True when the observation was rejected (non-finite, non-positive or
    /// implausibly large RTT) and no state changed.
    pub rejected: bool,
    /// True when confidence building considered the prediction and the
    /// observation equal (within the measurement-error margin), so the error
    /// estimate was driven toward zero and the coordinate left in place.
    pub within_error_margin: bool,
}

/// Smallest error estimate a node may report. A node that claimed a perfect
/// (zero) error estimate would acquire infinite pull on its neighbours
/// through the `w_i / (w_i + w_j)` balance, so Vivaldi implementations floor
/// it at a small positive value.
pub const MIN_ERROR_ESTIMATE: f64 = 1e-4;

/// Per-node Vivaldi algorithm state: the coordinate `x_i` and the error
/// estimate `w_i` (the paper calls `1 − w_i` the node's *confidence*).
///
/// The update rule follows Figure 1 of the paper:
///
/// ```text
/// w_s = w_i / (w_i + w_j)                     observation weight
/// ε   = | ‖x_i − x_j‖ − l | / l               relative error of the sample
/// α   = c_e × w_s
/// w_i = α × ε + (1 − α) × w_i                 adaptive EWMA of the error
/// δ   = c_c × w_s
/// x_i = x_i + δ × (l − ‖x_i − x_j‖) × u(x_i − x_j)
/// ```
///
/// The displacement on the last line follows the original Vivaldi paper
/// (Dabek et al., SIGCOMM 2004): the spring pushes the nodes apart when the
/// measured latency exceeds the coordinate distance and pulls them together
/// when it is smaller. (Figure 1 of the TR prints the force term as
/// `(‖x_i − x_j‖ − l)`, which with the unit vector `u(x_i − x_j)` would move
/// coordinates *away* from under-estimated neighbours; we keep the physical
/// spring semantics, which is also what the authors' own simulator does.)
///
/// # Examples
///
/// ```
/// use nc_vivaldi::{RemoteObservation, VivaldiConfig, VivaldiState};
///
/// let mut node = VivaldiState::new(VivaldiConfig::paper_defaults());
/// let remote = VivaldiState::new(VivaldiConfig::paper_defaults());
/// let obs = RemoteObservation::new(remote.coordinate().clone(), remote.error_estimate(), 50.0);
/// let outcome = node.observe(&obs);
/// assert!(!outcome.rejected);
/// assert!(outcome.displacement_ms > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VivaldiState {
    config: VivaldiConfig,
    coordinate: Coordinate,
    error_estimate: f64,
    observation_count: u64,
    total_displacement_ms: f64,
    tie_break_state: u64,
}

impl VivaldiState {
    /// Creates a node at the origin with the configured initial error
    /// estimate.
    pub fn new(config: VivaldiConfig) -> Self {
        let coordinate = Coordinate::origin(config.dimensions());
        let error_estimate = config.initial_error_estimate();
        let tie_break_state = config.seed() | 1;
        VivaldiState {
            config,
            coordinate,
            error_estimate,
            observation_count: 0,
            total_displacement_ms: 0.0,
            tie_break_state,
        }
    }

    /// Creates a node at an explicit starting coordinate (useful in tests and
    /// when warm-starting from a persisted coordinate).
    pub fn with_coordinate(config: VivaldiConfig, coordinate: Coordinate) -> Self {
        assert_eq!(
            coordinate.dimensions(),
            config.dimensions(),
            "starting coordinate must match the configured dimensionality"
        );
        let mut state = Self::new(config);
        state.coordinate = coordinate;
        state
    }

    /// Replaces the tuning constants while keeping the runtime state
    /// (coordinate, error estimate, counters, tie-break RNG). Used when
    /// restoring persisted state under a — possibly updated — deployment
    /// configuration: the constants always come from the configuration, the
    /// trajectory from the persisted state. The error estimate is
    /// re-clamped into its valid range so corrupt persisted values cannot
    /// enter the update rule.
    ///
    /// # Panics
    ///
    /// Panics when the new configuration's dimensionality does not match
    /// the current coordinate (callers restoring from untrusted input must
    /// check dimensions first).
    pub fn replace_config(&mut self, config: VivaldiConfig) {
        assert_eq!(
            self.coordinate.dimensions(),
            config.dimensions(),
            "replacement configuration must match the coordinate dimensionality"
        );
        self.config = config;
        self.error_estimate = if self.error_estimate.is_finite() {
            self.error_estimate.clamp(MIN_ERROR_ESTIMATE, 1.0)
        } else {
            1.0
        };
    }

    /// The node's current system-level coordinate `x_i`.
    pub fn coordinate(&self) -> &Coordinate {
        &self.coordinate
    }

    /// The node's error estimate `w_i ∈ [MIN_ERROR_ESTIMATE, 1]`. Lower is
    /// better.
    pub fn error_estimate(&self) -> f64 {
        self.error_estimate
    }

    /// The node's confidence, `1 − w_i`, the quantity plotted in the paper's
    /// Figure 6. Ranges from 0 (just joined, no idea where it is) to ~1
    /// (coordinate predicts recent observations almost exactly).
    pub fn confidence(&self) -> f64 {
        1.0 - self.error_estimate
    }

    /// Number of accepted observations so far.
    pub fn observation_count(&self) -> u64 {
        self.observation_count
    }

    /// Sum of all coordinate displacements so far (milliseconds). Dividing by
    /// elapsed time gives the paper's stability metric for this node.
    pub fn total_displacement_ms(&self) -> f64 {
        self.total_displacement_ms
    }

    /// The configuration this node runs with.
    pub fn config(&self) -> &VivaldiConfig {
        &self.config
    }

    /// Predicted round-trip latency to a remote coordinate, in milliseconds.
    pub fn estimated_rtt_ms(&self, remote: &Coordinate) -> f64 {
        self.coordinate.distance(remote)
    }

    /// Applies one latency observation, returning what changed.
    ///
    /// Rejected observations (non-finite, non-positive, or larger than the
    /// configured plausibility bound) leave the state untouched and are
    /// flagged in the outcome; the caller decides whether to count them.
    pub fn observe(&mut self, observation: &RemoteObservation) -> UpdateOutcome {
        let rtt = observation.rtt_ms();
        if !rtt.is_finite() || rtt <= 0.0 || rtt > self.config.max_observed_latency_ms() {
            return UpdateOutcome {
                relative_error: f64::NAN,
                displacement_ms: 0.0,
                error_estimate: self.error_estimate,
                rejected: true,
                within_error_margin: false,
            };
        }
        let rtt = rtt.max(MIN_LATENCY_MS);
        let remote = observation.remote_coordinate();
        let predicted = self.coordinate.distance(remote);

        // Confidence building (§IV-B): within the measurement-error margin the
        // prediction and observation are considered equal.
        let within_margin = self
            .config
            .error_margin_ms()
            .map(|margin| (predicted - rtt).abs() <= margin)
            .unwrap_or(false);

        // Line 1: observation weight from the balance of error estimates.
        let wi = self.error_estimate.clamp(MIN_ERROR_ESTIMATE, 1.0);
        let wj = observation.remote_error_estimate();
        let ws = wi / (wi + wj);

        // Line 2: relative error of this sample (zero when within the margin).
        let sample_error = if within_margin {
            0.0
        } else {
            relative_error(predicted, rtt)
        };

        // Lines 3–4: adaptive EWMA of the error estimate.
        let alpha = self.config.ce() * ws;
        self.error_estimate = (alpha * sample_error + (1.0 - alpha) * self.error_estimate)
            .clamp(MIN_ERROR_ESTIMATE, 1.0);

        // Lines 5–6: move along the spring force, unless the sample was
        // within the error margin (no movement necessary — the coordinate
        // already explains the observation).
        let displacement_ms = if within_margin {
            0.0
        } else {
            let delta = self.config.cc() * ws;
            let force = rtt - predicted;
            // The direction vector lives entirely on the stack (inline
            // coordinate) and is scaled and applied in place: the whole
            // spring step performs zero heap allocations.
            let mut displacement = match self.coordinate.unit_vector_from(remote) {
                Some(u) => u,
                None => self.random_unit_vector(),
            };
            displacement.scale_in_place(delta * force);
            let magnitude = displacement.magnitude();
            self.coordinate.displace_by(&displacement);
            magnitude
        };

        self.observation_count += 1;
        self.total_displacement_ms += displacement_ms;

        UpdateOutcome {
            relative_error: relative_error(predicted, rtt),
            displacement_ms,
            error_estimate: self.error_estimate,
            rejected: false,
            within_error_margin: within_margin,
        }
    }

    /// Deterministic pseudo-random unit vector, used only to separate nodes
    /// whose Euclidean positions coincide (e.g. everyone starts at the
    /// origin). A SplitMix64 step keeps the crate free of external RNG
    /// dependencies while remaining reproducible for a given seed.
    fn random_unit_vector(&mut self) -> Coordinate {
        let dims = self.config.dimensions();
        let mut components = [0.0; nc_coordinate::MAX_DIMS];
        loop {
            for slot in components[..dims].iter_mut() {
                // SplitMix64.
                self.tie_break_state = self.tie_break_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.tie_break_state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                // Map to (-1, 1).
                let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
                *slot = unit * 2.0 - 1.0;
            }
            let norm: f64 = components[..dims].iter().map(|c| c * c).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for slot in components[..dims].iter_mut() {
                    *slot /= norm;
                }
                return Coordinate::new(&components[..dims]).expect("normalized finite vector");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper_state() -> VivaldiState {
        VivaldiState::new(VivaldiConfig::paper_defaults())
    }

    fn observation_of(state: &VivaldiState, rtt: f64) -> RemoteObservation {
        RemoteObservation::new(state.coordinate().clone(), state.error_estimate(), rtt)
    }

    #[test]
    fn new_node_starts_at_origin_with_no_confidence() {
        let s = paper_state();
        assert_eq!(s.coordinate(), &Coordinate::origin(3));
        assert_eq!(s.error_estimate(), 1.0);
        assert_eq!(s.confidence(), 0.0);
        assert_eq!(s.observation_count(), 0);
    }

    #[test]
    fn rejects_bad_rtts() {
        let mut s = paper_state();
        let remote = paper_state();
        for bad in [f64::NAN, f64::INFINITY, 0.0, -5.0, 1e9] {
            let outcome = s.observe(&RemoteObservation::new(
                remote.coordinate().clone(),
                remote.error_estimate(),
                bad,
            ));
            assert!(outcome.rejected, "rtt {bad} should be rejected");
        }
        assert_eq!(s.observation_count(), 0);
        assert_eq!(s.coordinate(), &Coordinate::origin(3));
    }

    #[test]
    fn colocated_nodes_separate() {
        let mut s = paper_state();
        let remote = paper_state();
        let outcome = s.observe(&observation_of(&remote, 100.0));
        assert!(!outcome.rejected);
        assert!(outcome.displacement_ms > 0.0);
        assert!(s.coordinate().euclidean_magnitude() > 0.0);
    }

    #[test]
    fn two_nodes_converge_to_their_latency() {
        let config = VivaldiConfig::paper_defaults();
        let mut a = VivaldiState::new(config.clone());
        let mut b = VivaldiState::new(config);
        for _ in 0..500 {
            let to_a = observation_of(&b, 120.0);
            a.observe(&to_a);
            let to_b = observation_of(&a, 120.0);
            b.observe(&to_b);
        }
        let predicted = a.coordinate().distance(b.coordinate());
        assert!(
            (predicted - 120.0).abs() < 10.0,
            "expected ~120 ms, predicted {predicted:.1} ms"
        );
        assert!(a.error_estimate() < 0.2);
    }

    #[test]
    fn triangle_of_nodes_converges() {
        // Three nodes with consistent latencies 60/80/100 (a valid triangle)
        // should embed with low error.
        let config = VivaldiConfig::paper_defaults().with_dimensions(2);
        let mut nodes = [
            VivaldiState::new(config.clone().with_seed(1)),
            VivaldiState::new(config.clone().with_seed(2)),
            VivaldiState::new(config.with_seed(3)),
        ];
        let rtt = |i: usize, j: usize| -> f64 {
            match (i.min(j), i.max(j)) {
                (0, 1) => 60.0,
                (0, 2) => 80.0,
                (1, 2) => 100.0,
                _ => unreachable!(),
            }
        };
        for round in 0..2000 {
            let i = round % 3;
            let j = (round + 1 + round / 3 % 2) % 3;
            if i == j {
                continue;
            }
            let obs = RemoteObservation::new(
                nodes[j].coordinate().clone(),
                nodes[j].error_estimate(),
                rtt(i, j),
            );
            nodes[i].observe(&obs);
        }
        for i in 0..3 {
            for j in (i + 1)..3 {
                let predicted = nodes[i].coordinate().distance(nodes[j].coordinate());
                let err = relative_error(predicted, rtt(i, j));
                assert!(
                    err < 0.25,
                    "pair ({i},{j}) predicted {predicted:.1} vs {} (err {err:.2})",
                    rtt(i, j)
                );
            }
        }
    }

    #[test]
    fn confidence_building_treats_margin_as_equal() {
        let config = VivaldiConfig::paper_defaults().with_confidence_building(Some(3.0));
        let mut a = VivaldiState::with_coordinate(
            config.clone(),
            Coordinate::new(vec![1.0, 0.0, 0.0]).unwrap(),
        );
        let remote = VivaldiState::new(config);
        // Predicted distance 1 ms, observed 3 ms: within the 3 ms margin.
        let outcome = a.observe(&RemoteObservation::new(
            remote.coordinate().clone(),
            0.5,
            3.0,
        ));
        assert!(outcome.within_error_margin);
        assert_eq!(outcome.displacement_ms, 0.0);
        // The error estimate shrinks because the sample error was counted as 0.
        assert!(a.error_estimate() < 1.0);
    }

    #[test]
    fn without_confidence_building_small_jitter_hurts_confidence() {
        // The Figure 6 effect: on a ~1 ms link, a 3 ms sample produces a huge
        // relative error and damages confidence unless the margin is allowed.
        let config = VivaldiConfig::paper_defaults();
        let mut with_margin = VivaldiState::with_coordinate(
            config.clone().with_confidence_building(Some(3.0)),
            Coordinate::new(vec![1.0, 0.0, 0.0]).unwrap(),
        );
        let mut without_margin = VivaldiState::with_coordinate(
            config.clone(),
            Coordinate::new(vec![1.0, 0.0, 0.0]).unwrap(),
        );
        let remote = VivaldiState::new(config);
        // Drive both to moderate confidence first with exact 1 ms samples.
        for _ in 0..50 {
            let obs = RemoteObservation::new(remote.coordinate().clone(), 0.5, 1.0);
            with_margin.observe(&obs);
            without_margin.observe(&obs);
        }
        // Now a burst of 3 ms jitter samples.
        for _ in 0..20 {
            let obs = RemoteObservation::new(remote.coordinate().clone(), 0.5, 3.0);
            with_margin.observe(&obs);
            without_margin.observe(&obs);
        }
        assert!(
            with_margin.confidence() > without_margin.confidence(),
            "confidence building should preserve confidence ({} vs {})",
            with_margin.confidence(),
            without_margin.confidence()
        );
    }

    #[test]
    fn error_estimate_stays_in_bounds() {
        let mut s = paper_state();
        let remote = paper_state();
        for i in 0..200 {
            // Wildly inconsistent observations.
            let rtt = if i % 2 == 0 { 1.0 } else { 5_000.0 };
            s.observe(&observation_of(&remote, rtt));
            assert!(s.error_estimate() >= MIN_ERROR_ESTIMATE);
            assert!(s.error_estimate() <= 1.0);
        }
    }

    #[test]
    fn total_displacement_accumulates() {
        let mut s = paper_state();
        let remote = paper_state();
        let mut sum = 0.0;
        for _ in 0..20 {
            let outcome = s.observe(&observation_of(&remote, 80.0));
            sum += outcome.displacement_ms;
        }
        assert!((s.total_displacement_ms() - sum).abs() < 1e-9);
        assert_eq!(s.observation_count(), 20);
    }

    #[test]
    fn with_coordinate_requires_matching_dimensions() {
        let config = VivaldiConfig::paper_defaults().with_dimensions(2);
        let result = std::panic::catch_unwind(|| {
            VivaldiState::with_coordinate(config, Coordinate::origin(3))
        });
        assert!(result.is_err());
    }

    #[test]
    fn confident_remote_pulls_harder_than_unconfident() {
        // A node observing a very confident neighbour (low w_j) should move
        // further than when observing an unconfident one, all else equal.
        let config = VivaldiConfig::paper_defaults();
        let start = Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap();
        let remote_coord = Coordinate::origin(3);

        let mut toward_confident = VivaldiState::with_coordinate(config.clone(), start.clone());
        let confident = RemoteObservation::new(remote_coord.clone(), 0.01, 100.0);
        let d_confident = toward_confident.observe(&confident).displacement_ms;

        let mut toward_unsure = VivaldiState::with_coordinate(config, start);
        let unsure = RemoteObservation::new(remote_coord, 1.0, 100.0);
        let d_unsure = toward_unsure.observe(&unsure).displacement_ms;

        assert!(
            d_confident > d_unsure,
            "confident neighbour should exert more pull ({d_confident} vs {d_unsure})"
        );
    }

    proptest! {
        #[test]
        fn observe_never_produces_nan_coordinates(
            rtts in proptest::collection::vec(0.1f64..3000.0, 1..200),
            remote_x in -500.0f64..500.0,
            remote_y in -500.0f64..500.0,
            remote_z in -500.0f64..500.0,
        ) {
            let mut s = paper_state();
            let remote = Coordinate::new(vec![remote_x, remote_y, remote_z]).unwrap();
            for rtt in rtts {
                s.observe(&RemoteObservation::new(remote.clone(), 0.5, rtt));
                prop_assert!(s.coordinate().components().iter().all(|c| c.is_finite()));
                prop_assert!(s.error_estimate().is_finite());
            }
        }

        #[test]
        fn displacement_bounded_by_cc_times_force(
            rtt in 0.1f64..5000.0,
            px in -1000.0f64..1000.0,
        ) {
            // A single update moves the coordinate by at most c_c * |rtt - predicted|
            // because w_s <= 1.
            let config = VivaldiConfig::paper_defaults();
            let start = Coordinate::new(vec![px, 0.0, 0.0]).unwrap();
            let mut s = VivaldiState::with_coordinate(config.clone(), start.clone());
            let remote = Coordinate::origin(3);
            let predicted = start.distance(&remote);
            let outcome = s.observe(&RemoteObservation::new(remote, 0.5, rtt));
            let bound = config.cc() * (rtt.max(MIN_LATENCY_MS) - predicted).abs() + 1e-9;
            prop_assert!(outcome.displacement_ms <= bound,
                "displacement {} exceeds bound {}", outcome.displacement_ms, bound);
        }
    }
}
