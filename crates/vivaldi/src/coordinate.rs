//! Euclidean coordinates with an optional height component.
//!
//! The metric space is measured in **milliseconds**: the distance between two
//! coordinates is the predicted round-trip latency between the corresponding
//! hosts. The paper uses a pure three-dimensional Euclidean space; the
//! height-vector variant of Dabek et al. (where the distance between nodes
//! `i` and `j` is `‖x_i − x_j‖ + h_i + h_j`, the heights capturing each
//! node's access-link latency) is supported because downstream users of the
//! library may want it, but all reproduced experiments run with zero heights.
//!
//! # Representation
//!
//! A coordinate stores its components **inline** in a fixed-capacity
//! `[f64; MAX_DIMS]` array plus an active length, so the entire per-probe
//! numeric path — differences, unit vectors, spring displacements, centroids
//! — runs without touching the heap. Cloning a coordinate is a `memcpy`.
//! Spaces with more than [`MAX_DIMS`] dimensions are rejected at
//! construction; raise the constant (one line) and rebuild if a workload
//! ever needs more. The serialized form is unchanged from the previous
//! `Vec<f64>`-backed representation: only the active components travel on
//! the wire.

use serde::{Deserialize, Serialize};

use crate::error::CoordinateError;

/// Minimum height a coordinate may take (milliseconds). Heights never go
/// negative; a small positive floor keeps the spring dynamics well-behaved.
pub const MIN_HEIGHT: f64 = 0.0;

/// Maximum number of Euclidean dimensions a [`Coordinate`] can hold. The
/// paper runs in 2–5 dimensions; eight leaves generous headroom while
/// keeping a coordinate at 80 inline bytes.
pub const MAX_DIMS: usize = 8;

/// A point in the latency space: a Euclidean component of fixed dimension
/// plus a non-negative height.
///
/// # Examples
///
/// ```
/// use nc_vivaldi::Coordinate;
///
/// let a = Coordinate::new(vec![3.0, 4.0, 0.0]).unwrap();
/// let b = Coordinate::origin(3);
/// assert_eq!(a.distance(&b), 5.0);
/// ```
#[derive(Clone)]
pub struct Coordinate {
    components: [f64; MAX_DIMS],
    len: usize,
    height: f64,
}

// Hand-written so that *decoding* enforces the same invariants as
// construction: a coordinate arriving off the wire (probe response, gossip
// entry, snapshot) with non-finite components, a negative height, or zero
// dimensions is a malformed message, not a valid value. Deriving this impl
// would let a crafted payload inject NaN/∞ into the coordinate space, where
// it propagates to every distance computation and, via gossip, to peers.
impl Deserialize for Coordinate {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let components = Vec::<f64>::from_value(serde::de_field(value, "components")?)?;
        let height = f64::from_value(serde::de_field(value, "height")?)?;
        Coordinate::with_height(components, height)
            .map_err(|e| serde::Error::msg(format!("invalid coordinate: {e}")))
    }
}

// Hand-written because the derive would serialize the whole backing array
// including inactive lanes; only the active components are meaningful. The
// output is byte-identical to what the old `Vec<f64>`-backed derive
// produced.
impl Serialize for Coordinate {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                "components".to_string(),
                serde::Value::Seq(self.components().iter().map(|c| c.to_value()).collect()),
            ),
            ("height".to_string(), self.height.to_value()),
        ])
    }
}

// Equality over the *active* components only; inactive lanes are
// representation padding, not value.
impl PartialEq for Coordinate {
    fn eq(&self, other: &Self) -> bool {
        self.components() == other.components() && self.height == other.height
    }
}

impl std::fmt::Debug for Coordinate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinate")
            .field("components", &self.components())
            .field("height", &self.height)
            .finish()
    }
}

impl Coordinate {
    /// Builds a coordinate from already-validated parts. Internal: every
    /// public constructor funnels through the invariant checks instead.
    pub(crate) fn from_parts(components: [f64; MAX_DIMS], len: usize, height: f64) -> Self {
        debug_assert!((1..=MAX_DIMS).contains(&len));
        Coordinate {
            components,
            len,
            height,
        }
    }

    /// Creates a coordinate from Euclidean components with zero height.
    ///
    /// Accepts anything slice-like (`Vec<f64>`, `[f64; N]`, `&[f64]`), so
    /// existing `Coordinate::new(vec![..])` callers keep working while new
    /// code can pass arrays without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`CoordinateError::Dimension`] when `components` is empty,
    /// [`CoordinateError::TooManyDimensions`] when it exceeds [`MAX_DIMS`]
    /// and [`CoordinateError::NotFinite`] when any component is not finite.
    pub fn new<C: AsRef<[f64]>>(components: C) -> Result<Self, CoordinateError> {
        Self::with_height(components, 0.0)
    }

    /// Creates a coordinate with an explicit height (milliseconds).
    ///
    /// # Errors
    ///
    /// Returns [`CoordinateError::Dimension`] when `components` is empty,
    /// [`CoordinateError::TooManyDimensions`] when it exceeds [`MAX_DIMS`],
    /// [`CoordinateError::NotFinite`] when any value is not finite, and
    /// [`CoordinateError::NegativeHeight`] when `height < 0`.
    pub fn with_height<C: AsRef<[f64]>>(
        components: C,
        height: f64,
    ) -> Result<Self, CoordinateError> {
        let source = components.as_ref();
        if source.is_empty() {
            return Err(CoordinateError::Dimension);
        }
        if source.len() > MAX_DIMS {
            return Err(CoordinateError::TooManyDimensions {
                requested: source.len(),
            });
        }
        if source.iter().any(|c| !c.is_finite()) || !height.is_finite() {
            return Err(CoordinateError::NotFinite);
        }
        if height < 0.0 {
            return Err(CoordinateError::NegativeHeight);
        }
        let mut inline = [0.0; MAX_DIMS];
        inline[..source.len()].copy_from_slice(source);
        Ok(Coordinate::from_parts(inline, source.len(), height))
    }

    /// The origin of a `dimensions`-dimensional space with zero height.
    ///
    /// # Panics
    ///
    /// Panics if `dimensions == 0` (a zero-dimensional latency space is
    /// meaningless and always indicates a configuration bug) or if
    /// `dimensions > MAX_DIMS`.
    pub fn origin(dimensions: usize) -> Self {
        assert!(
            dimensions > 0,
            "coordinate space must have at least one dimension"
        );
        assert!(
            dimensions <= MAX_DIMS,
            "coordinate space limited to {MAX_DIMS} dimensions, requested {dimensions}"
        );
        Coordinate::from_parts([0.0; MAX_DIMS], dimensions, 0.0)
    }

    /// The Euclidean components.
    pub fn components(&self) -> &[f64] {
        &self.components[..self.len]
    }

    /// The height component (milliseconds).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of Euclidean dimensions.
    pub fn dimensions(&self) -> usize {
        self.len
    }

    /// Predicted round-trip latency to `other`:
    /// `‖self − other‖ + height_self + height_other`.
    ///
    /// With zero heights this is the plain Euclidean distance the paper uses.
    ///
    /// # Panics
    ///
    /// Panics when the two coordinates have different dimensionality; mixing
    /// spaces is always a programming error.
    pub fn distance(&self, other: &Coordinate) -> f64 {
        assert_eq!(
            self.dimensions(),
            other.dimensions(),
            "coordinates must share a dimensionality"
        );
        let euclid: f64 = self
            .components()
            .iter()
            .zip(other.components().iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        euclid + self.height + other.height
    }

    /// Euclidean magnitude of the vector part plus the height. The magnitude
    /// of a coordinate difference is the predicted latency.
    pub fn magnitude(&self) -> f64 {
        self.euclidean_magnitude() + self.height
    }

    /// Magnitude of only the Euclidean part, ignoring the height.
    pub fn euclidean_magnitude(&self) -> f64 {
        self.components().iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Vector difference `self − other`. Heights add, following the
    /// height-vector algebra of Dabek et al. (the "difference" of two
    /// coordinates is the displacement whose magnitude is the predicted
    /// latency).
    ///
    /// # Panics
    ///
    /// Panics when dimensionalities differ.
    pub fn sub(&self, other: &Coordinate) -> Coordinate {
        assert_eq!(self.dimensions(), other.dimensions());
        let mut out = self.clone();
        for (a, b) in out.components[..out.len]
            .iter_mut()
            .zip(other.components().iter())
        {
            *a -= b;
        }
        out.height = self.height + other.height;
        out
    }

    /// Vector sum `self + other`. Heights add.
    ///
    /// # Panics
    ///
    /// Panics when dimensionalities differ.
    pub fn add(&self, other: &Coordinate) -> Coordinate {
        assert_eq!(self.dimensions(), other.dimensions());
        let mut out = self.clone();
        for (a, b) in out.components[..out.len]
            .iter_mut()
            .zip(other.components().iter())
        {
            *a += b;
        }
        out.height = (self.height + other.height).max(MIN_HEIGHT);
        out
    }

    /// Scales both the Euclidean part and the height by `factor`.
    pub fn scale(&self, factor: f64) -> Coordinate {
        let mut out = self.clone();
        out.scale_in_place(factor);
        out
    }

    /// Scales this coordinate in place — the hot-path form of
    /// [`scale`](Coordinate::scale).
    pub fn scale_in_place(&mut self, factor: f64) {
        for c in self.components[..self.len].iter_mut() {
            *c *= factor;
        }
        self.height *= factor;
    }

    /// Applies a displacement vector to this coordinate: the Euclidean parts
    /// add and the height adds but is clamped to remain non-negative. This is
    /// the "move along the spring force" step of the Vivaldi update.
    pub fn displaced_by(&self, displacement: &Coordinate) -> Coordinate {
        let mut out = self.clone();
        out.displace_by(displacement);
        out
    }

    /// In-place form of [`displaced_by`](Coordinate::displaced_by) — moves
    /// this coordinate along `displacement` without any temporary.
    pub fn displace_by(&mut self, displacement: &Coordinate) {
        assert_eq!(self.dimensions(), displacement.dimensions());
        for (a, b) in self.components[..self.len]
            .iter_mut()
            .zip(displacement.components().iter())
        {
            *a += b;
        }
        self.height = (self.height + displacement.height).max(MIN_HEIGHT);
    }

    /// Unit vector pointing from `other` toward `self` (zero height).
    /// Returns `None` when the two Euclidean positions coincide; the caller
    /// must then pick an arbitrary direction (Vivaldi uses a random one so
    /// that co-located nodes can separate).
    pub fn unit_vector_from(&self, other: &Coordinate) -> Option<Coordinate> {
        let mut diff = [0.0; MAX_DIMS];
        let len = self.len.min(other.len);
        for (d, (a, b)) in diff[..len]
            .iter_mut()
            .zip(self.components().iter().zip(other.components().iter()))
        {
            *d = a - b;
        }
        let norm: f64 = diff[..len].iter().map(|c| c * c).sum::<f64>().sqrt();
        if norm <= f64::EPSILON {
            return None;
        }
        for d in diff[..len].iter_mut() {
            *d /= norm;
        }
        Some(Coordinate::from_parts(diff, len, 0.0))
    }

    /// Centroid of a non-empty set of coordinates: the component-wise mean of
    /// the Euclidean parts and the mean of the heights. Used by the RELATIVE,
    /// ENERGY and APPLICATION/CENTROID heuristics to summarise a window of
    /// recent system coordinates (§V-B, §V-G).
    ///
    /// Returns `None` for an empty slice.
    pub fn centroid(coords: &[Coordinate]) -> Option<Coordinate> {
        Self::centroid_iter(coords.iter())
    }

    /// Centroid over any iterator of coordinates, in iteration order. The
    /// summation order matches [`centroid`](Coordinate::centroid), so ring
    /// buffers can be averaged without first collecting them into a `Vec`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn centroid_iter<'a, I>(coords: I) -> Option<Coordinate>
    where
        I: IntoIterator<Item = &'a Coordinate>,
    {
        let mut iter = coords.into_iter();
        let first = iter.next()?;
        let dims = first.dimensions();
        let mut acc = [0.0; MAX_DIMS];
        let mut height = 0.0;
        let mut count = 0usize;
        for c in std::iter::once(first).chain(iter) {
            assert_eq!(c.dimensions(), dims, "centroid over mixed dimensionalities");
            for (a, b) in acc[..dims].iter_mut().zip(c.components().iter()) {
                *a += b;
            }
            height += c.height;
            count += 1;
        }
        let n = count as f64;
        for a in acc[..dims].iter_mut() {
            *a /= n;
        }
        Some(Coordinate::from_parts(
            acc,
            dims,
            (height / n).max(MIN_HEIGHT),
        ))
    }

    /// Returns the Euclidean components as a freshly allocated `Vec<f64>`.
    /// The height is **not** included; read it separately through
    /// [`Coordinate::height`] when it matters.
    pub fn to_vec(&self) -> Vec<f64> {
        self.components().to_vec()
    }
}

impl std::fmt::Display for Coordinate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.components().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.2}")?;
        }
        if self.height > 0.0 {
            write!(f, "; h={:.2}", self.height)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_nonfinite_and_oversized() {
        assert_eq!(
            Coordinate::new(Vec::<f64>::new()),
            Err(CoordinateError::Dimension)
        );
        assert_eq!(
            Coordinate::new(vec![f64::NAN]),
            Err(CoordinateError::NotFinite)
        );
        assert_eq!(
            Coordinate::with_height(vec![1.0], f64::INFINITY),
            Err(CoordinateError::NotFinite)
        );
        assert_eq!(
            Coordinate::with_height(vec![1.0], -1.0),
            Err(CoordinateError::NegativeHeight)
        );
        assert_eq!(
            Coordinate::new(vec![1.0; MAX_DIMS + 1]),
            Err(CoordinateError::TooManyDimensions {
                requested: MAX_DIMS + 1
            })
        );
        // The boundary itself is fine.
        assert!(Coordinate::new(vec![1.0; MAX_DIMS]).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn origin_zero_dimensions_panics() {
        let _ = Coordinate::origin(0);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn origin_oversized_dimensions_panics() {
        let _ = Coordinate::origin(MAX_DIMS + 1);
    }

    #[test]
    fn accepts_arrays_and_slices_without_allocation() {
        let from_array = Coordinate::new([3.0, 4.0]).unwrap();
        let from_vec = Coordinate::new(vec![3.0, 4.0]).unwrap();
        assert_eq!(from_array, from_vec);
        let slice: &[f64] = &[3.0, 4.0];
        assert_eq!(Coordinate::new(slice).unwrap(), from_vec);
    }

    #[test]
    fn distance_is_euclidean_without_heights() {
        let a = Coordinate::new(vec![0.0, 3.0]).unwrap();
        let b = Coordinate::new(vec![4.0, 0.0]).unwrap();
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
    }

    #[test]
    fn distance_includes_heights() {
        let a = Coordinate::with_height(vec![0.0, 0.0], 10.0).unwrap();
        let b = Coordinate::with_height(vec![3.0, 4.0], 20.0).unwrap();
        assert_eq!(a.distance(&b), 5.0 + 30.0);
    }

    #[test]
    fn sub_adds_heights() {
        let a = Coordinate::with_height(vec![5.0], 2.0).unwrap();
        let b = Coordinate::with_height(vec![1.0], 3.0).unwrap();
        let d = a.sub(&b);
        assert_eq!(d.components(), &[4.0]);
        assert_eq!(d.height(), 5.0);
        assert_eq!(d.magnitude(), 9.0);
    }

    #[test]
    fn unit_vector_has_unit_norm() {
        let a = Coordinate::new(vec![3.0, 4.0]).unwrap();
        let b = Coordinate::origin(2);
        let u = a.unit_vector_from(&b).unwrap();
        assert!((u.euclidean_magnitude() - 1.0).abs() < 1e-12);
        assert!((u.components()[0] - 0.6).abs() < 1e-12);
        assert!((u.components()[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unit_vector_of_coincident_points_is_none() {
        let a = Coordinate::origin(3);
        let b = Coordinate::origin(3);
        assert!(a.unit_vector_from(&b).is_none());
    }

    #[test]
    fn in_place_ops_match_by_value_ops() {
        let a = Coordinate::with_height(vec![1.0, -2.0, 3.0], 1.5).unwrap();
        let d = Coordinate::with_height(vec![0.5, 0.25, -4.0], 0.0).unwrap();
        let by_value = a.displaced_by(&d);
        let mut in_place = a.clone();
        in_place.displace_by(&d);
        assert_eq!(by_value, in_place);

        let scaled = a.scale(3.25);
        let mut scaled_in_place = a.clone();
        scaled_in_place.scale_in_place(3.25);
        assert_eq!(scaled, scaled_in_place);
    }

    #[test]
    fn displacement_clamps_height() {
        let a = Coordinate::with_height(vec![0.0], 1.0).unwrap();
        let mut negative_height_displacement = Coordinate::new(vec![1.0]).unwrap();
        negative_height_displacement.height = -5.0;
        let moved = a.displaced_by(&negative_height_displacement);
        assert_eq!(moved.height(), MIN_HEIGHT);
        assert_eq!(moved.components(), &[1.0]);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(Coordinate::centroid(&[]).is_none());
    }

    #[test]
    fn centroid_is_componentwise_mean() {
        let coords = vec![
            Coordinate::new(vec![0.0, 0.0]).unwrap(),
            Coordinate::new(vec![2.0, 4.0]).unwrap(),
            Coordinate::new(vec![4.0, 2.0]).unwrap(),
        ];
        let c = Coordinate::centroid(&coords).unwrap();
        assert_eq!(c.components(), &[2.0, 2.0]);
        let by_iter = Coordinate::centroid_iter(coords.iter()).unwrap();
        assert_eq!(c, by_iter);
    }

    #[test]
    fn deserializing_enforces_construction_invariants() {
        // A well-formed coordinate round-trips…
        let c = Coordinate::with_height(vec![1.0, -2.5], 3.0).unwrap();
        assert_eq!(Coordinate::from_value(&c.to_value()).unwrap(), c);
        // …but payloads violating the invariants are rejected: non-finite
        // components (serialized as null), empty dimension lists, negative
        // heights, oversized dimension lists.
        let nan = serde::Value::Map(vec![
            (
                "components".into(),
                serde::Value::Seq(vec![serde::Value::Null, serde::Value::Float(1.0)]),
            ),
            ("height".into(), serde::Value::Float(0.0)),
        ]);
        assert!(Coordinate::from_value(&nan).is_err());
        let empty = serde::Value::Map(vec![
            ("components".into(), serde::Value::Seq(vec![])),
            ("height".into(), serde::Value::Float(0.0)),
        ]);
        assert!(Coordinate::from_value(&empty).is_err());
        let sunken = serde::Value::Map(vec![
            (
                "components".into(),
                serde::Value::Seq(vec![serde::Value::Float(1.0)]),
            ),
            ("height".into(), serde::Value::Float(-4.0)),
        ]);
        assert!(Coordinate::from_value(&sunken).is_err());
        let oversized = serde::Value::Map(vec![
            (
                "components".into(),
                serde::Value::Seq(vec![serde::Value::Float(1.0); MAX_DIMS + 1]),
            ),
            ("height".into(), serde::Value::Float(0.0)),
        ]);
        assert!(Coordinate::from_value(&oversized).is_err());
    }

    #[test]
    fn serialized_form_only_carries_active_components() {
        let c = Coordinate::new(vec![1.0, 2.0]).unwrap();
        match c.to_value() {
            serde::Value::Map(fields) => {
                let components = fields
                    .iter()
                    .find(|(k, _)| k == "components")
                    .map(|(_, v)| v)
                    .expect("components field");
                match components {
                    serde::Value::Seq(items) => assert_eq!(items.len(), 2),
                    other => panic!("expected a sequence, got {other:?}"),
                }
            }
            other => panic!("expected a map, got {other:?}"),
        }
    }

    #[test]
    fn display_is_nonempty() {
        let c = Coordinate::with_height(vec![1.0, 2.0], 3.0).unwrap();
        let s = format!("{c}");
        assert!(s.contains("1.00"));
        assert!(s.contains("h=3.00"));
    }

    fn coord_strategy(dim: usize) -> impl Strategy<Value = Coordinate> {
        proptest::collection::vec(-1000.0f64..1000.0, dim)
            .prop_map(|v| Coordinate::new(v).expect("finite components"))
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(a in coord_strategy(3), b in coord_strategy(3)) {
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
        }

        #[test]
        fn distance_is_nonnegative_and_zero_on_self(a in coord_strategy(3)) {
            prop_assert!(a.distance(&a).abs() < 1e-9);
            prop_assert!(a.distance(&Coordinate::origin(3)) >= 0.0);
        }

        #[test]
        fn triangle_inequality(a in coord_strategy(3), b in coord_strategy(3), c in coord_strategy(3)) {
            // Pure Euclidean coordinates obey the triangle inequality — the
            // whole point of an embedding is that estimates are metric even
            // when real Internet latencies are not.
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn scale_scales_magnitude(a in coord_strategy(3), k in 0.0f64..10.0) {
            let scaled = a.scale(k);
            prop_assert!((scaled.euclidean_magnitude() - k * a.euclidean_magnitude()).abs() < 1e-6);
        }

        #[test]
        fn sub_then_magnitude_equals_distance(a in coord_strategy(3), b in coord_strategy(3)) {
            prop_assert!((a.sub(&b).magnitude() - a.distance(&b)).abs() < 1e-9);
        }

        #[test]
        fn centroid_lies_within_bounding_box(
            coords in proptest::collection::vec(coord_strategy(2), 1..20)
        ) {
            let c = Coordinate::centroid(&coords).unwrap();
            for dim in 0..2 {
                let min = coords.iter().map(|p| p.components()[dim]).fold(f64::INFINITY, f64::min);
                let max = coords.iter().map(|p| p.components()[dim]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(c.components()[dim] >= min - 1e-9);
                prop_assert!(c.components()[dim] <= max + 1e-9);
            }
        }
    }
}
