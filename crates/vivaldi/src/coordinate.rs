//! Euclidean coordinates with an optional height component.
//!
//! The metric space is measured in **milliseconds**: the distance between two
//! coordinates is the predicted round-trip latency between the corresponding
//! hosts. The paper uses a pure three-dimensional Euclidean space; the
//! height-vector variant of Dabek et al. (where the distance between nodes
//! `i` and `j` is `‖x_i − x_j‖ + h_i + h_j`, the heights capturing each
//! node's access-link latency) is supported because downstream users of the
//! library may want it, but all reproduced experiments run with zero heights.

use serde::{Deserialize, Serialize};

use crate::error::CoordinateError;

/// Minimum height a coordinate may take (milliseconds). Heights never go
/// negative; a small positive floor keeps the spring dynamics well-behaved.
pub const MIN_HEIGHT: f64 = 0.0;

/// A point in the latency space: a Euclidean component of fixed dimension
/// plus a non-negative height.
///
/// # Examples
///
/// ```
/// use nc_vivaldi::Coordinate;
///
/// let a = Coordinate::new(vec![3.0, 4.0, 0.0]).unwrap();
/// let b = Coordinate::origin(3);
/// assert_eq!(a.distance(&b), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Coordinate {
    components: Vec<f64>,
    height: f64,
}

// Hand-written so that *decoding* enforces the same invariants as
// construction: a coordinate arriving off the wire (probe response, gossip
// entry, snapshot) with non-finite components, a negative height, or zero
// dimensions is a malformed message, not a valid value. Deriving this impl
// would let a crafted payload inject NaN/∞ into the coordinate space, where
// it propagates to every distance computation and, via gossip, to peers.
impl Deserialize for Coordinate {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let components = Vec::<f64>::from_value(serde::de_field(value, "components")?)?;
        let height = f64::from_value(serde::de_field(value, "height")?)?;
        Coordinate::with_height(components, height)
            .map_err(|e| serde::Error::msg(format!("invalid coordinate: {e}")))
    }
}

impl Coordinate {
    /// Creates a coordinate from Euclidean components with zero height.
    ///
    /// # Errors
    ///
    /// Returns [`CoordinateError::Dimension`] when `components` is empty and
    /// [`CoordinateError::NotFinite`] when any component is not finite.
    pub fn new(components: Vec<f64>) -> Result<Self, CoordinateError> {
        Self::with_height(components, 0.0)
    }

    /// Creates a coordinate with an explicit height (milliseconds).
    ///
    /// # Errors
    ///
    /// Returns [`CoordinateError::Dimension`] when `components` is empty,
    /// [`CoordinateError::NotFinite`] when any value is not finite, and
    /// [`CoordinateError::NegativeHeight`] when `height < 0`.
    pub fn with_height(components: Vec<f64>, height: f64) -> Result<Self, CoordinateError> {
        if components.is_empty() {
            return Err(CoordinateError::Dimension);
        }
        if components.iter().any(|c| !c.is_finite()) || !height.is_finite() {
            return Err(CoordinateError::NotFinite);
        }
        if height < 0.0 {
            return Err(CoordinateError::NegativeHeight);
        }
        Ok(Coordinate { components, height })
    }

    /// The origin of a `dimensions`-dimensional space with zero height.
    ///
    /// # Panics
    ///
    /// Panics if `dimensions == 0`; a zero-dimensional latency space is
    /// meaningless and always indicates a configuration bug.
    pub fn origin(dimensions: usize) -> Self {
        assert!(
            dimensions > 0,
            "coordinate space must have at least one dimension"
        );
        Coordinate {
            components: vec![0.0; dimensions],
            height: 0.0,
        }
    }

    /// The Euclidean components.
    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// The height component (milliseconds).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of Euclidean dimensions.
    pub fn dimensions(&self) -> usize {
        self.components.len()
    }

    /// Predicted round-trip latency to `other`:
    /// `‖self − other‖ + height_self + height_other`.
    ///
    /// With zero heights this is the plain Euclidean distance the paper uses.
    ///
    /// # Panics
    ///
    /// Panics when the two coordinates have different dimensionality; mixing
    /// spaces is always a programming error.
    pub fn distance(&self, other: &Coordinate) -> f64 {
        assert_eq!(
            self.dimensions(),
            other.dimensions(),
            "coordinates must share a dimensionality"
        );
        let euclid: f64 = self
            .components
            .iter()
            .zip(other.components.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        euclid + self.height + other.height
    }

    /// Euclidean magnitude of the vector part plus the height. The magnitude
    /// of a coordinate difference is the predicted latency.
    pub fn magnitude(&self) -> f64 {
        let euclid: f64 = self.components.iter().map(|c| c * c).sum::<f64>().sqrt();
        euclid + self.height
    }

    /// Magnitude of only the Euclidean part, ignoring the height.
    pub fn euclidean_magnitude(&self) -> f64 {
        self.components.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Vector difference `self − other`. Heights add, following the
    /// height-vector algebra of Dabek et al. (the "difference" of two
    /// coordinates is the displacement whose magnitude is the predicted
    /// latency).
    ///
    /// # Panics
    ///
    /// Panics when dimensionalities differ.
    pub fn sub(&self, other: &Coordinate) -> Coordinate {
        assert_eq!(self.dimensions(), other.dimensions());
        Coordinate {
            components: self
                .components
                .iter()
                .zip(other.components.iter())
                .map(|(a, b)| a - b)
                .collect(),
            height: self.height + other.height,
        }
    }

    /// Vector sum `self + other`. Heights add.
    ///
    /// # Panics
    ///
    /// Panics when dimensionalities differ.
    pub fn add(&self, other: &Coordinate) -> Coordinate {
        assert_eq!(self.dimensions(), other.dimensions());
        Coordinate {
            components: self
                .components
                .iter()
                .zip(other.components.iter())
                .map(|(a, b)| a + b)
                .collect(),
            height: (self.height + other.height).max(MIN_HEIGHT),
        }
    }

    /// Scales both the Euclidean part and the height by `factor`.
    pub fn scale(&self, factor: f64) -> Coordinate {
        Coordinate {
            components: self.components.iter().map(|c| c * factor).collect(),
            height: self.height * factor,
        }
    }

    /// Applies a displacement vector to this coordinate: the Euclidean parts
    /// add and the height adds but is clamped to remain non-negative. This is
    /// the "move along the spring force" step of the Vivaldi update.
    pub fn displaced_by(&self, displacement: &Coordinate) -> Coordinate {
        assert_eq!(self.dimensions(), displacement.dimensions());
        Coordinate {
            components: self
                .components
                .iter()
                .zip(displacement.components.iter())
                .map(|(a, b)| a + b)
                .collect(),
            height: (self.height + displacement.height).max(MIN_HEIGHT),
        }
    }

    /// Unit vector pointing from `other` toward `self` (zero height).
    /// Returns `None` when the two Euclidean positions coincide; the caller
    /// must then pick an arbitrary direction (Vivaldi uses a random one so
    /// that co-located nodes can separate).
    pub fn unit_vector_from(&self, other: &Coordinate) -> Option<Coordinate> {
        let diff: Vec<f64> = self
            .components
            .iter()
            .zip(other.components.iter())
            .map(|(a, b)| a - b)
            .collect();
        let norm: f64 = diff.iter().map(|c| c * c).sum::<f64>().sqrt();
        if norm <= f64::EPSILON {
            return None;
        }
        Some(Coordinate {
            components: diff.into_iter().map(|c| c / norm).collect(),
            height: 0.0,
        })
    }

    /// Centroid of a non-empty set of coordinates: the component-wise mean of
    /// the Euclidean parts and the mean of the heights. Used by the RELATIVE,
    /// ENERGY and APPLICATION/CENTROID heuristics to summarise a window of
    /// recent system coordinates (§V-B, §V-G).
    ///
    /// Returns `None` for an empty slice.
    pub fn centroid(coords: &[Coordinate]) -> Option<Coordinate> {
        let first = coords.first()?;
        let dims = first.dimensions();
        let mut acc = vec![0.0; dims];
        let mut height = 0.0;
        for c in coords {
            assert_eq!(c.dimensions(), dims, "centroid over mixed dimensionalities");
            for (a, b) in acc.iter_mut().zip(c.components.iter()) {
                *a += b;
            }
            height += c.height;
        }
        let n = coords.len() as f64;
        Some(Coordinate {
            components: acc.into_iter().map(|a| a / n).collect(),
            height: (height / n).max(MIN_HEIGHT),
        })
    }

    /// Returns the coordinate as a plain `Vec<f64>` of its Euclidean
    /// components (the height, when present, is appended as a final element
    /// only if non-zero consumers request it via [`Coordinate::height`]).
    pub fn to_vec(&self) -> Vec<f64> {
        self.components.clone()
    }
}

impl std::fmt::Display for Coordinate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.2}")?;
        }
        if self.height > 0.0 {
            write!(f, "; h={:.2}", self.height)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert_eq!(Coordinate::new(vec![]), Err(CoordinateError::Dimension));
        assert_eq!(
            Coordinate::new(vec![f64::NAN]),
            Err(CoordinateError::NotFinite)
        );
        assert_eq!(
            Coordinate::with_height(vec![1.0], f64::INFINITY),
            Err(CoordinateError::NotFinite)
        );
        assert_eq!(
            Coordinate::with_height(vec![1.0], -1.0),
            Err(CoordinateError::NegativeHeight)
        );
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn origin_zero_dimensions_panics() {
        let _ = Coordinate::origin(0);
    }

    #[test]
    fn distance_is_euclidean_without_heights() {
        let a = Coordinate::new(vec![0.0, 3.0]).unwrap();
        let b = Coordinate::new(vec![4.0, 0.0]).unwrap();
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
    }

    #[test]
    fn distance_includes_heights() {
        let a = Coordinate::with_height(vec![0.0, 0.0], 10.0).unwrap();
        let b = Coordinate::with_height(vec![3.0, 4.0], 20.0).unwrap();
        assert_eq!(a.distance(&b), 5.0 + 30.0);
    }

    #[test]
    fn sub_adds_heights() {
        let a = Coordinate::with_height(vec![5.0], 2.0).unwrap();
        let b = Coordinate::with_height(vec![1.0], 3.0).unwrap();
        let d = a.sub(&b);
        assert_eq!(d.components(), &[4.0]);
        assert_eq!(d.height(), 5.0);
        assert_eq!(d.magnitude(), 9.0);
    }

    #[test]
    fn unit_vector_has_unit_norm() {
        let a = Coordinate::new(vec![3.0, 4.0]).unwrap();
        let b = Coordinate::origin(2);
        let u = a.unit_vector_from(&b).unwrap();
        assert!((u.euclidean_magnitude() - 1.0).abs() < 1e-12);
        assert!((u.components()[0] - 0.6).abs() < 1e-12);
        assert!((u.components()[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unit_vector_of_coincident_points_is_none() {
        let a = Coordinate::origin(3);
        let b = Coordinate::origin(3);
        assert!(a.unit_vector_from(&b).is_none());
    }

    #[test]
    fn displacement_clamps_height() {
        let a = Coordinate::with_height(vec![0.0], 1.0).unwrap();
        let negative_height_displacement = Coordinate {
            components: vec![1.0],
            height: -5.0,
        };
        let moved = a.displaced_by(&negative_height_displacement);
        assert_eq!(moved.height(), MIN_HEIGHT);
        assert_eq!(moved.components(), &[1.0]);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(Coordinate::centroid(&[]).is_none());
    }

    #[test]
    fn centroid_is_componentwise_mean() {
        let coords = vec![
            Coordinate::new(vec![0.0, 0.0]).unwrap(),
            Coordinate::new(vec![2.0, 4.0]).unwrap(),
            Coordinate::new(vec![4.0, 2.0]).unwrap(),
        ];
        let c = Coordinate::centroid(&coords).unwrap();
        assert_eq!(c.components(), &[2.0, 2.0]);
    }

    #[test]
    fn deserializing_enforces_construction_invariants() {
        // A well-formed coordinate round-trips…
        let c = Coordinate::with_height(vec![1.0, -2.5], 3.0).unwrap();
        assert_eq!(Coordinate::from_value(&c.to_value()).unwrap(), c);
        // …but payloads violating the invariants are rejected: non-finite
        // components (serialized as null), empty dimension lists, negative
        // heights.
        let nan = serde::Value::Map(vec![
            (
                "components".into(),
                serde::Value::Seq(vec![serde::Value::Null, serde::Value::Float(1.0)]),
            ),
            ("height".into(), serde::Value::Float(0.0)),
        ]);
        assert!(Coordinate::from_value(&nan).is_err());
        let empty = serde::Value::Map(vec![
            ("components".into(), serde::Value::Seq(vec![])),
            ("height".into(), serde::Value::Float(0.0)),
        ]);
        assert!(Coordinate::from_value(&empty).is_err());
        let sunken = serde::Value::Map(vec![
            (
                "components".into(),
                serde::Value::Seq(vec![serde::Value::Float(1.0)]),
            ),
            ("height".into(), serde::Value::Float(-4.0)),
        ]);
        assert!(Coordinate::from_value(&sunken).is_err());
    }

    #[test]
    fn display_is_nonempty() {
        let c = Coordinate::with_height(vec![1.0, 2.0], 3.0).unwrap();
        let s = format!("{c}");
        assert!(s.contains("1.00"));
        assert!(s.contains("h=3.00"));
    }

    fn coord_strategy(dim: usize) -> impl Strategy<Value = Coordinate> {
        proptest::collection::vec(-1000.0f64..1000.0, dim)
            .prop_map(|v| Coordinate::new(v).expect("finite components"))
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(a in coord_strategy(3), b in coord_strategy(3)) {
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
        }

        #[test]
        fn distance_is_nonnegative_and_zero_on_self(a in coord_strategy(3)) {
            prop_assert!(a.distance(&a).abs() < 1e-9);
            prop_assert!(a.distance(&Coordinate::origin(3)) >= 0.0);
        }

        #[test]
        fn triangle_inequality(a in coord_strategy(3), b in coord_strategy(3), c in coord_strategy(3)) {
            // Pure Euclidean coordinates obey the triangle inequality — the
            // whole point of an embedding is that estimates are metric even
            // when real Internet latencies are not.
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn scale_scales_magnitude(a in coord_strategy(3), k in 0.0f64..10.0) {
            let scaled = a.scale(k);
            prop_assert!((scaled.euclidean_magnitude() - k * a.euclidean_magnitude()).abs() < 1e-6);
        }

        #[test]
        fn sub_then_magnitude_equals_distance(a in coord_strategy(3), b in coord_strategy(3)) {
            prop_assert!((a.sub(&b).magnitude() - a.distance(&b)).abs() < 1e-9);
        }

        #[test]
        fn centroid_lies_within_bounding_box(
            coords in proptest::collection::vec(coord_strategy(2), 1..20)
        ) {
            let c = Coordinate::centroid(&coords).unwrap();
            for dim in 0..2 {
                let min = coords.iter().map(|p| p.components()[dim]).fold(f64::INFINITY, f64::min);
                let max = coords.iter().map(|p| p.components()[dim]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(c.components()[dim] >= min - 1e-9);
                prop_assert!(c.components()[dim] <= max + 1e-9);
            }
        }
    }
}
