//! Vivaldi network coordinates.
//!
//! Vivaldi (Cox, Dabek, Kaashoek, Li, Morris) is a fully decentralized
//! algorithm that embeds the nodes of a distributed system into a
//! low-dimensional Euclidean space such that the distance between two nodes'
//! coordinates predicts the round-trip latency between them. Each node keeps
//! a coordinate and a *confidence* in that coordinate and refines both with
//! every latency observation, behaving like a network of springs relaxing
//! toward a low-energy (low-error) configuration.
//!
//! This crate provides the substrate the paper *Stable and Accurate Network
//! Coordinates* (Ledlie & Seltzer) builds on:
//!
//! * [`Coordinate`] — an arbitrary-dimension Euclidean coordinate with an
//!   optional *height* component modelling access-link latency.
//! * [`VivaldiConfig`] — tuning constants `c_c` and `c_e` (both 0.25 in the
//!   paper), the space dimensionality (3 in the paper), and the optional
//!   *confidence building* measurement-error margin (§IV-B).
//! * [`VivaldiState`] — the per-node algorithm state implementing the update
//!   rule of the paper's Figure 1.
//! * [`RemoteObservation`] — one latency sample together with the remote
//!   node's coordinate and confidence.
//!
//! # Quick example
//!
//! ```
//! use nc_vivaldi::{Coordinate, RemoteObservation, VivaldiConfig, VivaldiState};
//!
//! let config = VivaldiConfig::paper_defaults();
//! let mut a = VivaldiState::new(config.clone());
//! let mut b = VivaldiState::new(config);
//!
//! // Feed both nodes a stream of 80 ms observations of each other.
//! for _ in 0..200 {
//!     let obs_for_a = RemoteObservation::new(b.coordinate().clone(), b.error_estimate(), 80.0);
//!     a.observe(&obs_for_a);
//!     let obs_for_b = RemoteObservation::new(a.coordinate().clone(), a.error_estimate(), 80.0);
//!     b.observe(&obs_for_b);
//! }
//!
//! let predicted = a.coordinate().distance(b.coordinate());
//! assert!((predicted - 80.0).abs() < 8.0, "predicted {predicted} ms");
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod config;
pub mod coordinate;
pub mod error;
pub mod gate;
pub mod state;

pub use config::VivaldiConfig;
pub use coordinate::{Coordinate, MAX_DIMS};
pub use error::{relative_error, CoordinateError};
pub use gate::{OutlierGate, OutlierGateConfig};
pub use state::{RemoteObservation, UpdateOutcome, VivaldiState};
