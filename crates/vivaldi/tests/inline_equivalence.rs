//! Equivalence suite for the inline (fixed-capacity) `Coordinate`
//! representation: every algebraic operation must produce **bit-identical**
//! results to the original `Vec<f64>`-based implementation, reproduced here
//! as reference functions with the exact arithmetic and iteration order of
//! the pre-inline code. The coordinate space is milliseconds and downstream
//! reports are compared byte-for-byte, so "close enough" floats are not
//! enough — these assertions use exact equality.

use nc_vivaldi::{Coordinate, RemoteObservation, VivaldiConfig, VivaldiState};
use proptest::prelude::*;

/// The old representation: a heap-allocated component vector plus height.
#[derive(Debug, Clone, PartialEq)]
struct VecCoordinate {
    components: Vec<f64>,
    height: f64,
}

impl VecCoordinate {
    fn of(coordinate: &Coordinate) -> Self {
        VecCoordinate {
            components: coordinate.components().to_vec(),
            height: coordinate.height(),
        }
    }

    fn distance(&self, other: &VecCoordinate) -> f64 {
        let euclid: f64 = self
            .components
            .iter()
            .zip(other.components.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        euclid + self.height + other.height
    }

    fn magnitude(&self) -> f64 {
        let euclid: f64 = self.components.iter().map(|c| c * c).sum::<f64>().sqrt();
        euclid + self.height
    }

    fn sub(&self, other: &VecCoordinate) -> VecCoordinate {
        VecCoordinate {
            components: self
                .components
                .iter()
                .zip(other.components.iter())
                .map(|(a, b)| a - b)
                .collect(),
            height: self.height + other.height,
        }
    }

    fn add(&self, other: &VecCoordinate) -> VecCoordinate {
        VecCoordinate {
            components: self
                .components
                .iter()
                .zip(other.components.iter())
                .map(|(a, b)| a + b)
                .collect(),
            height: (self.height + other.height).max(0.0),
        }
    }

    fn scale(&self, factor: f64) -> VecCoordinate {
        VecCoordinate {
            components: self.components.iter().map(|c| c * factor).collect(),
            height: self.height * factor,
        }
    }

    fn displaced_by(&self, displacement: &VecCoordinate) -> VecCoordinate {
        VecCoordinate {
            components: self
                .components
                .iter()
                .zip(displacement.components.iter())
                .map(|(a, b)| a + b)
                .collect(),
            height: (self.height + displacement.height).max(0.0),
        }
    }

    fn unit_vector_from(&self, other: &VecCoordinate) -> Option<VecCoordinate> {
        let diff: Vec<f64> = self
            .components
            .iter()
            .zip(other.components.iter())
            .map(|(a, b)| a - b)
            .collect();
        let norm: f64 = diff.iter().map(|c| c * c).sum::<f64>().sqrt();
        if norm <= f64::EPSILON {
            return None;
        }
        Some(VecCoordinate {
            components: diff.into_iter().map(|c| c / norm).collect(),
            height: 0.0,
        })
    }

    fn centroid(coords: &[VecCoordinate]) -> Option<VecCoordinate> {
        let first = coords.first()?;
        let dims = first.components.len();
        let mut acc = vec![0.0; dims];
        let mut height = 0.0;
        for c in coords {
            for (a, b) in acc.iter_mut().zip(c.components.iter()) {
                *a += b;
            }
            height += c.height;
        }
        let n = coords.len() as f64;
        Some(VecCoordinate {
            components: acc.into_iter().map(|a| a / n).collect(),
            height: (height / n).max(0.0),
        })
    }
}

fn exact_eq(inline: &Coordinate, reference: &VecCoordinate) -> bool {
    inline.components().len() == reference.components.len()
        && inline
            .components()
            .iter()
            .zip(reference.components.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits())
        && inline.height().to_bits() == reference.height.to_bits()
}

fn coord_strategy(dims: usize) -> impl Strategy<Value = Coordinate> {
    // One extra generated component doubles as the height (mapped into
    // [0, 50]); the vendored proptest stand-in has no tuple strategies.
    proptest::collection::vec(-2000.0f64..2000.0, dims + 1).prop_map(|mut components| {
        let height = (components.pop().expect("dims + 1 elements") + 2000.0) / 80.0;
        Coordinate::with_height(components, height).expect("finite components")
    })
}

proptest! {
    #[test]
    fn distance_matches_reference(a in coord_strategy(3), b in coord_strategy(3)) {
        let (ra, rb) = (VecCoordinate::of(&a), VecCoordinate::of(&b));
        prop_assert_eq!(a.distance(&b).to_bits(), ra.distance(&rb).to_bits());
    }

    #[test]
    fn magnitude_matches_reference(a in coord_strategy(4)) {
        let ra = VecCoordinate::of(&a);
        prop_assert_eq!(a.magnitude().to_bits(), ra.magnitude().to_bits());
        let reference_euclid: f64 =
            ra.components.iter().map(|c| c * c).sum::<f64>().sqrt();
        prop_assert_eq!(a.euclidean_magnitude().to_bits(), reference_euclid.to_bits());
    }

    #[test]
    fn sub_add_scale_match_reference(
        a in coord_strategy(3),
        b in coord_strategy(3),
        factor in -10.0f64..10.0,
    ) {
        let (ra, rb) = (VecCoordinate::of(&a), VecCoordinate::of(&b));
        prop_assert!(exact_eq(&a.sub(&b), &ra.sub(&rb)));
        prop_assert!(exact_eq(&a.add(&b), &ra.add(&rb)));
        prop_assert!(exact_eq(&a.scale(factor), &ra.scale(factor)));
    }

    #[test]
    fn displacement_matches_reference(a in coord_strategy(3), d in coord_strategy(3)) {
        let (ra, rd) = (VecCoordinate::of(&a), VecCoordinate::of(&d));
        prop_assert!(exact_eq(&a.displaced_by(&d), &ra.displaced_by(&rd)));
        // The in-place form agrees with the by-value form.
        let mut in_place = a.clone();
        in_place.displace_by(&d);
        prop_assert_eq!(&in_place, &a.displaced_by(&d));
    }

    #[test]
    fn unit_vector_matches_reference(a in coord_strategy(3), b in coord_strategy(3)) {
        let (ra, rb) = (VecCoordinate::of(&a), VecCoordinate::of(&b));
        match (a.unit_vector_from(&b), ra.unit_vector_from(&rb)) {
            (None, None) => {}
            (Some(inline), Some(reference)) => prop_assert!(exact_eq(&inline, &reference)),
            (inline, reference) => {
                prop_assert!(false, "divergence: {:?} vs {:?}", inline, reference)
            }
        }
    }

    #[test]
    fn centroid_matches_reference(
        coords in proptest::collection::vec(coord_strategy(3), 1..40)
    ) {
        let reference: Vec<VecCoordinate> = coords.iter().map(VecCoordinate::of).collect();
        let inline = Coordinate::centroid(&coords).expect("non-empty");
        let expected = VecCoordinate::centroid(&reference).expect("non-empty");
        prop_assert!(exact_eq(&inline, &expected));
        // And the iterator form used by the windowed heuristics.
        let by_iter = Coordinate::centroid_iter(coords.iter()).expect("non-empty");
        prop_assert_eq!(&by_iter, &inline);
    }

    #[test]
    fn vivaldi_trajectories_are_reproducible_across_representations(
        rtts in proptest::collection::vec(1.0f64..2_000.0, 1..150),
        seed in 0u64..1_000,
    ) {
        // The full update rule on the inline representation is deterministic
        // and self-consistent: two states fed the identical stream stay in
        // lockstep bit for bit (this is what the byte-identical SimReport
        // guarantee rests on).
        let config = VivaldiConfig::paper_defaults().with_seed(seed);
        let mut first = VivaldiState::new(config.clone());
        let mut second = VivaldiState::new(config);
        let remote = Coordinate::new(vec![25.0, -40.0, 8.0]).unwrap();
        for &rtt in &rtts {
            let obs = RemoteObservation::new(remote.clone(), 0.4, rtt);
            let outcome_a = first.observe(&obs);
            let outcome_b = second.observe(&obs);
            prop_assert_eq!(outcome_a, outcome_b);
            prop_assert_eq!(first.coordinate(), second.coordinate());
        }
    }
}
