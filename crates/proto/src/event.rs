//! Typed events emitted by a sans-I/O coordinate engine.
//!
//! Every probe response an engine digests produces zero or more events
//! describing what the coordinate stack did with the observation. Drivers
//! consume the stream instead of poking at node internals: a simulator folds
//! events into its metrics, a daemon forwards [`Event::ApplicationUpdated`]
//! to the embedding application, a debugger logs everything.

use nc_change::ApplicationUpdate;
use serde::{Deserialize, Serialize};

/// One thing the engine did while digesting a probe response.
///
/// The variants mirror the stages of the paper's stack: the per-link filter
/// may suppress the raw sample, Vivaldi may reject the filtered sample as
/// implausible, an accepted sample moves the system-level coordinate, and
/// the update heuristic occasionally publishes an application-level update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event<Id> {
    /// A peer was seen for the first time (as a responder or through
    /// gossip) and entered the neighbour table / probe schedule.
    NeighborDiscovered {
        /// The newly discovered peer.
        id: Id,
    },
    /// The per-link filter consumed the raw sample but suppressed its
    /// output (warm-up, threshold discard, or an invalid sample), so
    /// nothing reached Vivaldi.
    ObservationFiltered {
        /// The probed peer.
        id: Id,
        /// The raw round-trip time that was withheld.
        raw_rtt_ms: f64,
    },
    /// The filtered sample was rejected as implausible before it could move
    /// the coordinate: either Vivaldi refused the value itself (non-finite,
    /// non-positive, or beyond the configured latency bound), or — on nodes
    /// running the optional MAD outlier gate — the observation's residual
    /// against the coordinate-predicted distance fell far outside the
    /// recent residual distribution (a lying or delay-attacking peer). A
    /// gate rejection drops the reply whole, piggybacked gossip included.
    ObservationRejected {
        /// The probed peer.
        id: Id,
        /// The filtered round-trip time that was rejected.
        filtered_rtt_ms: f64,
    },
    /// An accepted observation updated the system-level coordinate. Emitted
    /// for every accepted observation; `displacement_ms` is `0.0` when
    /// confidence building judged the sample within the measurement-error
    /// margin and left the coordinate in place.
    SystemMoved {
        /// The probed peer.
        id: Id,
        /// The filtered round-trip time handed to Vivaldi.
        filtered_rtt_ms: f64,
        /// Magnitude of the coordinate movement (milliseconds).
        displacement_ms: f64,
        /// Relative error of the pre-update system coordinate against the
        /// filtered observation (§II-A accuracy metric).
        relative_error: f64,
        /// Relative error of the application-level coordinate against the
        /// filtered observation (the accuracy an embedding application
        /// experiences, §V-B).
        application_relative_error: f64,
    },
    /// The update heuristic published a new application-level coordinate —
    /// the rare, significant event an embedding application reacts to.
    ApplicationUpdated {
        /// The published change.
        update: ApplicationUpdate,
    },
    /// An outstanding probe expired without a reply (the driver declared it
    /// timed out, or the engine expired it on the driver's behalf). The
    /// probe slot is released and the round-robin schedule keeps advancing —
    /// a lost probe never stalls the engine.
    ProbeLost {
        /// The peer that was probed and never answered.
        id: Id,
        /// Sequence number the lost probe carried.
        seq: u64,
    },
    /// The peer answered none of its last `max_consecutive_losses` probes
    /// and was dropped from the neighbour table and the probe schedule
    /// (crashed, partitioned away, or gone for good). Only emitted when the
    /// configuration enables eviction.
    NeighborEvicted {
        /// The evicted peer.
        id: Id,
    },
    /// A probe response arrived that correlates with no outstanding probe —
    /// a reply delivered after its probe already timed out, a duplicated
    /// datagram, or an unsolicited/spoofed response. The engine dropped it
    /// without touching any filter, coordinate or loss-streak state: the
    /// observation it carries was either already accounted as a loss or
    /// never requested, and its RTT stamp cannot be trusted. Only emitted
    /// by nodes that issue probes through the engine (the pending-probe
    /// machinery); drivers feeding hand-built responses without it keep the
    /// lenient legacy behaviour.
    ResponseIgnored {
        /// The peer the response claims to come from.
        id: Id,
        /// Sequence number the response echoed.
        seq: u64,
    },
}

impl<Id> Event<Id> {
    /// The peer this event concerns, when it concerns one.
    pub fn peer(&self) -> Option<&Id> {
        match self {
            Event::NeighborDiscovered { id }
            | Event::ObservationFiltered { id, .. }
            | Event::ObservationRejected { id, .. }
            | Event::SystemMoved { id, .. }
            | Event::ProbeLost { id, .. }
            | Event::NeighborEvicted { id }
            | Event::ResponseIgnored { id, .. } => Some(id),
            Event::ApplicationUpdated { .. } => None,
        }
    }

    /// True for [`Event::ApplicationUpdated`] — the only event an embedding
    /// application must react to.
    pub fn is_application_update(&self) -> bool {
        matches!(self, Event::ApplicationUpdated { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_vivaldi::Coordinate;

    #[test]
    fn peer_accessor_covers_all_variants() {
        let filtered: Event<u32> = Event::ObservationFiltered {
            id: 3,
            raw_rtt_ms: 5_000.0,
        };
        assert_eq!(filtered.peer(), Some(&3));
        assert!(!filtered.is_application_update());

        let update: Event<u32> = Event::ApplicationUpdated {
            update: ApplicationUpdate {
                previous: Coordinate::origin(2),
                current: Coordinate::new(vec![3.0, 4.0]).unwrap(),
                displacement_ms: 5.0,
            },
        };
        assert_eq!(update.peer(), None);
        assert!(update.is_application_update());
    }

    #[test]
    fn loss_events_name_their_peer() {
        let lost: Event<u32> = Event::ProbeLost { id: 9, seq: 41 };
        assert_eq!(lost.peer(), Some(&9));
        assert!(!lost.is_application_update());
        let evicted: Event<u32> = Event::NeighborEvicted { id: 9 };
        assert_eq!(evicted.peer(), Some(&9));
    }

    #[test]
    fn ignored_responses_name_their_peer_and_round_trip() {
        let ignored: Event<u32> = Event::ResponseIgnored { id: 5, seq: 17 };
        assert_eq!(ignored.peer(), Some(&5));
        assert!(!ignored.is_application_update());
        let wire: Event<String> = Event::ResponseIgnored {
            id: "peer".into(),
            seq: 17,
        };
        let back: Event<String> = serde::json::from_str(&serde::json::to_string(&wire)).unwrap();
        assert_eq!(back, wire);
    }

    #[test]
    fn loss_events_serialize_round_trip() {
        let lost: Event<String> = Event::ProbeLost {
            id: "peer".into(),
            seq: 7,
        };
        let back: Event<String> = serde::json::from_str(&serde::json::to_string(&lost)).unwrap();
        assert_eq!(back, lost);
    }

    #[test]
    fn events_serialize_round_trip() {
        let event: Event<String> = Event::SystemMoved {
            id: "peer".into(),
            filtered_rtt_ms: 80.0,
            displacement_ms: 1.25,
            relative_error: 0.1,
            application_relative_error: 0.2,
        };
        let text = serde::json::to_string(&event);
        let back: Event<String> = serde::json::from_str(&text).unwrap();
        assert_eq!(back, event);
    }
}
