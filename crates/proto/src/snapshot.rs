//! Serializable node state for persist/restore.
//!
//! A [`NodeSnapshot`] captures everything a node's engine accumulates at run
//! time: the Vivaldi state (coordinate, error estimate, counters), the
//! application-level coordinate manager's state (published coordinate and
//! heuristic windows), each link's filter state and last-seen neighbour
//! info, and the probe-scheduling cursors. It deliberately does **not**
//! embed the node's configuration — the stack a node runs (filter family,
//! heuristic family, Vivaldi constants) is deployment configuration and is
//! supplied separately when the node is rebuilt, which keeps a snapshot
//! valid across configuration-compatible binary upgrades.

use nc_change::ApplicationState;
use nc_filters::FilterState;
use nc_vivaldi::{Coordinate, VivaldiState};
use serde::{Deserialize, Serialize};

use crate::wire::WireMessage;

/// One probe that has been sent but not yet answered or expired.
///
/// The engine records every outgoing probe here; the entry is released when
/// the matching response arrives ([`crate::ProbeResponse::seq`] echoes the
/// request's sequence number) or when the driver declares the probe timed
/// out. Snapshots carry the table so a restored node neither forgets about
/// in-flight probes nor double-counts their eventual loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingProbe<Id> {
    /// The peer the probe was addressed to.
    pub target: Id,
    /// Sequence number the probe carried.
    pub seq: u64,
    /// Driver clock reading when the probe was built (milliseconds).
    pub sent_at_ms: u64,
}

/// Everything a node remembers about one link/neighbour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSnapshot<Id> {
    /// The neighbour's identifier.
    pub id: Id,
    /// Runtime state of the per-link latency filter, or `None` when the
    /// neighbour is known only through gossip and has never been probed.
    pub filter: Option<FilterState>,
    /// The neighbour's coordinate when last observed.
    pub coordinate: Coordinate,
    /// The neighbour's error estimate when last observed.
    pub error_estimate: f64,
    /// The most recent filtered latency estimate for the link (ms).
    pub filtered_rtt_ms: Option<f64>,
    /// Number of raw observations of this link.
    pub observations: u64,
}

/// The full runtime state of a `StableNode`, detached from its
/// configuration.
///
/// Produced by the engine's `snapshot()` and consumed by `restore()`; see
/// the `stable-nc` crate. Serializes through [`WireMessage`] like the probe
/// messages, with the same protocol-version check on decode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSnapshot<Id> {
    /// Protocol version the snapshot was taken under.
    pub version: u16,
    /// Complete Vivaldi state: system coordinate, error estimate, counters
    /// and the tie-break RNG state (so a restored node continues the exact
    /// same trajectory).
    pub vivaldi: VivaldiState,
    /// Application-level coordinate manager state: published coordinate,
    /// counters and heuristic windows.
    pub application: ApplicationState,
    /// Per-link state, one entry per known neighbour.
    pub links: Vec<LinkSnapshot<Id>>,
    /// The (approximately) nearest neighbour and its filtered RTT.
    pub nearest_neighbor: Option<(Id, f64)>,
    /// Total raw observations fed to this node.
    pub observations: u64,
    /// The node's own declared identity, if any (kept out of the probe
    /// schedule and of gossip payloads sent back to it).
    pub identity: Option<Id>,
    /// The probe schedule: peers in round-robin order.
    pub membership: Vec<Id>,
    /// Index into `membership` of the next peer to probe.
    pub probe_cursor: usize,
    /// Sequence number the next outgoing probe will carry.
    pub probe_seq: u64,
    /// Round-robin cursor over `membership` for choosing gossip payloads.
    pub gossip_cursor: usize,
    /// Probes sent but not yet answered or expired, oldest first.
    pub pending: Vec<PendingProbe<Id>>,
    /// Consecutive unanswered probes per peer (the eviction counter), in
    /// membership order so snapshots are deterministic.
    pub loss_streaks: Vec<(Id, u32)>,
}

impl<Id: Serialize> WireMessage for NodeSnapshot<Id> {
    fn wire_version(&self) -> u16 {
        self.version
    }
}

impl<Id> NodeSnapshot<Id> {
    /// Number of known neighbours in the snapshot.
    pub fn neighbor_count(&self) -> usize {
        self.links.len()
    }

    /// The system-level coordinate at snapshot time.
    pub fn system_coordinate(&self) -> &Coordinate {
        self.vivaldi.coordinate()
    }

    /// The application-level coordinate at snapshot time.
    pub fn application_coordinate(&self) -> &Coordinate {
        &self.application.coordinate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireError, PROTOCOL_VERSION};
    use nc_change::HeuristicState;
    use nc_vivaldi::VivaldiConfig;

    fn sample_snapshot() -> NodeSnapshot<String> {
        NodeSnapshot {
            version: PROTOCOL_VERSION,
            vivaldi: VivaldiState::new(VivaldiConfig::paper_defaults()),
            application: ApplicationState {
                coordinate: Coordinate::new(vec![1.0, 2.0, 3.0]).unwrap(),
                update_count: 4,
                system_updates_seen: 100,
                total_displacement_ms: 17.5,
                heuristic: HeuristicState::Stateless,
            },
            links: vec![LinkSnapshot {
                id: "peer-a".into(),
                filter: Some(FilterState::MovingPercentile {
                    window: vec![80.0, 81.5],
                    seen: 2,
                }),
                coordinate: Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap(),
                error_estimate: 0.5,
                filtered_rtt_ms: Some(80.0),
                observations: 2,
            }],
            nearest_neighbor: Some(("peer-a".into(), 80.0)),
            observations: 2,
            identity: Some("self".into()),
            membership: vec!["peer-a".into(), "peer-b".into()],
            probe_cursor: 1,
            probe_seq: 3,
            gossip_cursor: 0,
            pending: vec![PendingProbe {
                target: "peer-b".into(),
                seq: 2,
                sent_at_ms: 900,
            }],
            loss_streaks: vec![("peer-b".into(), 1)],
        }
    }

    #[test]
    fn snapshot_round_trips_through_the_wire_form() {
        let snapshot = sample_snapshot();
        let decoded = NodeSnapshot::<String>::decode(&snapshot.encode()).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(decoded.neighbor_count(), 1);
        assert_eq!(decoded.application_coordinate().components()[0], 1.0);
    }

    #[test]
    fn snapshot_version_mismatch_is_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.version = PROTOCOL_VERSION + 3;
        let err = NodeSnapshot::<String>::decode(&snapshot.encode()).unwrap_err();
        assert!(
            matches!(err, WireError::VersionMismatch { found, .. } if found == PROTOCOL_VERSION + 3)
        );
    }
}
