//! The versioned probe wire messages.
//!
//! The probe protocol follows the paper's measurement discipline: every node
//! probes the members of its neighbour set round-robin; each reply carries
//! the responder's current system-level coordinate, its Vivaldi error
//! estimate `w_j` and a gossip payload of other nodes the responder knows
//! about, so neighbour sets grow organically (§VI).
//!
//! Messages are sans-I/O: nothing here reads a clock or a socket. The
//! *driver* (simulator, UDP transport, trace replayer) supplies timestamps
//! when constructing a request and stamps the measured round-trip time into
//! the response before handing it to the engine.

use nc_vivaldi::Coordinate;
use serde::{Deserialize, Serialize};

/// Version tag carried by every wire message and snapshot produced by this
/// crate. Bump on any incompatible change to the message layouts.
///
/// Version 2 added the pending-probe table and per-peer loss streaks to
/// [`crate::NodeSnapshot`] (the bookkeeping behind probe timeouts).
pub const PROTOCOL_VERSION: u16 = 2;

/// Errors produced while decoding wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload was not a structurally valid message.
    Malformed(String),
    /// The message was produced by a different protocol version.
    VersionMismatch {
        /// The version this library speaks.
        expected: u16,
        /// The version found in the message.
        found: u16,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed(detail) => write!(f, "malformed wire message: {detail}"),
            WireError::VersionMismatch { expected, found } => write!(
                f,
                "protocol version mismatch: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Serialization boundary shared by every message this crate defines:
/// encode to compact JSON, decode with a protocol-version check.
///
/// Only `Serialize` is required at the trait level so that messages over
/// borrowed identifiers (e.g. `ProbeRequest<&str>`) can still be encoded;
/// [`decode`](WireMessage::decode) additionally requires `Deserialize`.
pub trait WireMessage: Serialize {
    /// The version tag embedded in this message.
    fn wire_version(&self) -> u16;

    /// Encodes the message to its compact JSON wire form.
    fn encode(&self) -> String
    where
        Self: Sized,
    {
        serde::json::to_string(self)
    }

    /// Decodes a message from its wire form, rejecting payloads that are
    /// structurally invalid or tagged with a different protocol version.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] when the payload does not parse into this
    /// message type; [`WireError::VersionMismatch`] when it parses but was
    /// produced under a different [`PROTOCOL_VERSION`].
    fn decode(text: &str) -> Result<Self, WireError>
    where
        Self: Deserialize + Sized,
    {
        let message: Self =
            serde::json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))?;
        let found = message.wire_version();
        if found != PROTOCOL_VERSION {
            return Err(WireError::VersionMismatch {
                expected: PROTOCOL_VERSION,
                found,
            });
        }
        Ok(message)
    }
}

/// A probe sent to one peer. `Id` names peers (an address, an index into a
/// membership list, a node name — anything the embedding application uses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRequest<Id> {
    /// Protocol version of the sender.
    pub version: u16,
    /// The peer this probe is addressed to.
    pub target: Id,
    /// The prober's own identity, when it has one. Responders use it to
    /// avoid gossiping the prober's own address back to it (and may learn
    /// the prober as a peer); `None` for anonymous probes.
    pub source: Option<Id>,
    /// Sender-local sequence number, echoed by the response so the transport
    /// can correlate and time the exchange.
    pub seq: u64,
    /// Driver-supplied send timestamp (milliseconds on the driver's own
    /// clock; never interpreted by the engine, only echoed).
    pub sent_at_ms: u64,
}

impl<Id> ProbeRequest<Id> {
    /// Builds a version-tagged anonymous probe of `target` with the given
    /// sequence number and driver clock reading.
    pub fn new(target: Id, seq: u64, sent_at_ms: u64) -> Self {
        ProbeRequest {
            version: PROTOCOL_VERSION,
            target,
            source: None,
            seq,
            sent_at_ms,
        }
    }

    /// Attaches the prober's identity.
    pub fn from_source(mut self, source: Id) -> Self {
        self.source = Some(source);
        self
    }
}

impl<Id: Serialize> WireMessage for ProbeRequest<Id> {
    fn wire_version(&self) -> u16 {
        self.version
    }
}

/// One gossiped peer: its identifier plus the last coordinate state the
/// responder held for it, so a prober can seed its neighbour table before
/// ever measuring the peer directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GossipEntry<Id> {
    /// The gossiped peer's identifier.
    pub id: Id,
    /// The peer's system-level coordinate as last seen by the responder.
    pub coordinate: Coordinate,
    /// The peer's Vivaldi error estimate as last seen by the responder.
    pub error_estimate: f64,
}

/// The reply to a [`ProbeRequest`]: the responder's coordinate state plus a
/// gossip payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeResponse<Id> {
    /// Protocol version of the responder.
    pub version: u16,
    /// The peer that produced this response.
    pub responder: Id,
    /// Echo of the request's sequence number.
    pub seq: u64,
    /// Echo of the request's send timestamp, so a stateless transport can
    /// compute the round trip as `now - sent_at_ms` on receipt.
    pub sent_at_ms: u64,
    /// The responder's current system-level coordinate.
    pub coordinate: Coordinate,
    /// The responder's current Vivaldi error estimate `w_j`.
    pub error_estimate: f64,
    /// Peers the responder knows about (the paper's deployments gossip one
    /// address per reply; the payload length is the responder's choice).
    pub gossip: Vec<GossipEntry<Id>>,
    /// The measured round-trip time in milliseconds. **Not transmitted
    /// meaningfully on the wire**: the responder leaves it at `0.0` and the
    /// prober's transport overwrites it on receipt, before handing the
    /// response to the engine. Keeping it on the message lets the whole
    /// observation travel as one value through queues and logs.
    pub rtt_ms: f64,
}

impl<Id> ProbeResponse<Id> {
    /// Builds a version-tagged response to `request` from a responder's
    /// current coordinate state. The gossip payload starts empty and
    /// `rtt_ms` at `0.0` (to be stamped by the prober's transport).
    pub fn new(
        responder: Id,
        request: &ProbeRequest<Id>,
        coordinate: Coordinate,
        error_estimate: f64,
    ) -> Self {
        ProbeResponse {
            version: PROTOCOL_VERSION,
            responder,
            seq: request.seq,
            sent_at_ms: request.sent_at_ms,
            coordinate,
            error_estimate,
            gossip: Vec::new(),
            rtt_ms: 0.0,
        }
    }

    /// Appends one gossiped peer to the payload.
    pub fn with_gossip(mut self, entry: GossipEntry<Id>) -> Self {
        self.gossip.push(entry);
        self
    }
}

impl<Id: Serialize> WireMessage for ProbeResponse<Id> {
    fn wire_version(&self) -> u16 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coordinate() -> Coordinate {
        Coordinate::new(vec![1.5, -2.0, 0.25]).unwrap()
    }

    #[test]
    fn request_round_trips() {
        let request: ProbeRequest<u64> = ProbeRequest::new(42, 9, 123_456);
        let decoded = ProbeRequest::<u64>::decode(&request.encode()).unwrap();
        assert_eq!(decoded, request);
    }

    #[test]
    fn response_round_trips_with_gossip() {
        let request: ProbeRequest<String> = ProbeRequest::new("b".into(), 3, 10);
        let mut response = ProbeResponse::new("b".to_string(), &request, coordinate(), 0.4)
            .with_gossip(GossipEntry {
                id: "c".to_string(),
                coordinate: coordinate(),
                error_estimate: 0.9,
            });
        response.rtt_ms = 77.25;
        let decoded = ProbeResponse::<String>::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
        assert_eq!(decoded.gossip.len(), 1);
        assert_eq!(decoded.rtt_ms, 77.25);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut request: ProbeRequest<u64> = ProbeRequest::new(1, 1, 1);
        request.version = PROTOCOL_VERSION + 1;
        let err = ProbeRequest::<u64>::decode(&request.encode()).unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                expected: PROTOCOL_VERSION,
                found: PROTOCOL_VERSION + 1,
            }
        );
    }

    #[test]
    fn non_finite_coordinates_cannot_enter_off_the_wire() {
        // A hostile or corrupt peer must not be able to inject NaN/∞ into
        // the coordinate space: `1e999` parses to +∞ and must be rejected
        // by the Coordinate invariant check during decode, not accepted and
        // propagated through Vivaldi.
        let request: ProbeRequest<u32> = ProbeRequest::new(7, 0, 0);
        let mut response = ProbeResponse::new(7, &request, coordinate(), 0.4);
        response.rtt_ms = 50.0;
        let poisoned = response.encode().replace(
            "\"components\":[1.5,-2.0,0.25]",
            "\"components\":[1e999,-2.0,0.25]",
        );
        assert!(
            poisoned.contains("1e999"),
            "test must actually tamper the payload: {poisoned}"
        );
        assert!(matches!(
            ProbeResponse::<u32>::decode(&poisoned),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(matches!(
            ProbeRequest::<u64>::decode("not json"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            ProbeRequest::<u64>::decode("{\"version\":1}"),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn errors_display() {
        assert!(!WireError::Malformed("x".into()).to_string().is_empty());
        let mismatch = WireError::VersionMismatch {
            expected: 1,
            found: 2,
        };
        assert!(mismatch.to_string().contains("expected 1"));
    }
}
