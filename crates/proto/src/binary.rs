//! Compact, versioned **binary** wire codec for the probe protocol and for
//! node snapshots.
//!
//! The JSON form of [`WireMessage`](crate::WireMessage) is convenient for
//! logs and tests, but it has no canonical byte layout — field order, float
//! formatting and whitespace are all serializer details. A deployable UDP
//! transport needs a byte format that is stable enough to pin with golden
//! fixtures and small enough to fit comfortably in a single datagram. This
//! module defines that format.
//!
//! # Framing
//!
//! Every binary message starts with the same 5-byte header:
//!
//! | offset | size | content                                              |
//! |--------|------|------------------------------------------------------|
//! | 0      | 2    | magic `b"NC"` (`0x4E 0x43`)                          |
//! | 2      | 2    | [`PROTOCOL_VERSION`], little-endian `u16`            |
//! | 4      | 1    | message kind: `0x01` request, `0x02` response, `0x03` snapshot |
//!
//! Decoding rejects a wrong magic or kind as [`WireError::Malformed`] and a
//! different version as [`WireError::VersionMismatch`] — exactly the JSON
//! path's contract. Trailing bytes after a complete payload are rejected
//! too, so a datagram carries exactly one message.
//!
//! # Primitives
//!
//! * **varint** — unsigned LEB128: 7 value bits per byte, little-endian
//!   groups, high bit set on every byte but the last; at most 10 bytes for a
//!   `u64`. All counts, sequence numbers and timestamps use it (timestamps
//!   and sequence numbers are small early in a node's life, so most probes
//!   fit in ~20 bytes).
//! * **f64** — 8 bytes, IEEE-754 bit pattern, little-endian.
//! * **string** — varint byte length, then that many bytes of UTF-8.
//! * **option** — one byte, `0x00` = absent, `0x01` = present followed by
//!   the payload.
//! * **list** — varint element count, then the elements back to back.
//!
//! # Coordinates
//!
//! A coordinate is one byte of dimensionality `d` (1 ≤ `d` ≤
//! [`MAX_DIMS`](nc_vivaldi::MAX_DIMS)), then `d` components as f64, then the
//! height as f64. Decoding re-validates the [`Coordinate`] invariants, so
//! NaN/∞ cannot enter off the wire.
//!
//! # Peer identifiers
//!
//! Messages are generic over the peer identifier. The [`WireId`] trait
//! defines the binary layout per identifier type; implementations are
//! provided for `u32`/`u64`/`usize` (varint), `String` (string) and
//! `SocketAddr` — the identifier a real UDP deployment uses — as one byte
//! `0x04`/`0x06` for the address family, the 4- or 16-byte IP address
//! octets, and the port as a little-endian `u16` (IPv6 flow label and scope
//! id are not carried).
//!
//! # Message payloads (after the header)
//!
//! **`ProbeRequest`** (kind `0x01`): target id · option(source id) ·
//! varint seq · varint sent_at_ms.
//!
//! **`ProbeResponse`** (kind `0x02`): responder id · varint seq ·
//! varint sent_at_ms · coordinate · f64 error_estimate ·
//! list(gossip entry: id · coordinate · f64 error_estimate) · f64 rtt_ms.
//!
//! **`NodeSnapshot`** (kind `0x03`): a hand-laid skeleton carrying the
//! engine's own tables, with the three deep sub-states (Vivaldi state,
//! application-coordinate manager state, per-link filter states) embedded as
//! self-describing *value blobs* (below), so their evolution does not
//! require relaying this format: value(vivaldi) · value(application) ·
//! list(link: id · option(value(filter)) · coordinate · f64 error_estimate ·
//! option(f64 filtered_rtt_ms) · varint observations) ·
//! option(nearest: id · f64 rtt) · varint observations · option(identity id)
//! · list(member id) · varint probe_cursor · varint probe_seq ·
//! varint gossip_cursor · list(pending: id · varint seq · varint sent_at_ms)
//! · list(streak: id · varint count).
//!
//! # Value blobs
//!
//! A value blob is the serde data model ([`serde::Value`]) in tagged binary
//! form — the binary twin of the JSON encoding, reusing each type's existing
//! `Serialize`/`Deserialize` implementation:
//!
//! | tag    | value | payload                                   |
//! |--------|-------|-------------------------------------------|
//! | `0x00` | null  | —                                         |
//! | `0x01` | false | —                                         |
//! | `0x02` | true  | —                                         |
//! | `0x03` | int   | zigzag varint (`(n << 1) ^ (n >> 63)`)    |
//! | `0x04` | uint  | varint                                    |
//! | `0x05` | float | f64                                       |
//! | `0x06` | str   | string                                    |
//! | `0x07` | seq   | varint count, then that many values       |
//! | `0x08` | map   | varint count, then (string key, value) pairs |
//!
//! Nesting depth is capped at 64 on decode so hostile input cannot overflow
//! the stack.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

use nc_vivaldi::{Coordinate, MAX_DIMS};
use serde::{Deserialize, Serialize, Value};

use crate::snapshot::{LinkSnapshot, NodeSnapshot, PendingProbe};
use crate::wire::{GossipEntry, ProbeRequest, ProbeResponse, WireError, PROTOCOL_VERSION};

/// The two magic bytes opening every binary message.
pub const MAGIC: [u8; 2] = *b"NC";

/// Message-kind byte for [`ProbeRequest`].
pub const KIND_REQUEST: u8 = 0x01;
/// Message-kind byte for [`ProbeResponse`].
pub const KIND_RESPONSE: u8 = 0x02;
/// Message-kind byte for [`NodeSnapshot`].
pub const KIND_SNAPSHOT: u8 = 0x03;

/// Maximum nesting depth a value blob may reach on decode.
const MAX_VALUE_DEPTH: u32 = 64;

fn malformed(detail: impl Into<String>) -> WireError {
    WireError::Malformed(detail.into())
}

// ---------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, value: &str) {
    put_varint(out, value.len() as u64);
    out.extend_from_slice(value.as_bytes());
}

fn put_coordinate(out: &mut Vec<u8>, coordinate: &Coordinate) {
    let components = coordinate.components();
    out.push(components.len() as u8);
    for &component in components {
        put_f64(out, component);
    }
    put_f64(out, coordinate.height());
}

fn put_option<T>(out: &mut Vec<u8>, value: Option<&T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match value {
        None => out.push(0),
        Some(inner) => {
            out.push(1);
            put(out, inner);
        }
    }
}

// ---------------------------------------------------------------------
// Cursor-based reader
// ---------------------------------------------------------------------

/// A bounds-checked cursor over a binary payload. Every read fails with
/// [`WireError::Malformed`] instead of panicking, whatever the input.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice for reading from the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, position: 0 }
    }

    fn take(&mut self, count: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .position
            .checked_add(count)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| malformed("truncated message"))?;
        let slice = &self.bytes[self.position..end];
        self.position = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads an unsigned LEB128 varint.
    pub fn read_varint(&mut self) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err(malformed("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(malformed("varint longer than 10 bytes"));
            }
        }
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn read_f64(&mut self) -> Result<f64, WireError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("take returned 8 bytes");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String, WireError> {
        let len = usize::try_from(self.read_varint()?)
            .map_err(|_| malformed("string length overflows usize"))?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not UTF-8"))
    }

    /// Reads a list length, bounding it by the bytes actually remaining so a
    /// hostile length prefix cannot trigger a huge allocation.
    fn read_count(&mut self, min_element_bytes: usize) -> Result<usize, WireError> {
        let count =
            usize::try_from(self.read_varint()?).map_err(|_| malformed("count overflows usize"))?;
        let remaining = self.bytes.len() - self.position;
        if count > remaining / min_element_bytes.max(1) {
            return Err(malformed("count exceeds remaining payload"));
        }
        Ok(count)
    }

    /// Reads an option marker byte.
    pub fn read_option(&mut self) -> Result<bool, WireError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(malformed(format!("invalid option marker {other}"))),
        }
    }

    /// Reads a coordinate, re-validating its invariants.
    pub fn read_coordinate(&mut self) -> Result<Coordinate, WireError> {
        let dims = usize::from(self.read_u8()?);
        if dims == 0 || dims > MAX_DIMS {
            return Err(malformed(format!("coordinate dimensionality {dims}")));
        }
        let mut components = [0.0f64; MAX_DIMS];
        for slot in components.iter_mut().take(dims) {
            *slot = self.read_f64()?;
        }
        let height = self.read_f64()?;
        Coordinate::with_height(&components[..dims], height)
            .map_err(|e| malformed(format!("invalid coordinate: {e}")))
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.position == self.bytes.len()
    }
}

// ---------------------------------------------------------------------
// Peer identifiers
// ---------------------------------------------------------------------

/// Binary layout of a peer identifier (see the [module docs](self)).
pub trait WireId: Sized {
    /// Appends the identifier's binary form to `out`.
    fn encode_id(&self, out: &mut Vec<u8>);
    /// Reads one identifier.
    fn decode_id(reader: &mut Reader<'_>) -> Result<Self, WireError>;
}

macro_rules! impl_varint_wire_id {
    ($($t:ty),*) => {$(
        impl WireId for $t {
            fn encode_id(&self, out: &mut Vec<u8>) {
                put_varint(out, *self as u64);
            }
            fn decode_id(reader: &mut Reader<'_>) -> Result<Self, WireError> {
                let value = reader.read_varint()?;
                <$t>::try_from(value)
                    .map_err(|_| malformed(concat!("id overflows ", stringify!($t))))
            }
        }
    )*};
}

impl_varint_wire_id!(u32, u64, usize);

impl WireId for String {
    fn encode_id(&self, out: &mut Vec<u8>) {
        put_str(out, self);
    }
    fn decode_id(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        reader.read_str()
    }
}

impl WireId for SocketAddr {
    fn encode_id(&self, out: &mut Vec<u8>) {
        match self.ip() {
            IpAddr::V4(ip) => {
                out.push(0x04);
                out.extend_from_slice(&ip.octets());
            }
            IpAddr::V6(ip) => {
                out.push(0x06);
                out.extend_from_slice(&ip.octets());
            }
        }
        out.extend_from_slice(&self.port().to_le_bytes());
    }
    fn decode_id(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let ip = match reader.read_u8()? {
            0x04 => {
                let octets: [u8; 4] = reader.take(4)?.try_into().expect("4 bytes");
                IpAddr::V4(Ipv4Addr::from(octets))
            }
            0x06 => {
                let octets: [u8; 16] = reader.take(16)?.try_into().expect("16 bytes");
                IpAddr::V6(Ipv6Addr::from(octets))
            }
            other => return Err(malformed(format!("invalid address family {other}"))),
        };
        let port: [u8; 2] = reader.take(2)?.try_into().expect("2 bytes");
        Ok(SocketAddr::new(ip, u16::from_le_bytes(port)))
    }
}

// ---------------------------------------------------------------------
// Value blobs
// ---------------------------------------------------------------------

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(0x00),
        Value::Bool(false) => out.push(0x01),
        Value::Bool(true) => out.push(0x02),
        Value::Int(n) => {
            out.push(0x03);
            put_varint(out, ((n << 1) ^ (n >> 63)) as u64);
        }
        Value::UInt(n) => {
            out.push(0x04);
            put_varint(out, *n);
        }
        Value::Float(f) => {
            out.push(0x05);
            put_f64(out, *f);
        }
        Value::Str(s) => {
            out.push(0x06);
            put_str(out, s);
        }
        Value::Seq(items) => {
            out.push(0x07);
            put_varint(out, items.len() as u64);
            for item in items {
                put_value(out, item);
            }
        }
        Value::Map(entries) => {
            out.push(0x08);
            put_varint(out, entries.len() as u64);
            for (key, entry) in entries {
                put_str(out, key);
                put_value(out, entry);
            }
        }
    }
}

fn read_value(reader: &mut Reader<'_>, depth: u32) -> Result<Value, WireError> {
    if depth > MAX_VALUE_DEPTH {
        return Err(malformed("value nesting too deep"));
    }
    match reader.read_u8()? {
        0x00 => Ok(Value::Null),
        0x01 => Ok(Value::Bool(false)),
        0x02 => Ok(Value::Bool(true)),
        0x03 => {
            let zigzag = reader.read_varint()?;
            Ok(Value::Int(((zigzag >> 1) as i64) ^ -((zigzag & 1) as i64)))
        }
        0x04 => Ok(Value::UInt(reader.read_varint()?)),
        0x05 => Ok(Value::Float(reader.read_f64()?)),
        0x06 => Ok(Value::Str(reader.read_str()?)),
        0x07 => {
            let count = reader.read_count(1)?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(read_value(reader, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        0x08 => {
            let count = reader.read_count(2)?;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let key = reader.read_str()?;
                entries.push((key, read_value(reader, depth + 1)?));
            }
            Ok(Value::Map(entries))
        }
        other => Err(malformed(format!("invalid value tag {other}"))),
    }
}

fn put_serialized<T: Serialize>(out: &mut Vec<u8>, value: &T) {
    put_value(out, &value.to_value());
}

fn read_deserialized<T: Deserialize>(reader: &mut Reader<'_>, what: &str) -> Result<T, WireError> {
    let value = read_value(reader, 0)?;
    T::from_value(&value).map_err(|e| malformed(format!("invalid {what}: {e}")))
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

fn put_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.push(kind);
}

/// Strips and validates the 5-byte header, returning the message kind and a
/// reader positioned at the payload.
fn open_frame(bytes: &[u8]) -> Result<(u8, Reader<'_>), WireError> {
    let mut reader = Reader::new(bytes);
    let magic = reader.take(2)?;
    if magic != MAGIC {
        return Err(malformed("bad magic"));
    }
    let version_bytes: [u8; 2] = reader.take(2)?.try_into().expect("2 bytes");
    let found = u16::from_le_bytes(version_bytes);
    if found != PROTOCOL_VERSION {
        return Err(WireError::VersionMismatch {
            expected: PROTOCOL_VERSION,
            found,
        });
    }
    let kind = reader.read_u8()?;
    Ok((kind, reader))
}

fn finish<T>(reader: Reader<'_>, message: T) -> Result<T, WireError> {
    if reader.is_empty() {
        Ok(message)
    } else {
        Err(malformed("trailing bytes after message"))
    }
}

/// The binary twin of [`WireMessage`](crate::WireMessage): a canonical,
/// compact byte encoding with the same version-checking contract.
pub trait BinaryMessage: Sized {
    /// Encodes the message to its framed binary form.
    fn encode_binary(&self) -> Vec<u8>;

    /// Decodes a framed binary message.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for anything structurally wrong (bad magic,
    /// wrong kind, truncation, trailing bytes, invalid coordinates);
    /// [`WireError::VersionMismatch`] when the header carries a different
    /// [`PROTOCOL_VERSION`].
    fn decode_binary(bytes: &[u8]) -> Result<Self, WireError>;
}

fn put_request<Id: WireId>(out: &mut Vec<u8>, request: &ProbeRequest<Id>) {
    request.target.encode_id(out);
    put_option(out, request.source.as_ref(), |out, id| id.encode_id(out));
    put_varint(out, request.seq);
    put_varint(out, request.sent_at_ms);
}

fn read_request<Id: WireId>(reader: &mut Reader<'_>) -> Result<ProbeRequest<Id>, WireError> {
    let target = Id::decode_id(reader)?;
    let source = if reader.read_option()? {
        Some(Id::decode_id(reader)?)
    } else {
        None
    };
    Ok(ProbeRequest {
        version: PROTOCOL_VERSION,
        target,
        source,
        seq: reader.read_varint()?,
        sent_at_ms: reader.read_varint()?,
    })
}

impl<Id: WireId> BinaryMessage for ProbeRequest<Id> {
    fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        put_header(&mut out, KIND_REQUEST);
        put_request(&mut out, self);
        out
    }

    fn decode_binary(bytes: &[u8]) -> Result<Self, WireError> {
        let (kind, mut reader) = open_frame(bytes)?;
        if kind != KIND_REQUEST {
            return Err(malformed(format!("expected request, found kind {kind}")));
        }
        let request = read_request(&mut reader)?;
        finish(reader, request)
    }
}

fn put_response<Id: WireId>(out: &mut Vec<u8>, response: &ProbeResponse<Id>) {
    response.responder.encode_id(out);
    put_varint(out, response.seq);
    put_varint(out, response.sent_at_ms);
    put_coordinate(out, &response.coordinate);
    put_f64(out, response.error_estimate);
    put_varint(out, response.gossip.len() as u64);
    for entry in &response.gossip {
        entry.id.encode_id(out);
        put_coordinate(out, &entry.coordinate);
        put_f64(out, entry.error_estimate);
    }
    put_f64(out, response.rtt_ms);
}

fn read_response<Id: WireId>(reader: &mut Reader<'_>) -> Result<ProbeResponse<Id>, WireError> {
    let responder = Id::decode_id(reader)?;
    let seq = reader.read_varint()?;
    let sent_at_ms = reader.read_varint()?;
    let coordinate = reader.read_coordinate()?;
    let error_estimate = reader.read_f64()?;
    if !error_estimate.is_finite() {
        return Err(malformed("non-finite error estimate"));
    }
    let count = reader.read_count(1)?;
    let mut gossip = Vec::with_capacity(count);
    for _ in 0..count {
        let id = Id::decode_id(reader)?;
        let coordinate = reader.read_coordinate()?;
        let error_estimate = reader.read_f64()?;
        if !error_estimate.is_finite() {
            return Err(malformed("non-finite gossip error estimate"));
        }
        gossip.push(GossipEntry {
            id,
            coordinate,
            error_estimate,
        });
    }
    let rtt_ms = reader.read_f64()?;
    if !rtt_ms.is_finite() {
        return Err(malformed("non-finite rtt"));
    }
    Ok(ProbeResponse {
        version: PROTOCOL_VERSION,
        responder,
        seq,
        sent_at_ms,
        coordinate,
        error_estimate,
        gossip,
        rtt_ms,
    })
}

impl<Id: WireId> BinaryMessage for ProbeResponse<Id> {
    fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        put_header(&mut out, KIND_RESPONSE);
        put_response(&mut out, self);
        out
    }

    fn decode_binary(bytes: &[u8]) -> Result<Self, WireError> {
        let (kind, mut reader) = open_frame(bytes)?;
        if kind != KIND_RESPONSE {
            return Err(malformed(format!("expected response, found kind {kind}")));
        }
        let response = read_response(&mut reader)?;
        finish(reader, response)
    }
}

impl<Id: WireId> BinaryMessage for NodeSnapshot<Id> {
    fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(512);
        put_header(&mut out, KIND_SNAPSHOT);
        put_serialized(&mut out, &self.vivaldi);
        put_serialized(&mut out, &self.application);
        put_varint(&mut out, self.links.len() as u64);
        for link in &self.links {
            link.id.encode_id(&mut out);
            put_option(&mut out, link.filter.as_ref(), put_serialized);
            put_coordinate(&mut out, &link.coordinate);
            put_f64(&mut out, link.error_estimate);
            put_option(&mut out, link.filtered_rtt_ms.as_ref(), |out, &rtt| {
                put_f64(out, rtt)
            });
            put_varint(&mut out, link.observations);
        }
        put_option(
            &mut out,
            self.nearest_neighbor.as_ref(),
            |out, (id, rtt)| {
                id.encode_id(out);
                put_f64(out, *rtt);
            },
        );
        put_varint(&mut out, self.observations);
        put_option(&mut out, self.identity.as_ref(), |out, id| {
            id.encode_id(out)
        });
        put_varint(&mut out, self.membership.len() as u64);
        for member in &self.membership {
            member.encode_id(&mut out);
        }
        put_varint(&mut out, self.probe_cursor as u64);
        put_varint(&mut out, self.probe_seq);
        put_varint(&mut out, self.gossip_cursor as u64);
        put_varint(&mut out, self.pending.len() as u64);
        for probe in &self.pending {
            probe.target.encode_id(&mut out);
            put_varint(&mut out, probe.seq);
            put_varint(&mut out, probe.sent_at_ms);
        }
        put_varint(&mut out, self.loss_streaks.len() as u64);
        for (id, streak) in &self.loss_streaks {
            id.encode_id(&mut out);
            put_varint(&mut out, u64::from(*streak));
        }
        out
    }

    fn decode_binary(bytes: &[u8]) -> Result<Self, WireError> {
        let (kind, mut reader) = open_frame(bytes)?;
        if kind != KIND_SNAPSHOT {
            return Err(malformed(format!("expected snapshot, found kind {kind}")));
        }
        let vivaldi = read_deserialized(&mut reader, "vivaldi state")?;
        let application = read_deserialized(&mut reader, "application state")?;
        let link_count = reader.read_count(1)?;
        let mut links = Vec::with_capacity(link_count);
        for _ in 0..link_count {
            let id = Id::decode_id(&mut reader)?;
            let filter = if reader.read_option()? {
                Some(read_deserialized(&mut reader, "filter state")?)
            } else {
                None
            };
            let coordinate = reader.read_coordinate()?;
            let error_estimate = reader.read_f64()?;
            let filtered_rtt_ms = if reader.read_option()? {
                Some(reader.read_f64()?)
            } else {
                None
            };
            let observations = reader.read_varint()?;
            links.push(LinkSnapshot {
                id,
                filter,
                coordinate,
                error_estimate,
                filtered_rtt_ms,
                observations,
            });
        }
        let nearest_neighbor = if reader.read_option()? {
            let id = Id::decode_id(&mut reader)?;
            let rtt = reader.read_f64()?;
            Some((id, rtt))
        } else {
            None
        };
        let observations = reader.read_varint()?;
        let identity = if reader.read_option()? {
            Some(Id::decode_id(&mut reader)?)
        } else {
            None
        };
        let member_count = reader.read_count(1)?;
        let mut membership = Vec::with_capacity(member_count);
        for _ in 0..member_count {
            membership.push(Id::decode_id(&mut reader)?);
        }
        let probe_cursor = usize::try_from(reader.read_varint()?)
            .map_err(|_| malformed("probe cursor overflows usize"))?;
        let probe_seq = reader.read_varint()?;
        let gossip_cursor = usize::try_from(reader.read_varint()?)
            .map_err(|_| malformed("gossip cursor overflows usize"))?;
        let pending_count = reader.read_count(1)?;
        let mut pending = Vec::with_capacity(pending_count);
        for _ in 0..pending_count {
            let target = Id::decode_id(&mut reader)?;
            let seq = reader.read_varint()?;
            let sent_at_ms = reader.read_varint()?;
            pending.push(PendingProbe {
                target,
                seq,
                sent_at_ms,
            });
        }
        let streak_count = reader.read_count(1)?;
        let mut loss_streaks = Vec::with_capacity(streak_count);
        for _ in 0..streak_count {
            let id = Id::decode_id(&mut reader)?;
            let streak = u32::try_from(reader.read_varint()?)
                .map_err(|_| malformed("loss streak overflows u32"))?;
            loss_streaks.push((id, streak));
        }
        let snapshot = NodeSnapshot {
            version: PROTOCOL_VERSION,
            vivaldi,
            application,
            links,
            nearest_neighbor,
            observations,
            identity,
            membership,
            probe_cursor,
            probe_seq,
            gossip_cursor,
            pending,
            loss_streaks,
        };
        finish(reader, snapshot)
    }
}

/// One decoded datagram: what a single-socket transport demultiplexes into.
///
/// A UDP node receives requests and responses on the same socket; the
/// message-kind byte in the header tells them apart without trial decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet<Id> {
    /// An incoming probe of this node.
    Request(ProbeRequest<Id>),
    /// A reply to one of this node's own probes.
    Response(ProbeResponse<Id>),
}

impl<Id: WireId> Packet<Id> {
    /// Decodes one datagram into a request or a response.
    ///
    /// # Errors
    ///
    /// Same contract as [`BinaryMessage::decode_binary`]; a snapshot kind is
    /// rejected as [`WireError::Malformed`] (snapshots are files, not
    /// datagrams).
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (kind, mut reader) = open_frame(bytes)?;
        match kind {
            KIND_REQUEST => {
                let request = read_request(&mut reader)?;
                finish(reader, Packet::Request(request))
            }
            KIND_RESPONSE => {
                let response = read_response(&mut reader)?;
                finish(reader, Packet::Response(response))
            }
            other => Err(malformed(format!("unexpected datagram kind {other}"))),
        }
    }

    /// Encodes the packet to its framed binary form.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Packet::Request(request) => request.encode_binary(),
            Packet::Response(response) => response.encode_binary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_at_the_boundaries() {
        for value in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, value);
            let mut reader = Reader::new(&out);
            assert_eq!(reader.read_varint().unwrap(), value);
            assert!(reader.is_empty());
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let bytes = [0x80u8; 11];
        assert!(Reader::new(&bytes).read_varint().is_err());
        // 10 bytes whose top byte sets bits beyond the 64th.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert!(Reader::new(&bytes).read_varint().is_err());
    }

    #[test]
    fn socket_addrs_round_trip() {
        let addrs: [SocketAddr; 3] = [
            "127.0.0.1:9000".parse().unwrap(),
            "255.255.255.255:65535".parse().unwrap(),
            "[2001:db8::1]:443".parse().unwrap(),
        ];
        for addr in addrs {
            let mut out = Vec::new();
            addr.encode_id(&mut out);
            let mut reader = Reader::new(&out);
            assert_eq!(SocketAddr::decode_id(&mut reader).unwrap(), addr);
            assert!(reader.is_empty());
        }
    }

    #[test]
    fn zigzag_ints_round_trip() {
        for n in [0i64, -1, 1, -2, i64::MIN, i64::MAX] {
            let mut out = Vec::new();
            put_value(&mut out, &Value::Int(n));
            let mut reader = Reader::new(&out);
            assert_eq!(read_value(&mut reader, 0).unwrap(), Value::Int(n));
        }
    }

    #[test]
    fn hostile_list_count_is_rejected_without_allocating() {
        // kind byte for a response, then a gossip count of u64::MAX: the
        // count check must reject it instead of attempting the allocation.
        let mut bytes = Vec::new();
        put_header(&mut bytes, KIND_RESPONSE);
        7u64.encode_id(&mut bytes); // responder
        put_varint(&mut bytes, 1); // seq
        put_varint(&mut bytes, 2); // sent_at
        put_coordinate(&mut bytes, &Coordinate::origin(3));
        put_f64(&mut bytes, 0.5);
        put_varint(&mut bytes, u64::MAX); // gossip count
        assert!(matches!(
            ProbeResponse::<u64>::decode_binary(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn deep_value_nesting_is_rejected() {
        let mut bytes = Vec::new();
        put_header(&mut bytes, KIND_SNAPSHOT);
        for _ in 0..200 {
            bytes.push(0x07); // Seq
            bytes.push(1); // of one element
        }
        bytes.push(0x00);
        assert!(matches!(
            NodeSnapshot::<u64>::decode_binary(&bytes),
            Err(WireError::Malformed(_))
        ));
    }
}
