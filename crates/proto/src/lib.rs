//! Sans-I/O protocol layer for the stable-coordinates stack.
//!
//! The coordinate subsystem of *Stable and Accurate Network Coordinates* is
//! something a distributed application *embeds*: probes carry a coordinate
//! and an error estimate on the wire, and the application consumes a stream
//! of rare, significant updates. This crate defines that boundary without
//! performing any I/O itself, so the same engine can be driven by the
//! discrete-event simulator, a UDP daemon, or a trace replayer:
//!
//! * [`ProbeRequest`] / [`ProbeResponse`] — the versioned wire messages of
//!   the probe protocol, carrying the responder's system-level coordinate,
//!   its Vivaldi error estimate, a gossip payload of known peers, and the
//!   driver-supplied timestamps used to measure the round trip.
//! * [`Event`] — the typed observations an engine emits while digesting
//!   responses: filter suppressions, Vivaldi rejections, system-level
//!   movement, application-level updates, neighbour discovery, probe losses
//!   and neighbour eviction.
//! * [`NodeSnapshot`] — the full serializable runtime state of a node
//!   (Vivaldi state, per-link filter states, application-level coordinate
//!   manager state, neighbour table and probe-scheduling cursors) for
//!   persist/restore and process migration.
//!
//! All messages serialize through [`WireMessage`] to JSON with an explicit
//! [`PROTOCOL_VERSION`] tag; decoding a message produced by a different
//! protocol version fails with [`WireError::VersionMismatch`] instead of
//! misinterpreting fields. For real datagrams and snapshot files there is
//! additionally a canonical, compact **binary** form behind
//! [`BinaryMessage`] (with [`Packet`] demultiplexing a single socket's
//! incoming traffic); its byte-by-byte layout is specified in [`binary`].
//!
//! # Example: one request/response exchange on the wire
//!
//! ```
//! use nc_proto::{ProbeRequest, ProbeResponse, WireMessage, PROTOCOL_VERSION};
//! use nc_vivaldi::Coordinate;
//!
//! let request: ProbeRequest<String> = ProbeRequest::new("peer-b".into(), 7, 1_000);
//! let text = request.encode();
//! let decoded = ProbeRequest::<String>::decode(&text).unwrap();
//! assert_eq!(decoded, request);
//!
//! let mut response = ProbeResponse::new(
//!     "peer-b".to_string(),
//!     &request,
//!     Coordinate::new(vec![10.0, 20.0, 0.0]).unwrap(),
//!     0.35,
//! );
//! // The prober's transport measures the round trip and stamps it in before
//! // handing the response to the engine.
//! response.rtt_ms = 42.0;
//! assert_eq!(response.version, PROTOCOL_VERSION);
//! assert_eq!(response.seq, 7);
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod binary;
pub mod event;
pub mod snapshot;
pub mod wire;

pub use binary::{BinaryMessage, Packet, WireId};
pub use event::Event;
pub use snapshot::{LinkSnapshot, NodeSnapshot, PendingProbe};
pub use wire::{
    GossipEntry, ProbeRequest, ProbeResponse, WireError, WireMessage, PROTOCOL_VERSION,
};
