//! Golden-bytes fixtures and property tests for the binary wire codec.
//!
//! The golden fixtures pin the exact byte layout documented in
//! `nc_proto::binary` — any accidental change to the format fails these
//! tests before it silently breaks cross-version deployments. The property
//! tests establish the codec's two safety contracts: every message
//! round-trips bit-exactly, and no input (truncated, corrupted, hostile)
//! can make the decoder panic.

use std::net::SocketAddr;

use nc_proto::binary::{KIND_REQUEST, KIND_RESPONSE, MAGIC};
use nc_proto::{
    BinaryMessage, GossipEntry, NodeSnapshot, Packet, ProbeRequest, ProbeResponse, WireError,
    PROTOCOL_VERSION,
};
use nc_vivaldi::Coordinate;
use proptest::prelude::*;

fn le_f64(value: f64) -> [u8; 8] {
    value.to_bits().to_le_bytes()
}

#[test]
fn request_golden_bytes() {
    let request: ProbeRequest<u32> = ProbeRequest::new(7, 300, 45).from_source(1);
    let expected: Vec<u8> = vec![
        0x4E, 0x43, // magic "NC"
        0x02, 0x00, // protocol version 2, u16 LE
        0x01, // kind: request
        0x07, // target id 7 (varint)
        0x01, 0x01, // source present, id 1
        0xAC, 0x02, // seq 300 (varint: 0x2C | 0x80, 0x02)
        0x2D, // sent_at_ms 45
    ];
    assert_eq!(request.encode_binary(), expected);
    assert_eq!(
        ProbeRequest::<u32>::decode_binary(&expected).unwrap(),
        request
    );
}

#[test]
fn response_golden_bytes() {
    let addr: SocketAddr = "127.0.0.1:9000".parse().unwrap();
    let request: ProbeRequest<SocketAddr> = ProbeRequest::new(addr, 5, 1000);
    let response = ProbeResponse::new(
        addr,
        &request,
        Coordinate::new(vec![1.5, -2.0, 0.25]).unwrap(),
        0.5,
    );
    let mut expected: Vec<u8> = vec![
        0x4E, 0x43, // magic
        0x02, 0x00, // version 2
        0x02, // kind: response
        0x04, 127, 0, 0, 1, 0x28, 0x23, // responder 127.0.0.1:9000 (port LE)
        0x05, // seq 5
        0xE8, 0x07, // sent_at_ms 1000
        0x03, // coordinate: 3 dimensions
    ];
    expected.extend_from_slice(&le_f64(1.5));
    expected.extend_from_slice(&le_f64(-2.0));
    expected.extend_from_slice(&le_f64(0.25));
    expected.extend_from_slice(&le_f64(0.0)); // height
    expected.extend_from_slice(&le_f64(0.5)); // error estimate
    expected.push(0x00); // empty gossip list
    expected.extend_from_slice(&le_f64(0.0)); // rtt (stamped by the prober)
    assert_eq!(response.encode_binary(), expected);
    assert_eq!(
        ProbeResponse::<SocketAddr>::decode_binary(&expected).unwrap(),
        response
    );
}

#[test]
fn header_is_shared_and_versioned() {
    let request: ProbeRequest<u64> = ProbeRequest::new(1, 2, 3);
    let mut bytes = request.encode_binary();
    assert_eq!(&bytes[..2], &MAGIC);
    assert_eq!(u16::from_le_bytes([bytes[2], bytes[3]]), PROTOCOL_VERSION);
    assert_eq!(bytes[4], KIND_REQUEST);

    // A bumped version is a VersionMismatch, not garbage decoding.
    bytes[2] = bytes[2].wrapping_add(1);
    assert_eq!(
        ProbeRequest::<u64>::decode_binary(&bytes),
        Err(WireError::VersionMismatch {
            expected: PROTOCOL_VERSION,
            found: PROTOCOL_VERSION + 1,
        })
    );

    // The wrong kind for the requested type is Malformed.
    let response_bytes = {
        let response = ProbeResponse::new(1u64, &request, Coordinate::origin(3), 0.5);
        response.encode_binary()
    };
    assert!(matches!(
        ProbeRequest::<u64>::decode_binary(&response_bytes),
        Err(WireError::Malformed(_))
    ));
    assert_eq!(response_bytes[4], KIND_RESPONSE);
}

#[test]
fn packet_demultiplexes_requests_and_responses() {
    let request: ProbeRequest<String> = ProbeRequest::new("b".into(), 9, 100);
    let response = ProbeResponse::new("b".to_string(), &request, Coordinate::origin(3), 0.4)
        .with_gossip(GossipEntry {
            id: "c".to_string(),
            coordinate: Coordinate::new(vec![3.0, 4.0, 0.0]).unwrap(),
            error_estimate: 0.9,
        });
    assert_eq!(
        Packet::decode(&request.encode_binary()).unwrap(),
        Packet::Request(request.clone())
    );
    assert_eq!(
        Packet::decode(&response.encode_binary()).unwrap(),
        Packet::Response(response.clone())
    );
    // Packet::encode is the same bytes as the message's own encoding.
    assert_eq!(
        Packet::Request(request.clone()).encode(),
        request.encode_binary()
    );
    assert_eq!(
        Packet::Response(response.clone()).encode(),
        response.encode_binary()
    );
    // Snapshots are files, not datagrams.
    let snapshot = sample_snapshot();
    assert!(matches!(
        Packet::<String>::decode(&snapshot.encode_binary()),
        Err(WireError::Malformed(_))
    ));
}

fn sample_snapshot() -> NodeSnapshot<String> {
    use nc_change::{ApplicationState, HeuristicState};
    use nc_filters::FilterState;
    use nc_proto::{LinkSnapshot, PendingProbe};
    use nc_vivaldi::{VivaldiConfig, VivaldiState};

    NodeSnapshot {
        version: PROTOCOL_VERSION,
        vivaldi: VivaldiState::new(VivaldiConfig::paper_defaults()),
        application: ApplicationState {
            coordinate: Coordinate::new(vec![1.0, 2.0, 3.0]).unwrap(),
            update_count: 4,
            system_updates_seen: 100,
            total_displacement_ms: 17.5,
            heuristic: HeuristicState::Stateless,
        },
        links: vec![LinkSnapshot {
            id: "peer-a".into(),
            filter: Some(FilterState::MovingPercentile {
                window: vec![80.0, 81.5],
                seen: 2,
            }),
            coordinate: Coordinate::new(vec![10.0, 0.0, 0.0]).unwrap(),
            error_estimate: 0.5,
            filtered_rtt_ms: Some(80.0),
            observations: 2,
        }],
        nearest_neighbor: Some(("peer-a".into(), 80.0)),
        observations: 2,
        identity: Some("self".into()),
        membership: vec!["peer-a".into(), "peer-b".into()],
        probe_cursor: 1,
        probe_seq: 3,
        gossip_cursor: 0,
        pending: vec![PendingProbe {
            target: "peer-b".into(),
            seq: 2,
            sent_at_ms: 900,
        }],
        loss_streaks: vec![("peer-b".into(), 1)],
    }
}

#[test]
fn snapshot_round_trips_through_the_binary_form() {
    let snapshot = sample_snapshot();
    let bytes = snapshot.encode_binary();
    assert_eq!(bytes[4], nc_proto::binary::KIND_SNAPSHOT);
    let decoded = NodeSnapshot::<String>::decode_binary(&bytes).unwrap();
    assert_eq!(decoded, snapshot);
    // Encoding is canonical: re-encoding the decoded snapshot is
    // byte-identical.
    assert_eq!(decoded.encode_binary(), bytes);
}

#[test]
fn every_truncation_is_rejected_and_never_panics() {
    let addr: SocketAddr = "10.0.0.1:4242".parse().unwrap();
    let request: ProbeRequest<SocketAddr> = ProbeRequest::new(addr, 77, 12_345).from_source(addr);
    let response = ProbeResponse::new(
        addr,
        &request,
        Coordinate::new(vec![5.0, -1.0, 2.0]).unwrap(),
        0.3,
    )
    .with_gossip(GossipEntry {
        id: "[::1]:9".parse().unwrap(),
        coordinate: Coordinate::origin(3),
        error_estimate: 0.7,
    });
    let snapshot = sample_snapshot();

    let request_bytes = request.encode_binary();
    let response_bytes = response.encode_binary();
    let snapshot_bytes = snapshot.encode_binary();
    for len in 0..request_bytes.len() {
        assert!(ProbeRequest::<SocketAddr>::decode_binary(&request_bytes[..len]).is_err());
    }
    for len in 0..response_bytes.len() {
        assert!(ProbeResponse::<SocketAddr>::decode_binary(&response_bytes[..len]).is_err());
        assert!(Packet::<SocketAddr>::decode(&response_bytes[..len]).is_err());
    }
    for len in 0..snapshot_bytes.len() {
        assert!(NodeSnapshot::<String>::decode_binary(&snapshot_bytes[..len]).is_err());
    }
    // Trailing garbage is rejected too: one datagram, one message.
    let mut padded = request_bytes.clone();
    padded.push(0);
    assert!(ProbeRequest::<SocketAddr>::decode_binary(&padded).is_err());
}

#[test]
fn non_finite_floats_cannot_enter_off_the_wire() {
    let request: ProbeRequest<u64> = ProbeRequest::new(7, 0, 0);
    let response = ProbeResponse::new(
        7u64,
        &request,
        Coordinate::new(vec![1.5, -2.0, 0.25]).unwrap(),
        0.4,
    );
    let clean = response.encode_binary();
    // The first coordinate component starts right after the header, the
    // responder varint, two varints and the dimension byte.
    let component_offset = 5 + 1 + 1 + 1 + 1;
    let mut poisoned = clean.clone();
    poisoned[component_offset..component_offset + 8]
        .copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
    assert!(matches!(
        ProbeResponse::<u64>::decode_binary(&poisoned),
        Err(WireError::Malformed(_))
    ));
    // NaN error estimates are rejected as well (they would otherwise reach
    // the neighbour table before the engine's own sanitation).
    let error_offset = clean.len() - 8 - 1 - 8;
    let mut poisoned = clean.clone();
    poisoned[error_offset..error_offset + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
    assert!(matches!(
        ProbeResponse::<u64>::decode_binary(&poisoned),
        Err(WireError::Malformed(_))
    ));
}

proptest! {
    #[test]
    fn requests_round_trip(
        target in 0u64..u64::MAX,
        source in 0u64..u64::MAX,
        has_source in 0u8..2,
        seq in 0u64..u64::MAX,
        sent_at in 0u64..u64::MAX,
    ) {
        let mut request: ProbeRequest<u64> = ProbeRequest::new(target, seq, sent_at);
        if has_source == 1 {
            request = request.from_source(source);
        }
        let bytes = request.encode_binary();
        prop_assert_eq!(ProbeRequest::<u64>::decode_binary(&bytes).unwrap(), request);
    }

    #[test]
    fn responses_round_trip(
        components in proptest::collection::vec(-5_000.0f64..5_000.0, 1..8),
        height in 0.0f64..100.0,
        error in 0.0f64..10.0,
        rtt in 0.0f64..100_000.0,
        seq in 0u64..u64::MAX,
        sent_at in 0u64..1_000_000_000,
        gossip_components in proptest::collection::vec(-100.0f64..100.0, 3usize),
        gossip_count in 0usize..4,
    ) {
        let dims = components.len();
        let coordinate = Coordinate::with_height(&components, height).unwrap();
        let request: ProbeRequest<String> = ProbeRequest::new("peer".into(), seq, sent_at);
        let mut response = ProbeResponse::new("peer".to_string(), &request, coordinate, error);
        response.rtt_ms = rtt;
        for index in 0..gossip_count {
            // Gossip coordinates must share the responder's dimensionality
            // only in the engine, not on the wire — mix freely here.
            response = response.with_gossip(GossipEntry {
                id: format!("gossip-{index}"),
                coordinate: Coordinate::new(&gossip_components).unwrap(),
                error_estimate: error,
            });
        }
        let bytes = response.encode_binary();
        let decoded = ProbeResponse::<String>::decode_binary(&bytes).unwrap();
        prop_assert_eq!(decoded.coordinate.dimensions(), dims);
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn snapshots_round_trip(
        observations in 0u64..1_000_000,
        probe_cursor in 0usize..64,
        probe_seq in 0u64..1_000_000,
        gossip_cursor in 0usize..64,
        streak in 0u32..1_000,
        window in proptest::collection::vec(1.0f64..500.0, 1..6),
        pending_seq in 0u64..1_000_000,
        sent_at in 0u64..1_000_000_000,
    ) {
        use nc_filters::FilterState;
        let mut snapshot = sample_snapshot();
        snapshot.observations = observations;
        snapshot.probe_cursor = probe_cursor;
        snapshot.probe_seq = probe_seq;
        snapshot.gossip_cursor = gossip_cursor;
        snapshot.loss_streaks = vec![("peer-b".to_string(), streak)];
        snapshot.links[0].filter = Some(FilterState::MovingPercentile {
            window,
            seen: observations,
        });
        snapshot.pending = vec![nc_proto::PendingProbe {
            target: "peer-b".to_string(),
            seq: pending_seq,
            sent_at_ms: sent_at,
        }];
        let bytes = snapshot.encode_binary();
        let decoded = NodeSnapshot::<String>::decode_binary(&bytes).unwrap();
        prop_assert_eq!(decoded, snapshot);
    }

    #[test]
    fn single_byte_corruption_never_panics(
        position_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let addr: SocketAddr = "192.168.1.7:5353".parse().unwrap();
        let request: ProbeRequest<SocketAddr> = ProbeRequest::new(addr, 9, 1_234);
        let response = ProbeResponse::new(
            addr,
            &request,
            Coordinate::new(vec![12.0, 34.0, 56.0]).unwrap(),
            0.25,
        );
        let mut bytes = response.encode_binary();
        let position = ((bytes.len() - 1) as f64 * position_fraction) as usize;
        bytes[position] ^= flip;
        // Either error or a decoded message — never a panic.
        let _ = Packet::<SocketAddr>::decode(&bytes);
        let _ = ProbeResponse::<SocketAddr>::decode_binary(&bytes);
    }
}
