//! Regression suite for the node-sharded execution path
//! (`Simulator::with_threads`): partitioning one simulation's engine work
//! across worker threads must produce a `SimReport` that is
//! **byte-identical** (serialized form) to the single-threaded run, across
//! every scenario family — plain runs, lossy links, churn (joins, leaves,
//! crashes with snapshot restarts), partitions, and coordinate tracking.

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::{Scenario, ScenarioAction};
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::NodeConfig;

fn encode(simulator: &mut Simulator) -> String {
    serde::json::to_string(&simulator.run())
}

/// Byte-compares a serial run against sharded runs at several thread counts.
fn assert_sharded_matches_serial(build: &dyn Fn() -> Simulator, label: &str) {
    let serial = encode(&mut build().with_serial_execution(true));
    assert!(!serial.is_empty());
    for threads in [1, 2, 3, 4] {
        let sharded = encode(&mut build().with_threads(threads));
        assert_eq!(
            sharded, serial,
            "{label}: sharded run with {threads} threads diverged from serial"
        );
    }
}

#[test]
fn plain_run_is_byte_identical_across_thread_counts() {
    let build = || {
        let workload = PlanetLabConfig::small(14).with_seed(11);
        let sim_config = SimConfig::new(700.0, 5.0)
            .with_measurement_start(100.0)
            .with_initial_neighbors(4)
            .with_protocol_seed(0xABCD);
        Simulator::new(
            workload,
            sim_config,
            vec![("mp".to_string(), NodeConfig::paper_defaults())],
        )
    };
    assert_sharded_matches_serial(&build, "plain");
}

#[test]
fn lossy_links_are_byte_identical_across_thread_counts() {
    let build = || {
        let workload = PlanetLabConfig::small(12).with_seed(7).with_link_config(
            LinkModelConfig::default()
                .with_loss_probability(0.05)
                .with_delay_asymmetry(0.2),
        );
        let sim_config = SimConfig::new(800.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4);
        Simulator::new(
            workload,
            sim_config,
            vec![("mp".to_string(), NodeConfig::paper_defaults())],
        )
    };
    assert_sharded_matches_serial(&build, "lossy");
}

#[test]
fn crash_restart_churn_is_byte_identical_across_thread_counts() {
    // Crashes hold pending probes in their snapshots; restarts expire them
    // (possibly evicting peers from the rotation). Both effects must land
    // identically no matter which shard owns the node.
    let build = || {
        let workload = PlanetLabConfig::small(12)
            .with_seed(5)
            .with_link_config(LinkModelConfig::default().with_loss_probability(0.02));
        let sim_config = SimConfig::new(900.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4)
            .with_tracked_nodes(vec![0, 5], 60.0);
        let scenario = Scenario::crash_restart(vec![1, 2, 7], 300.0, 450.0);
        Simulator::new(
            workload,
            sim_config,
            vec![(
                "mp".to_string(),
                NodeConfig::builder().max_consecutive_losses(3).build(),
            )],
        )
        .with_scenario(scenario)
    };
    assert_sharded_matches_serial(&build, "crash-restart");
}

#[test]
fn joins_leaves_and_partitions_are_byte_identical_across_thread_counts() {
    let build = || {
        let workload = PlanetLabConfig::small(14).with_seed(13);
        let sim_config = SimConfig::new(900.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4);
        let scenario = Scenario::new()
            .with_initially_down(vec![12, 13])
            .at(
                200.0,
                ScenarioAction::Join {
                    nodes: vec![12, 13],
                },
            )
            .at(350.0, ScenarioAction::Leave { nodes: vec![3] })
            .at(
                500.0,
                ScenarioAction::Partition {
                    group: vec![0, 1, 2, 4],
                    heal_at_s: 650.0,
                },
            );
        Simulator::new(
            workload,
            sim_config,
            vec![("mp".to_string(), NodeConfig::paper_defaults())],
        )
        .with_scenario(scenario)
    };
    assert_sharded_matches_serial(&build, "join-leave-partition");
}

#[test]
fn adversarial_run_with_drift_and_gate_is_byte_identical_across_thread_counts() {
    // Byzantine repliers (delayed replies can cross the probe timeout),
    // drifting base RTTs and the MAD outlier gate all have to land
    // identically no matter which shard owns the victim.
    let build = || {
        let workload = PlanetLabConfig::small(12).with_seed(21).with_link_config(
            LinkModelConfig::default()
                .with_loss_probability(0.02)
                .with_drift_walk(0.08, 300.0),
        );
        let sim_config = SimConfig::new(800.0, 5.0)
            .with_measurement_start(100.0)
            .with_initial_neighbors(4)
            .with_adversaries(
                0.25,
                nc_netsim::adversary::AdversaryModel::CoordinateLiar {
                    displacement_ms: 2_000.0,
                    inflate: 1.0,
                    error_estimate: 0.01,
                },
            );
        let scenario = Scenario::new()
            .at(
                250.0,
                ScenarioAction::SetAdversary {
                    nodes: vec![2],
                    model: Some(nc_netsim::adversary::AdversaryModel::DelayAttacker {
                        extra_delay_ms: 600.0,
                    }),
                },
            )
            .at(
                500.0,
                ScenarioAction::SetAdversary {
                    nodes: vec![2],
                    model: None,
                },
            );
        Simulator::new(
            workload,
            sim_config,
            vec![
                ("undefended".to_string(), NodeConfig::paper_defaults()),
                (
                    "defended".to_string(),
                    NodeConfig::builder()
                        .outlier_gate(stable_nc::OutlierGateConfig::default())
                        .build(),
                ),
            ],
        )
        .with_scenario(scenario)
    };
    assert_sharded_matches_serial(&build, "adversarial-drift-gate");
}

#[test]
fn multi_config_sharded_run_matches_serial() {
    // Sharding composes with side-by-side configurations: every worker runs
    // all configurations for its nodes, and the merged report must equal the
    // interleaved serial run.
    let build = || {
        let workload = PlanetLabConfig::small(10).with_seed(3);
        let sim_config = SimConfig::new(600.0, 5.0)
            .with_measurement_start(100.0)
            .with_initial_neighbors(3);
        Simulator::new(
            workload,
            sim_config,
            vec![
                ("mp".to_string(), NodeConfig::paper_defaults()),
                ("raw".to_string(), NodeConfig::original_vivaldi()),
            ],
        )
    };
    assert_sharded_matches_serial(&build, "multi-config");
}

#[test]
fn differing_eviction_thresholds_fall_back_to_serial() {
    // with_threads is a no-op when eviction thresholds differ across
    // configurations — the coupled unanimity rule needs the serial path.
    // The report must still match the explicit serial run.
    let build = || {
        let workload = PlanetLabConfig::small(8).with_seed(9);
        let sim_config = SimConfig::new(600.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(3)
            .with_gossip(false);
        let scenario = Scenario::new().at(150.0, ScenarioAction::Crash { nodes: vec![4] });
        Simulator::new(
            workload,
            sim_config,
            vec![
                (
                    "evict3".to_string(),
                    NodeConfig::builder().max_consecutive_losses(3).build(),
                ),
                (
                    "evict5".to_string(),
                    NodeConfig::builder().max_consecutive_losses(5).build(),
                ),
            ],
        )
        .with_scenario(scenario)
    };
    let serial = encode(&mut build().with_serial_execution(true));
    let sharded = encode(&mut build().with_threads(4));
    assert_eq!(sharded, serial);
}

#[test]
fn restart_expiry_evictions_reach_the_shared_rotation() {
    // Regression test for a latent neighbor-bookkeeping bug surfaced while
    // building the sharded planner: a node that crashes holding pending
    // probes whose expiry-at-restart pushes a loss streak over the eviction
    // threshold must drop that peer from the *shared* probe rotation, not
    // just from its engine's neighbor table. Before the fix the revived
    // node kept probing the evicted peer forever (the engine ignored the
    // replies as uncorrelated), so its loss accounting diverged from a
    // deployment — and the sharded planner, which mirrors engine evictions
    // exactly, diverged from the serial path.
    //
    // Setup: node 0 probes only node 1 (no gossip, one initial neighbor,
    // two-node mesh). Node 1 crashes silently at t=100, so probes from
    // t=100 on all time out (15 s timeout): losses land at t=115, 120, 125
    // — a streak of 3 against max_consecutive_losses(4). Node 0 crashes at
    // t=127 holding three probes in flight and restarts at t=200: expiring
    // them pushes the streak to the threshold, evicting node 1. If the
    // eviction reaches the rotation, node 0's neighbor set is empty after
    // the restart and its loss count freezes at 4; with the bug it keeps
    // probing the already-evicted peer and racks up further losses.
    let build = |serial: bool, threads: Option<usize>| {
        let workload = PlanetLabConfig::small(2).with_seed(1);
        let sim_config = SimConfig::new(600.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(1)
            .with_gossip(false);
        let scenario = Scenario::new()
            .at(100.0, ScenarioAction::Crash { nodes: vec![1] })
            .at(127.0, ScenarioAction::Crash { nodes: vec![0] })
            .at(200.0, ScenarioAction::Restart { nodes: vec![0] });
        let mut simulator = Simulator::new(
            workload,
            sim_config,
            vec![(
                "mp".to_string(),
                NodeConfig::builder().max_consecutive_losses(4).build(),
            )],
        )
        .with_scenario(scenario)
        .with_serial_execution(serial);
        if let Some(threads) = threads {
            simulator = simulator.with_threads(threads);
        }
        simulator
    };

    let report = build(true, None).run();
    let metrics = report.config("mp").unwrap();
    let lost = metrics.nodes[0].probes_lost;
    // Three timeout losses before the crash plus the expiry loss at the
    // restart (eviction releases the other two in-flight probes without
    // counting them). Without the fix the revived node re-registers the
    // evicted peer and loses another streak's worth before re-evicting.
    assert!(
        lost <= 5,
        "restart-expiry eviction must stop the probe cycle (lost {lost} probes)"
    );
    assert_eq!(metrics.nodes[0].neighbors_evicted, 1);

    // And the sharded planner mirrors the same eviction.
    let serial = encode(&mut build(true, None));
    let sharded = encode(&mut build(false, Some(2)));
    assert_eq!(sharded, serial);
}
