//! Property tests for the discrete-event core (vendored proptest).
//!
//! Two invariants carry the whole simulator:
//!
//! 1. the [`EventQueue`] pops events in nondecreasing time order, FIFO among
//!    equal times — the determinism and causality guarantee every handler
//!    relies on;
//! 2. a link that loses every packet produces *only* `ProbeLost` events:
//!    no observation arrives, no coordinate ever moves, and the probe
//!    schedule still runs to completion (lost probes never stall it).

use proptest::prelude::*;

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::sim::{EventQueue, SimConfig, Simulator};
use stable_nc::NodeConfig;

proptest! {
    #[test]
    fn pops_are_nondecreasing_in_time(
        times in proptest::collection::vec(0.0f64..10_000.0, 1..200),
    ) {
        let mut queue: EventQueue<usize> = EventQueue::new();
        for (index, &time) in times.iter().enumerate() {
            queue.schedule(time, index);
        }
        prop_assert_eq!(queue.len(), times.len());
        let mut last = f64::NEG_INFINITY;
        let mut popped = 0;
        while let Some((time, index)) = queue.pop() {
            prop_assert!(
                time >= last,
                "event {} at {} popped after an event at {}", index, time, last
            );
            prop_assert_eq!(time, times[index]);
            last = time;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert!(queue.is_empty());
    }

    #[test]
    fn equal_times_pop_in_insertion_order(
        time in 0.0f64..100.0,
        count in 2usize..50,
    ) {
        let mut queue: EventQueue<usize> = EventQueue::new();
        for index in 0..count {
            queue.schedule(time, index);
        }
        for expected in 0..count {
            let (popped_time, index) = queue.pop().unwrap();
            prop_assert_eq!(popped_time, time);
            prop_assert_eq!(index, expected, "FIFO among equal times");
        }
    }

    #[test]
    fn total_loss_yields_only_probe_lost_and_frozen_coordinates(
        seed in 0u64..500,
    ) {
        let workload = PlanetLabConfig::small(5)
            .with_seed(seed)
            .with_link_config(LinkModelConfig::default().with_loss_probability(1.0));
        let sim_config = SimConfig::new(120.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(2);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".to_string(), NodeConfig::paper_defaults())],
        )
        .run();
        let metrics = report.config("mp").unwrap();
        prop_assert!(
            metrics.total_probes_lost() > 0,
            "every probe must eventually be reported lost (seed {})", seed
        );
        for (node, node_metrics) in metrics.nodes.iter().enumerate() {
            prop_assert!(
                node_metrics.system_errors.is_empty(),
                "node {} observed through a 100% lossy mesh (seed {})", node, seed
            );
            prop_assert!(node_metrics.system_displacements.is_empty());
            prop_assert_eq!(node_metrics.observations, 0);
        }
    }
}
