//! Property test for the node-sharded executor (vendored proptest): across
//! *randomized* loss rates, churn schedules and partition windows, a sharded
//! run must serialize to exactly the same bytes as the serial run. The
//! hand-picked scenarios in `sharded_determinism.rs` pin the known corner
//! cases; this suite searches the space between them (crashes racing
//! in-flight probes, restarts expiring pending streaks, partitions slicing
//! arbitrary groups, gossip on and off, several worker-thread counts).

use proptest::prelude::*;

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::{Scenario, ScenarioAction};
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::NodeConfig;

const NODES: usize = 10;
const DURATION_S: f64 = 500.0;

/// Decodes one churn operation from a random word (the vendored proptest
/// shim offers primitive strategies only, so structured cases are derived
/// from integers): a crash + restart pair, a graceful leave, or a timed
/// partition over an arbitrary node subset.
fn apply_op(scenario: Scenario, word: u64) -> Scenario {
    let node = ((word >> 2) % NODES as u64) as usize;
    let at_s = 50.0 + ((word >> 8) % 300) as f64;
    match word % 3 {
        0 => {
            let downtime_s = 30.0 + ((word >> 18) % 90) as f64;
            scenario
                .at(at_s, ScenarioAction::Crash { nodes: vec![node] })
                .at(
                    at_s + downtime_s,
                    ScenarioAction::Restart { nodes: vec![node] },
                )
        }
        1 => scenario.at(at_s, ScenarioAction::Leave { nodes: vec![node] }),
        _ => {
            let mask = ((word >> 28) & 0xFFFF) | 1;
            let width_s = 40.0 + ((word >> 44) % 110) as f64;
            let group: Vec<usize> = (0..NODES).filter(|&n| mask & (1 << n) != 0).collect();
            scenario.at(
                at_s,
                ScenarioAction::Partition {
                    group,
                    heal_at_s: at_s + width_s,
                },
            )
        }
    }
}

proptest! {
    #[test]
    fn sharded_report_matches_serial_over_randomized_schedules(
        seed in 0u64..10_000,
        loss in 0.0f64..0.15,
        gossip_word in 0u32..2,
        evict_word in 0u32..8,
        op_words in proptest::collection::vec(0u64..u64::MAX, 0..5),
    ) {
        let gossip = gossip_word == 1;
        // 2 in 8 draws disable eviction entirely; the rest spread the
        // threshold over 2..=6 consecutive losses.
        let evict = (evict_word >= 2).then(|| 2 + (evict_word - 2) % 5);
        let build = || {
            let workload = PlanetLabConfig::small(NODES)
                .with_seed(seed)
                .with_link_config(
                    LinkModelConfig::default().with_loss_probability(loss),
                );
            let sim_config = SimConfig::new(DURATION_S, 5.0)
                .with_measurement_start(100.0)
                .with_initial_neighbors(3)
                .with_gossip(gossip)
                .with_tracked_nodes(vec![0, NODES / 2], 50.0);
            let mut config = NodeConfig::builder();
            if let Some(max) = evict {
                config = config.max_consecutive_losses(max);
            }
            let scenario = op_words.iter().fold(Scenario::new(), |s, &w| apply_op(s, w));
            Simulator::new(
                workload,
                sim_config,
                vec![("mp".to_string(), config.build())],
            )
            .with_scenario(scenario)
        };
        let serial = serde::json::to_string(&build().with_serial_execution(true).run());
        for threads in [1usize, 2, 4] {
            let sharded = serde::json::to_string(&build().with_threads(threads).run());
            prop_assert_eq!(
                &sharded, &serial,
                "sharded ({} threads) diverged from serial (seed {})", threads, seed
            );
        }
    }
}
