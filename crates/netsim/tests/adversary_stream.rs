//! Stream-preservation contract of the adversarial robustness layer.
//!
//! The Byzantine machinery — per-node `AdversaryModel`s, the base-RTT drift
//! walk, and the MAD outlier gate — must be *invisible when off*: a
//! configuration with adversary fraction 0, drift sigma 0 and the gate
//! disabled has to serialize to exactly the same `SimReport` bytes as a
//! configuration that never mentions any of them, in serial and sharded
//! execution alike. These tests pin that contract, plus the sharded/serial
//! byte-identity of runs where the attacks *are* live.

use proptest::prelude::*;

use nc_netsim::adversary::{AdversaryConfig, AdversaryModel};
use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::{Scenario, ScenarioAction};
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::{NodeConfig, OutlierGateConfig};

const NODES: usize = 10;

fn encode(simulator: &mut Simulator) -> String {
    serde::json::to_string(&simulator.run())
}

fn base_sim_config() -> SimConfig {
    SimConfig::new(600.0, 5.0)
        .with_measurement_start(100.0)
        .with_initial_neighbors(4)
}

fn liar() -> AdversaryModel {
    AdversaryModel::CoordinateLiar {
        displacement_ms: 2_000.0,
        inflate: 1.0,
        error_estimate: 0.01,
    }
}

#[test]
fn zero_adversary_fraction_preserves_the_event_stream() {
    let workload = || PlanetLabConfig::small(NODES).with_seed(42);
    let configs = || vec![("mp".to_string(), NodeConfig::paper_defaults())];
    let baseline = encode(&mut Simulator::new(
        workload(),
        base_sim_config(),
        configs(),
    ));
    // An adversary block with fraction 0 selects nobody, so the adversary
    // RNG is never consumed and the report must not change by a byte.
    let with_block = encode(&mut Simulator::new(
        workload(),
        base_sim_config().with_adversary_config(AdversaryConfig::new(0.0, liar())),
        configs(),
    ));
    assert_eq!(with_block, baseline);
}

#[test]
fn zero_drift_sigma_preserves_the_event_stream() {
    let sim_config = base_sim_config;
    let configs = || vec![("mp".to_string(), NodeConfig::paper_defaults())];
    let baseline = encode(&mut Simulator::new(
        PlanetLabConfig::small(NODES).with_seed(42),
        sim_config(),
        configs(),
    ));
    // Drift with zero magnitude draws no walk levels and multiplies nothing
    // in: byte-identical to a link model that never mentions drift.
    let with_zero_drift = encode(&mut Simulator::new(
        PlanetLabConfig::small(NODES)
            .with_seed(42)
            .with_link_config(LinkModelConfig::default().with_drift_walk(0.0, 600.0)),
        sim_config(),
        configs(),
    ));
    assert_eq!(with_zero_drift, baseline);
}

#[test]
fn live_adversaries_change_the_report_and_the_gate_rejects_them() {
    let workload = || {
        PlanetLabConfig::small(NODES)
            .with_seed(42)
            .with_link_config(LinkModelConfig::default().with_drift_walk(0.05, 600.0))
    };
    let adversarial = || base_sim_config().with_adversaries(0.3, liar());
    let honest_report = Simulator::new(
        workload(),
        base_sim_config(),
        vec![("mp".to_string(), NodeConfig::paper_defaults())],
    )
    .run();
    let mut sim = Simulator::new(
        workload(),
        adversarial(),
        vec![
            ("undefended".to_string(), NodeConfig::paper_defaults()),
            (
                "defended".to_string(),
                NodeConfig::builder()
                    .outlier_gate(OutlierGateConfig::default())
                    .build(),
            ),
        ],
    );
    let adversaries = sim.adversaries();
    assert_eq!(adversaries.len(), 3, "0.3 of 10 nodes");
    let report = sim.run();

    let undefended = report.config("undefended").unwrap();
    let defended = report.config("defended").unwrap();
    // The gate visibly rejects observations; without it only Vivaldi's
    // plausibility check runs, which a 2 s lie does not trip.
    assert!(defended.total_observations_rejected() > undefended.total_observations_rejected());
    // And the attack really is an attack: the undefended arm is worse off
    // than the honest baseline run.
    let honest = honest_report.config("mp").unwrap();
    assert!(honest.total_observations_rejected() <= undefended.total_observations_rejected());
}

proptest! {
    #[test]
    fn sharded_adversarial_runs_match_serial(
        seed in 0u64..5_000,
        family in 0u32..3,
        fraction in 0.0f64..0.5,
        drift_word in 0u32..2,
        gate_word in 0u32..2,
        scripted in 0u32..2,
    ) {
        let model = match family {
            0 => liar(),
            1 => AdversaryModel::DelayAttacker { extra_delay_ms: 400.0 },
            _ => AdversaryModel::JitterBomb { max_extra_delay_ms: 900.0 },
        };
        let drift = drift_word == 1;
        let gated = gate_word == 1;
        let build = || {
            let mut link = LinkModelConfig::default().with_loss_probability(0.02);
            if drift {
                link = link.with_drift_walk(0.08, 300.0);
            }
            let workload = PlanetLabConfig::small(NODES)
                .with_seed(seed)
                .with_link_config(link);
            let sim_config = base_sim_config()
                .with_adversary_config(AdversaryConfig::new(fraction, model.clone()));
            let mut node = NodeConfig::builder();
            if gated {
                node = node.outlier_gate(OutlierGateConfig::default());
            }
            let mut sim = Simulator::new(
                workload,
                sim_config,
                vec![("mp".to_string(), node.build())],
            );
            if scripted == 1 {
                // Mid-run compromise and cleanup of one scripted node, on
                // top of the seeded fraction.
                sim = sim.with_scenario(
                    Scenario::new()
                        .at(200.0, ScenarioAction::SetAdversary {
                            nodes: vec![1],
                            model: Some(model.clone()),
                        })
                        .at(400.0, ScenarioAction::SetAdversary {
                            nodes: vec![1],
                            model: None,
                        }),
                );
            }
            sim
        };
        let serial = encode(&mut build().with_serial_execution(true));
        for threads in [2, 4] {
            let sharded = encode(&mut build().with_threads(threads));
            prop_assert_eq!(
                &sharded, &serial,
                "sharded adversarial run diverged (threads {})", threads
            );
        }
    }
}
