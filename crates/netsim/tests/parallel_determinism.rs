//! Regression suite for the parallel multi-configuration execution path:
//! running each named configuration on its own worker thread must produce a
//! `SimReport` that is **byte-identical** (serialized form) to the
//! single-threaded interleaved run. This is the guarantee that lets the
//! simulator parallelise the paper's side-by-side methodology without
//! changing a single number in any figure.

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::{Scenario, ScenarioAction};
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::NodeConfig;

fn encode(simulator: &mut Simulator) -> String {
    serde::json::to_string(&simulator.run())
}

fn two_config_setup(loss: f64) -> (PlanetLabConfig, SimConfig, Vec<(String, NodeConfig)>) {
    let workload = PlanetLabConfig::small(14)
        .with_seed(11)
        .with_link_config(LinkModelConfig::default().with_loss_probability(loss));
    let sim_config = SimConfig::new(700.0, 5.0)
        .with_measurement_start(100.0)
        .with_initial_neighbors(4)
        .with_protocol_seed(0xABCD);
    let configs = vec![
        ("mp".to_string(), NodeConfig::paper_defaults()),
        ("raw".to_string(), NodeConfig::original_vivaldi()),
    ];
    (workload, sim_config, configs)
}

#[test]
fn parallel_report_is_byte_identical_to_serial() {
    let (workload, sim_config, configs) = two_config_setup(0.0);
    let parallel = encode(&mut Simulator::new(
        workload.clone(),
        sim_config.clone(),
        configs.clone(),
    ));
    let serial =
        encode(&mut Simulator::new(workload, sim_config, configs).with_serial_execution(true));
    assert!(!parallel.is_empty());
    assert_eq!(
        parallel, serial,
        "parallel and serial multi-config runs must encode identically"
    );
}

#[test]
fn parallel_report_is_byte_identical_under_loss_and_churn() {
    // Loss, delay asymmetry, crash + snapshot restart and a partition all at
    // once: every code path that consumes protocol randomness or link
    // randomness must stay aligned between the two execution modes.
    let build = |serial: bool| {
        let workload = PlanetLabConfig::small(12).with_seed(7).with_link_config(
            LinkModelConfig::default()
                .with_loss_probability(0.03)
                .with_delay_asymmetry(0.2),
        );
        let sim_config = SimConfig::new(900.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4)
            .with_tracked_nodes(vec![0, 5], 60.0);
        let scenario = Scenario::crash_restart(vec![1, 2], 300.0, 450.0).at(
            500.0,
            ScenarioAction::Partition {
                group: vec![0, 1, 2, 3],
                heal_at_s: 650.0,
            },
        );
        Simulator::new(
            workload,
            sim_config,
            vec![
                ("paper".to_string(), NodeConfig::paper_defaults()),
                ("raw".to_string(), NodeConfig::original_vivaldi()),
            ],
        )
        .with_scenario(scenario)
        .with_serial_execution(serial)
    };
    let parallel = encode(&mut build(false));
    let serial = encode(&mut build(true));
    assert_eq!(parallel, serial);
}

#[test]
fn three_configs_run_in_parallel_and_match_serial() {
    let workload = PlanetLabConfig::small(10).with_seed(3);
    let sim_config = SimConfig::new(500.0, 5.0)
        .with_measurement_start(100.0)
        .with_initial_neighbors(3);
    let configs = vec![
        ("a-mp".to_string(), NodeConfig::paper_defaults()),
        ("b-raw".to_string(), NodeConfig::original_vivaldi()),
        (
            "c-mp-noheur".to_string(),
            NodeConfig::builder()
                .heuristic(stable_nc::HeuristicConfig::FollowSystem)
                .build(),
        ),
    ];
    let parallel = encode(&mut Simulator::new(
        workload.clone(),
        sim_config.clone(),
        configs.clone(),
    ));
    let serial =
        encode(&mut Simulator::new(workload, sim_config, configs).with_serial_execution(true));
    assert_eq!(parallel, serial);
}

#[test]
fn matching_eviction_thresholds_parallelise_and_match_serial() {
    // Eviction configured but *identical* across configurations: the
    // parallel path is allowed (each worker evicts at the same timeout) and
    // must agree with the serial unanimity rule.
    let build = |serial: bool| {
        let workload = PlanetLabConfig::small(8).with_seed(3);
        let sim_config = SimConfig::new(900.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4)
            .with_gossip(false);
        let scenario = Scenario::new().at(200.0, ScenarioAction::Crash { nodes: vec![5] });
        Simulator::new(
            workload,
            sim_config,
            vec![
                (
                    "mp".to_string(),
                    NodeConfig::builder().max_consecutive_losses(3).build(),
                ),
                (
                    "raw".to_string(),
                    NodeConfig::builder()
                        .filter(stable_nc::FilterConfig::Raw)
                        .max_consecutive_losses(3)
                        .build(),
                ),
            ],
        )
        .with_scenario(scenario)
        .with_serial_execution(serial)
    };
    let parallel = encode(&mut build(false));
    let serial = encode(&mut build(true));
    assert_eq!(parallel, serial);
}

#[test]
fn differing_eviction_thresholds_still_match_their_serial_semantics() {
    // Thresholds differ across configurations → the run must fall back to
    // the coupled serial path (unanimity rule). Byte-compare two identical
    // invocations to show the fallback is still deterministic.
    let build = || {
        let workload = PlanetLabConfig::small(8).with_seed(9);
        let sim_config = SimConfig::new(600.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(3)
            .with_gossip(false);
        let scenario = Scenario::new().at(150.0, ScenarioAction::Crash { nodes: vec![4] });
        Simulator::new(
            workload,
            sim_config,
            vec![
                (
                    "evict3".to_string(),
                    NodeConfig::builder().max_consecutive_losses(3).build(),
                ),
                (
                    "evict5".to_string(),
                    NodeConfig::builder().max_consecutive_losses(5).build(),
                ),
            ],
        )
        .with_scenario(scenario)
    };
    let first = serde::json::to_string(&build().run());
    let second = serde::json::to_string(&build().run());
    assert_eq!(first, second);
}
