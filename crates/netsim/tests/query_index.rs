//! Contracts of the simulator-fed coordinate query index.
//!
//! The index is pure read-path state: enabling it must not change the
//! simulation report by a byte, its contents must be identical across the
//! serial, per-configuration-parallel and node-sharded executors, and its
//! k-nearest answers must agree with a brute-force oracle over its own
//! contents.

use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::sim::{SimConfig, Simulator};
use nc_vivaldi::Coordinate;
use stable_nc::NodeConfig;

const NODES: usize = 12;

fn sim_config() -> SimConfig {
    SimConfig::new(600.0, 5.0)
        .with_measurement_start(100.0)
        .with_initial_neighbors(4)
}

fn build(query: bool) -> Simulator {
    let schedule = if query {
        sim_config().with_query_index()
    } else {
        sim_config()
    };
    Simulator::new(
        PlanetLabConfig::small(NODES).with_seed(7),
        schedule,
        vec![
            ("mp".to_string(), NodeConfig::paper_defaults()),
            ("raw".to_string(), NodeConfig::original_vivaldi()),
        ],
    )
}

/// Flattens an index into comparable `(id, components, height)` rows in
/// key order.
fn contents(simulator: &Simulator, name: &str) -> Vec<(usize, Vec<f64>, f64)> {
    simulator
        .query_index(name)
        .expect("query index enabled")
        .iter()
        .map(|(id, coordinate)| (*id, coordinate.components().to_vec(), coordinate.height()))
        .collect()
}

#[test]
fn the_index_is_fed_from_application_updates() {
    let mut simulator = build(true).with_serial_execution(true);
    simulator.run();
    let index = simulator.query_index("mp").expect("index enabled");
    // A ten-minute mesh run publishes application coordinates for everyone.
    assert_eq!(index.len(), NODES);
    assert!(simulator.query_index("nope").is_none());
    let centroid = index.centroid().expect("non-empty population");
    assert_eq!(centroid.dimensions(), 3);

    // Without the flag the read path simply does not exist.
    let mut plain = build(false).with_serial_execution(true);
    plain.run();
    assert!(plain.query_index("mp").is_none());
}

#[test]
fn k_nearest_matches_a_brute_force_oracle_over_the_index() {
    let mut simulator = build(true).with_serial_execution(true);
    simulator.run();
    let index = simulator.query_index("mp").expect("index enabled");
    let snapshot: Vec<(usize, Coordinate)> = index
        .iter()
        .map(|(id, coordinate)| (*id, coordinate.clone()))
        .collect();
    let targets: Vec<Coordinate> = snapshot
        .iter()
        .map(|(_, coordinate)| coordinate.clone())
        .chain([Coordinate::origin(3)])
        .collect();
    for target in &targets {
        for k in [1, 3, NODES, NODES + 5] {
            let got: Vec<(usize, f64)> = index
                .k_nearest(target, k)
                .expect("valid query")
                .into_iter()
                .map(|hit| (hit.id, hit.distance_ms))
                .collect();
            let mut oracle: Vec<(usize, f64)> = snapshot
                .iter()
                .map(|(id, coordinate)| (*id, target.distance(coordinate)))
                .collect();
            oracle.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            oracle.truncate(k);
            let oracle: Vec<(usize, f64)> = oracle;
            assert_eq!(got, oracle, "k={k}");
        }
    }
}

#[test]
fn index_contents_are_identical_across_execution_modes() {
    let mut serial = build(true).with_serial_execution(true);
    let serial_report = serde::json::to_string(&serial.run());
    let mut parallel = build(true);
    let parallel_report = serde::json::to_string(&parallel.run());
    let mut sharded = build(true).with_threads(3);
    let sharded_report = serde::json::to_string(&sharded.run());

    assert_eq!(parallel_report, serial_report);
    assert_eq!(sharded_report, serial_report);
    for name in ["mp", "raw"] {
        let baseline = contents(&serial, name);
        assert_eq!(baseline.len(), NODES);
        assert_eq!(contents(&parallel, name), baseline, "config={name}");
        assert_eq!(contents(&sharded, name), baseline, "config={name}");
    }
}

#[test]
fn enabling_the_index_does_not_change_the_report() {
    let baseline = serde::json::to_string(&build(false).run());
    let with_index = serde::json::to_string(&build(true).run());
    assert_eq!(with_index, baseline);
}
