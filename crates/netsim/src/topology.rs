//! Synthetic wide-area topology: node placement and base round-trip times.
//!
//! PlanetLab nodes are concentrated at universities and research labs in a
//! handful of geographic regions. The topology model places nodes in four
//! regions (US East, US West, Europe, Asia) in proportions similar to the
//! 2005 deployment and assigns each node a position inside its region. The
//! *base RTT* between two nodes — the latency a perfectly clean measurement
//! would observe — is the sum of an inter-region backbone latency and the
//! intra-region distance of both endpoints, plus a small per-pair offset so
//! that no two links are exactly alike.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::rand_ext;

/// Largest node count for which the per-pair RTT offsets are pre-drawn into
/// a dense upper-triangular table at generation time (byte-identical to the
/// historical behaviour, which every seeded experiment depends on). Larger
/// topologies derive each offset from a hash of the pair on first use.
const DENSE_PAIR_OFFSET_LIMIT: usize = 4096;

/// Geographic region of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Eastern United States.
    UsEast,
    /// Western United States.
    UsWest,
    /// Europe.
    Europe,
    /// Asia / Pacific.
    Asia,
}

impl Region {
    /// All regions, in a fixed order.
    pub const ALL: [Region; 4] = [Region::UsEast, Region::UsWest, Region::Europe, Region::Asia];

    /// Fraction of nodes placed in this region (roughly matching the 2005
    /// PlanetLab distribution: half in the US, a third in Europe, the rest in
    /// Asia).
    pub fn weight(self) -> f64 {
        match self {
            Region::UsEast => 0.30,
            Region::UsWest => 0.22,
            Region::Europe => 0.33,
            Region::Asia => 0.15,
        }
    }

    /// Typical one-way backbone latency in milliseconds between two regions
    /// (round-trip base is twice this plus intra-region components).
    fn backbone_rtt_ms(a: Region, b: Region) -> f64 {
        use Region::*;
        match (a, b) {
            (x, y) if x == y => 0.0,
            (UsEast, UsWest) | (UsWest, UsEast) => 62.0,
            (UsEast, Europe) | (Europe, UsEast) => 82.0,
            (UsEast, Asia) | (Asia, UsEast) => 190.0,
            (UsWest, Europe) | (Europe, UsWest) => 140.0,
            (UsWest, Asia) | (Asia, UsWest) => 120.0,
            (Europe, Asia) | (Asia, Europe) => 250.0,
            _ => unreachable!("all region pairs covered"),
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Region::UsEast => "US-East",
            Region::UsWest => "US-West",
            Region::Europe => "Europe",
            Region::Asia => "Asia",
        };
        write!(f, "{name}")
    }
}

/// One placed node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedNode {
    /// Region the node lives in.
    pub region: Region,
    /// Distance (one-way milliseconds) from the node to its region's core
    /// router — models campus/metro access distance.
    pub metro_ms: f64,
    /// Access-link latency (milliseconds added to every RTT touching this
    /// node) — models last-hop/DSL-like delay, usually small for PlanetLab.
    pub access_ms: f64,
}

/// A generated topology: node placements and the base RTT between any pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<PlacedNode>,
    /// Deterministic per-pair RTT offsets (upper-triangular, flattened).
    pair_offset_ms: Vec<f64>,
    seed: u64,
}

impl Topology {
    /// Generates a topology of `node_count` nodes from a seed.
    ///
    /// # Panics
    ///
    /// Panics when `node_count < 2` — a latency study needs at least one
    /// link.
    pub fn generate(node_count: usize, seed: u64) -> Self {
        assert!(node_count >= 2, "a topology needs at least two nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let region = Self::pick_region(&mut rng);
            let metro_ms = rand_ext::exponential(&mut rng, 1.0 / 4.0).min(40.0);
            let access_ms = rand_ext::exponential(&mut rng, 1.0 / 1.5).min(15.0);
            nodes.push(PlacedNode {
                region,
                metro_ms,
                access_ms,
            });
        }
        let pair_offset_ms = if node_count <= DENSE_PAIR_OFFSET_LIMIT {
            let pair_count = node_count * (node_count - 1) / 2;
            (0..pair_count)
                .map(|_| rand_ext::normal(&mut rng, 0.0, 3.0).abs())
                .collect()
        } else {
            // The strict upper triangle would need n(n-1)/2 doubles — 17 GB
            // at 65,536 nodes. Past the threshold the offsets are derived on
            // demand from a per-pair hash instead (see `pair_offset`).
            Vec::new()
        };
        Topology {
            nodes,
            pair_offset_ms,
            seed,
        }
    }

    fn pick_region(rng: &mut StdRng) -> Region {
        let total: f64 = Region::ALL.iter().map(|r| r.weight()).sum();
        let mut draw = rng.gen_range(0.0..total);
        for region in Region::ALL {
            if draw < region.weight() {
                return region;
            }
            draw -= region.weight();
        }
        Region::Asia
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (construction requires ≥ 2 nodes).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The seed this topology was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The placement of node `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn node(&self, i: usize) -> &PlacedNode {
        &self.nodes[i]
    }

    /// Iterates over all node placements.
    pub fn iter(&self) -> impl Iterator<Item = &PlacedNode> {
        self.nodes.iter()
    }

    /// Indices of all nodes in a given region.
    pub fn nodes_in_region(&self, region: Region) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.region == region)
            .map(|(i, _)| i)
            .collect()
    }

    fn pair_index(&self, a: usize, b: usize) -> usize {
        let n = self.nodes.len();
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // Index into the flattened strict upper triangle.
        lo * n - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Base round-trip time between nodes `a` and `b` in milliseconds: the
    /// latency an ideal, uncongested measurement would see. Symmetric.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range or `a == b`.
    pub fn base_rtt_ms(&self, a: usize, b: usize) -> f64 {
        assert!(a != b, "a node has no link to itself");
        let na = &self.nodes[a];
        let nb = &self.nodes[b];
        let backbone = Region::backbone_rtt_ms(na.region, nb.region);
        let intra = if na.region == nb.region {
            // Same region: latency is dominated by the metro distance between
            // the two sites.
            2.0 * (na.metro_ms + nb.metro_ms) * 0.5 + 3.0
        } else {
            2.0 * (na.metro_ms + nb.metro_ms) * 0.5
        };
        let access = na.access_ms + nb.access_ms;
        backbone + intra + access + self.pair_offset(a, b)
    }

    /// The deterministic per-pair RTT offset: a table lookup for topologies
    /// small enough to pre-draw the triangle, a hash-seeded draw above
    /// [`DENSE_PAIR_OFFSET_LIMIT`]. Both forms are symmetric and a pure
    /// function of `(seed, a, b)`.
    fn pair_offset(&self, a: usize, b: usize) -> f64 {
        if !self.pair_offset_ms.is_empty() {
            return self.pair_offset_ms[self.pair_index(a, b)];
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let pair = ((lo as u64) << 32) | hi as u64;
        let mut rng = StdRng::seed_from_u64(self.seed ^ pair.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rand_ext::normal(&mut rng, 0.0, 3.0).abs()
    }

    /// The full symmetric base-RTT matrix (diagonal zero). Useful for
    /// experiments that want a ground truth to compare embeddings against,
    /// and used by the simulator hot path so per-probe lookups are one
    /// row-major index instead of a re-derivation from node placements.
    pub fn base_rtt_matrix(&self) -> RttMatrix {
        let n = self.len();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let rtt = self.base_rtt_ms(i, j);
                data[i * n + j] = rtt;
                data[j * n + i] = rtt;
            }
        }
        RttMatrix { n, data }
    }
}

/// A dense, row-major `n × n` matrix of base round-trip times, indexed by
/// `(a, b)` node-index pairs. Flat storage keeps the simulator's per-probe
/// lookup a single multiply-add away from contiguous memory rather than a
/// pointer chase through `Vec<Vec<f64>>` rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RttMatrix {
    n: usize,
    data: Vec<f64>,
}

impl RttMatrix {
    /// Number of nodes (the matrix is `len × len`).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The base RTT between `a` and `b` in milliseconds (zero on the
    /// diagonal).
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn get(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.n && b < self.n, "index out of range");
        self.data[a * self.n + b]
    }

    /// The flat row-major backing storage, row `a` at `a * len()`.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::Index<(usize, usize)> for RttMatrix {
    type Output = f64;

    fn index(&self, (a, b): (usize, usize)) -> &f64 {
        assert!(a < self.n && b < self.n, "index out of range");
        &self.data[a * self.n + b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_tiny_topologies() {
        let _ = Topology::generate(1, 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Topology::generate(32, 7);
        let b = Topology::generate(32, 7);
        assert_eq!(a, b);
        let c = Topology::generate(32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn base_rtt_is_symmetric_and_positive() {
        let t = Topology::generate(24, 3);
        for i in 0..t.len() {
            for j in 0..t.len() {
                if i == j {
                    continue;
                }
                let rtt = t.base_rtt_ms(i, j);
                assert!(rtt > 0.0);
                assert_eq!(rtt, t.base_rtt_ms(j, i));
            }
        }
    }

    #[test]
    fn same_region_links_are_faster_than_transcontinental() {
        let t = Topology::generate(200, 11);
        let us_east = t.nodes_in_region(Region::UsEast);
        let asia = t.nodes_in_region(Region::Asia);
        assert!(us_east.len() >= 2, "expected several US-East nodes");
        assert!(!asia.is_empty(), "expected some Asia nodes");
        let intra = t.base_rtt_ms(us_east[0], us_east[1]);
        let inter = t.base_rtt_ms(us_east[0], asia[0]);
        assert!(
            intra < inter,
            "intra-region {intra:.1} ms should be below trans-pacific {inter:.1} ms"
        );
        assert!(intra < 120.0);
        assert!(inter > 150.0);
    }

    #[test]
    fn all_regions_are_populated_in_large_topologies() {
        let t = Topology::generate(269, 1);
        for region in Region::ALL {
            assert!(
                !t.nodes_in_region(region).is_empty(),
                "region {region} is empty"
            );
        }
        assert_eq!(t.len(), 269);
    }

    #[test]
    fn rtt_matrix_matches_pairwise_calls() {
        let t = Topology::generate(10, 5);
        let m = t.base_rtt_matrix();
        assert_eq!(m.len(), 10);
        assert!(!m.is_empty());
        for i in 0..t.len() {
            assert_eq!(m[(i, i)], 0.0);
            for j in 0..t.len() {
                if i != j {
                    assert_eq!(m[(i, j)], t.base_rtt_ms(i, j));
                    assert_eq!(m[(i, j)], m[(j, i)]);
                    assert_eq!(m.get(i, j), m[(i, j)]);
                }
            }
        }
        // Row-major layout: row i starts at i * n.
        assert_eq!(m.as_slice()[3 * m.len() + 7], m[(3, 7)]);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn rtt_matrix_bounds_are_checked() {
        let m = Topology::generate(4, 5).base_rtt_matrix();
        let _ = m[(0, 4)];
    }

    #[test]
    fn pair_index_is_unique() {
        let t = Topology::generate(20, 2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..20 {
            for j in (i + 1)..20 {
                assert!(
                    seen.insert(t.pair_index(i, j)),
                    "duplicate index for ({i},{j})"
                );
            }
        }
        assert_eq!(seen.len(), 20 * 19 / 2);
    }

    #[test]
    fn huge_topologies_use_hashed_pair_offsets() {
        // Above the dense-table limit no triangle is materialised, yet the
        // base RTT stays deterministic, symmetric and realistically offset.
        let n = DENSE_PAIR_OFFSET_LIMIT + 8;
        let a = Topology::generate(n, 77);
        let b = Topology::generate(n, 77);
        assert!(a.pair_offset_ms.is_empty(), "no dense table above limit");
        for &(i, j) in &[(0, 1), (5, n - 1), (n - 2, n - 1), (100, 4000)] {
            let rtt = a.base_rtt_ms(i, j);
            assert!(rtt > 0.0);
            assert_eq!(rtt, a.base_rtt_ms(j, i), "symmetric");
            assert_eq!(rtt, b.base_rtt_ms(i, j), "deterministic across builds");
        }
        // Different seeds give different offsets.
        let c = Topology::generate(n, 78);
        assert_ne!(a.base_rtt_ms(0, 1), c.base_rtt_ms(0, 1));
    }

    #[test]
    fn region_display_and_weights() {
        let total: f64 = Region::ALL.iter().map(|r| r.weight()).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in Region::ALL {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn typical_rtts_fall_in_realistic_bands() {
        let t = Topology::generate(269, 42);
        let europe = t.nodes_in_region(Region::Europe);
        let us_east = t.nodes_in_region(Region::UsEast);
        let rtt = t.base_rtt_ms(europe[0], us_east[0]);
        assert!(rtt > 70.0 && rtt < 220.0, "transatlantic {rtt:.1} ms");
    }
}
