//! Scripted node churn and network disruption for the discrete-event
//! simulator.
//!
//! The paper's systems ran on PlanetLab, where nodes reboot, fall off the
//! network, and return with their state intact — and where entire regions
//! occasionally lose connectivity to the rest of the mesh. A [`Scenario`] is
//! a time-ordered script of such disruptions that the
//! [`Simulator`](crate::sim::Simulator) replays while the coordinate stacks
//! run:
//!
//! * **join** — a node that was down (or never up) enters the mesh with a
//!   fresh coordinate stack and a seeded neighbour set;
//! * **graceful leave** — a node announces departure: it stops probing and
//!   is removed from every live node's probe rotation;
//! * **crash** — a node vanishes mid-flight: probes of it time out and are
//!   reported as `Event::ProbeLost` until it returns or is evicted;
//! * **crash-restart** — a crashed node comes back from the
//!   `NodeSnapshot` taken at the instant it died, resuming the exact
//!   filter/heuristic/probe state it crashed with (the `nc-proto`
//!   persist/restore path, end to end);
//! * **flash crowd** — a batch of nodes joins at the same instant,
//!   stress-testing convergence of the existing embedding;
//! * **partition** — links between one node group and the rest drop every
//!   packet until the partition heals.
//!
//! Scenarios are applied identically to every named configuration of a run,
//! so side-by-side comparisons stay apples-to-apples under churn.
//!
//! # Example: crash a quarter of the mesh, restart it five minutes later
//!
//! ```
//! use nc_netsim::scenario::Scenario;
//!
//! let scenario = Scenario::crash_restart(vec![0, 1, 2, 3], 1_800.0, 2_100.0);
//! assert_eq!(scenario.events().len(), 2);
//! ```

use serde::{Deserialize, Serialize};

use crate::adversary::AdversaryModel;
use crate::topology::Region;

/// One scripted disruption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioAction {
    /// The nodes (down until now) enter the mesh with fresh coordinate
    /// stacks and seeded neighbour sets. A batch of several nodes is a
    /// flash crowd.
    Join {
        /// Indices of the joining nodes.
        nodes: Vec<usize>,
    },
    /// The nodes announce departure: they stop probing and are removed from
    /// every live node's probe rotation. A later [`ScenarioAction::Join`]
    /// brings them back with fresh state.
    Leave {
        /// Indices of the departing nodes.
        nodes: Vec<usize>,
    },
    /// The nodes vanish without warning. A per-configuration
    /// `NodeSnapshot` of each is taken at the instant of the crash so a
    /// later [`ScenarioAction::Restart`] can revive it.
    Crash {
        /// Indices of the crashing nodes.
        nodes: Vec<usize>,
    },
    /// Crashed nodes come back. Each restores from the snapshot taken when
    /// it crashed (or starts fresh if it never crashed); any probes that
    /// were outstanding at the crash are expired as lost on revival.
    Restart {
        /// Indices of the restarting nodes.
        nodes: Vec<usize>,
    },
    /// Every packet between `group` and the rest of the mesh is dropped
    /// until `heal_at_s`.
    Partition {
        /// One side of the partition (the other side is everyone else).
        group: Vec<usize>,
        /// Simulation time at which connectivity is restored.
        heal_at_s: f64,
    },
    /// Like [`ScenarioAction::Partition`], with the group defined as every
    /// node placed in the given regions — e.g. "Europe loses transatlantic
    /// connectivity".
    PartitionRegions {
        /// Regions forming one side of the partition.
        regions: Vec<Region>,
        /// Simulation time at which connectivity is restored.
        heal_at_s: f64,
    },
    /// The nodes turn Byzantine (or honest again): from now on each listed
    /// node corrupts every probe reply it sends according to `model` —
    /// `None` restores honest behaviour. Compromise mid-run, a honeypot
    /// cleanup, a rolling attack front: all are `SetAdversary` scripts.
    SetAdversary {
        /// Indices of the nodes whose behaviour changes.
        nodes: Vec<usize>,
        /// The behaviour to install, or `None` to restore honesty.
        model: Option<AdversaryModel>,
    },
}

/// A [`ScenarioAction`] bound to its simulation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Simulation time (seconds) at which the action fires.
    pub at_s: f64,
    /// What happens.
    pub action: ScenarioAction,
}

/// A time-ordered script of churn and disruption events, plus the set of
/// nodes that start the run down (waiting for a [`ScenarioAction::Join`]).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scenario {
    events: Vec<ScenarioEvent>,
    initially_down: Vec<usize>,
}

impl Scenario {
    /// An empty scenario: every node is up for the whole run and nothing is
    /// disrupted (the behaviour of a simulator without a scenario).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an action at `at_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics when `at_s` is negative or not finite, or when a partition's
    /// heal time does not lie after its start.
    pub fn at(mut self, at_s: f64, action: ScenarioAction) -> Self {
        assert!(
            at_s.is_finite() && at_s >= 0.0,
            "scenario times must be finite and non-negative"
        );
        match &action {
            ScenarioAction::Partition { heal_at_s, .. }
            | ScenarioAction::PartitionRegions { heal_at_s, .. } => {
                assert!(
                    heal_at_s.is_finite() && *heal_at_s > at_s,
                    "a partition must heal after it starts"
                );
            }
            ScenarioAction::SetAdversary {
                model: Some(model), ..
            } => {
                if let Err(error) = model.validate() {
                    panic!("invalid scenario adversary model: {error}");
                }
            }
            _ => {}
        }
        self.events.push(ScenarioEvent { at_s, action });
        self.events
            .sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite times"));
        self
    }

    /// Marks nodes as down from the start of the run; they probe no one and
    /// answer nothing until a [`ScenarioAction::Join`] brings them up.
    pub fn with_initially_down(mut self, mut nodes: Vec<usize>) -> Self {
        self.initially_down.append(&mut nodes);
        self.initially_down.sort_unstable();
        self.initially_down.dedup();
        self
    }

    /// Canned script: `nodes` crash at `crash_at_s` and restart from their
    /// crash snapshots at `restart_at_s`.
    ///
    /// # Panics
    ///
    /// Panics when the restart does not lie after the crash.
    pub fn crash_restart(nodes: Vec<usize>, crash_at_s: f64, restart_at_s: f64) -> Self {
        assert!(
            restart_at_s > crash_at_s,
            "restart must come after the crash"
        );
        Scenario::new()
            .at(
                crash_at_s,
                ScenarioAction::Crash {
                    nodes: nodes.clone(),
                },
            )
            .at(restart_at_s, ScenarioAction::Restart { nodes })
    }

    /// Canned script: `nodes` sit out the start of the run and all join at
    /// `join_at_s` — a flash crowd hitting a converged mesh.
    pub fn flash_crowd(nodes: Vec<usize>, join_at_s: f64) -> Self {
        Scenario::new()
            .with_initially_down(nodes.clone())
            .at(join_at_s, ScenarioAction::Join { nodes })
    }

    /// Canned script: every node in `regions` is partitioned from the rest
    /// of the mesh between `at_s` and `heal_at_s`.
    pub fn regional_partition(regions: Vec<Region>, at_s: f64, heal_at_s: f64) -> Self {
        Scenario::new().at(
            at_s,
            ScenarioAction::PartitionRegions { regions, heal_at_s },
        )
    }

    /// The scripted events, in time order.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Nodes that start the run down.
    pub fn initially_down(&self) -> &[usize] {
        &self.initially_down
    }

    /// True when the scenario disturbs nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.initially_down.is_empty()
    }

    /// The largest node index the scenario references, for validation
    /// against the workload size.
    pub fn max_node(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|event| match &event.action {
                ScenarioAction::Join { nodes }
                | ScenarioAction::Leave { nodes }
                | ScenarioAction::Crash { nodes }
                | ScenarioAction::Restart { nodes }
                | ScenarioAction::Partition { group: nodes, .. }
                | ScenarioAction::SetAdversary { nodes, .. } => nodes.iter().copied().max(),
                ScenarioAction::PartitionRegions { .. } => None,
            })
            .chain(self.initially_down.iter().copied())
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_kept_in_time_order() {
        let scenario = Scenario::new()
            .at(300.0, ScenarioAction::Leave { nodes: vec![2] })
            .at(100.0, ScenarioAction::Crash { nodes: vec![1] });
        let times: Vec<f64> = scenario.events().iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![100.0, 300.0]);
    }

    #[test]
    fn crash_restart_builds_both_events() {
        let scenario = Scenario::crash_restart(vec![4, 5], 100.0, 200.0);
        assert!(matches!(
            scenario.events()[0].action,
            ScenarioAction::Crash { .. }
        ));
        assert!(matches!(
            scenario.events()[1].action,
            ScenarioAction::Restart { .. }
        ));
        assert_eq!(scenario.max_node(), Some(5));
    }

    #[test]
    fn flash_crowd_marks_nodes_initially_down() {
        let scenario = Scenario::flash_crowd(vec![7, 8, 9], 500.0);
        assert_eq!(scenario.initially_down(), &[7, 8, 9]);
        assert!(!scenario.is_empty());
        assert_eq!(scenario.max_node(), Some(9));
    }

    #[test]
    fn empty_scenario_is_empty() {
        assert!(Scenario::new().is_empty());
        assert_eq!(Scenario::new().max_node(), None);
    }

    #[test]
    #[should_panic(expected = "heal after it starts")]
    fn partitions_must_heal_later() {
        let _ = Scenario::new().at(
            100.0,
            ScenarioAction::Partition {
                group: vec![0],
                heal_at_s: 50.0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "restart must come after")]
    fn restart_must_follow_crash() {
        let _ = Scenario::crash_restart(vec![0], 200.0, 100.0);
    }

    #[test]
    fn set_adversary_is_validated_and_counted_in_max_node() {
        let scenario = Scenario::new().at(
            60.0,
            ScenarioAction::SetAdversary {
                nodes: vec![3, 11],
                model: Some(AdversaryModel::DelayAttacker {
                    extra_delay_ms: 200.0,
                }),
            },
        );
        assert_eq!(scenario.max_node(), Some(11));
        // Restoring honesty needs no model to validate.
        let healed = scenario.at(
            120.0,
            ScenarioAction::SetAdversary {
                nodes: vec![3],
                model: None,
            },
        );
        assert_eq!(healed.events().len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid scenario adversary model")]
    fn set_adversary_rejects_malformed_models() {
        let _ = Scenario::new().at(
            10.0,
            ScenarioAction::SetAdversary {
                nodes: vec![0],
                model: Some(AdversaryModel::JitterBomb {
                    max_extra_delay_ms: f64::INFINITY,
                }),
            },
        );
    }

    #[test]
    fn scenarios_serialize_round_trip() {
        let scenario = Scenario::regional_partition(vec![Region::Europe], 10.0, 20.0)
            .with_initially_down(vec![3]);
        let text = serde::json::to_string(&scenario);
        let back: Scenario = serde::json::from_str(&text).unwrap();
        assert_eq!(back, scenario);
    }
}
