//! Wide-area latency simulation substrate.
//!
//! The paper's evaluation is driven by a three-day trace of application-level
//! UDP pings between 269 PlanetLab nodes (43 million samples) plus a
//! four-hour live deployment. Neither artifact is available, so this crate
//! synthesizes the closest equivalent (see `DESIGN.md` §3 for the
//! substitution argument):
//!
//! * [`topology`] — places nodes in geographic regions and derives realistic
//!   base round-trip times between them.
//! * [`linkmodel`] — per-link observation model: base RTT + lognormal
//!   jitter + a heavy-tailed outlier process + slow drift and occasional
//!   route-change level shifts. Calibrated so the aggregate histogram
//!   has the shape of the paper's Figure 2 (≈ 0.4 % of samples above
//!   one second) and individual links look like Figure 3.
//! * [`trace`] — materialises ping traces (who pinged whom, when, observed
//!   RTT) from the link models, in the paper's measurement schedule.
//! * [`planetlab`] — the full synthetic PlanetLab workload (269 nodes by
//!   default, scalable down for quick runs).
//! * [`cluster`] — the low-latency three-node cluster of §IV-B (Figure 6).
//! * [`sim`] — a **discrete-event simulator** that runs one or more
//!   coordinate stacks ([`stable_nc::StableNode`]) side by side on identical
//!   observation streams. Time advances through an event queue
//!   ([`sim::EventQueue`]), so probes are genuinely *in flight*: a probe
//!   takes half the link RTT to arrive (asymmetrically split when the link
//!   model says so), the reply takes the other half back, and a probe or
//!   reply dropped by the link's loss process — or by an active partition —
//!   surfaces as a timeout and a typed `ProbeLost` event rather than a
//!   stalled schedule.
//! * [`scenario`] — scripted churn replayed by the simulator: joins and
//!   flash crowds, graceful leaves, crashes with snapshot-based restarts
//!   (the `nc-proto` persist/restore path, end to end), node-group or
//!   regional partitions, and mid-run Byzantine compromise
//!   (`SetAdversary`).
//! * [`adversary`] — Byzantine behaviours injected at the schedule layer:
//!   coordinate liars, delay attackers and jitter bombs, assigned to a
//!   seeded fraction of the population or scripted per node.
//! * [`metrics`] — collection of the paper's metrics: per-node relative
//!   error distributions, per-node and aggregate instability,
//!   application-update rates and probe-loss counts, with warm-up exclusion
//!   and windowed medians for before/after-churn comparisons.
//!
//! # Determinism
//!
//! Given the same seed and configuration, a simulation produces a
//! byte-identical [`SimReport`](metrics::SimReport) at any thread count —
//! the property every regression suite and golden file in the repo leans
//! on. The contract, and the `nc-lint` rules that enforce it at the source
//! level (no std `HashMap`, no wall-clock reads, no hot-path panics), is
//! written down in `DETERMINISM.md` at the workspace root.
//!
//! # Example: a small two-configuration comparison
//!
//! ```
//! use nc_netsim::planetlab::PlanetLabConfig;
//! use nc_netsim::sim::{SimConfig, Simulator};
//! use stable_nc::NodeConfig;
//!
//! let workload = PlanetLabConfig::small(16).with_seed(1);
//! let sim_config = SimConfig::new(600.0, 5.0).with_measurement_start(300.0);
//! let mut sim = Simulator::new(workload, sim_config, vec![
//!     ("mp".to_string(), NodeConfig::paper_defaults()),
//!     ("raw".to_string(), NodeConfig::original_vivaldi()),
//! ]);
//! let report = sim.run();
//! let mp = report.config("mp").unwrap();
//! let raw = report.config("raw").unwrap();
//! assert!(mp.aggregate_instability() <= raw.aggregate_instability());
//! ```
//!
//! # Example: lossy links and a crash-restart churn scenario
//!
//! A quarter of the mesh crashes mid-run and restarts from the snapshots
//! taken at the instant of the crash; 2 % of packets are dropped
//! throughout. Lost probes are reported per node in the
//! [`SimReport`](metrics::SimReport):
//!
//! ```
//! use nc_netsim::linkmodel::LinkModelConfig;
//! use nc_netsim::planetlab::PlanetLabConfig;
//! use nc_netsim::scenario::Scenario;
//! use nc_netsim::sim::{SimConfig, Simulator};
//! use stable_nc::NodeConfig;
//!
//! let workload = PlanetLabConfig::small(8)
//!     .with_seed(3)
//!     .with_link_config(LinkModelConfig::default().with_loss_probability(0.02));
//! let sim_config = SimConfig::new(600.0, 5.0).with_measurement_start(0.0);
//! let scenario = Scenario::crash_restart(vec![0, 1], 300.0, 360.0);
//! let report = Simulator::new(workload, sim_config, vec![
//!     ("mp".to_string(), NodeConfig::paper_defaults()),
//! ])
//! .with_scenario(scenario)
//! .run();
//! let metrics = report.config("mp").unwrap();
//! assert!(metrics.total_probes_lost() > 0);
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod adversary;
pub mod cluster;
pub mod linkmodel;
pub mod metrics;
pub mod planetlab;
pub mod rand_ext;
pub mod scenario;
mod shard;
pub mod sim;
pub mod topology;
pub mod trace;

pub use adversary::{AdversaryConfig, AdversaryModel};
pub use cluster::ClusterModel;
pub use linkmodel::{LinkModel, LinkModelConfig};
pub use metrics::{ConfigMetrics, NodeMetrics, SimReport};
pub use planetlab::PlanetLabConfig;
pub use scenario::{Scenario, ScenarioAction, ScenarioEvent};
pub use sim::{ConfigError, EventQueue, SimConfig, Simulator};
pub use topology::{Region, RttMatrix, Topology};
pub use trace::{TraceConfig, TraceGenerator, TraceRecord};
