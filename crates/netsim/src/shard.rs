//! Node-sharded parallel execution of a single simulation.
//!
//! The discrete-event loop in [`crate::sim`] interleaves two very different
//! kinds of work. The *schedule* — who probes whom and when, which packets
//! the link model drops, what gossip teaches the rotation, what the scenario
//! script does — is cheap and inherently sequential: every decision flows
//! through one protocol RNG and one global clock. The *engine* work —
//! filters, Vivaldi updates, response construction, metric folding — is
//! expensive and perfectly node-local.
//!
//! This module splits the two into phases:
//!
//! 1. **Plan (serial).** Replay the exact event loop against the real
//!    [`ScheduleState`], but with a lightweight per-node *mirror* of the only
//!    engine state that feeds back into the schedule (pending probes, loss
//!    streaks, the probe sequence counter). The replay emits a per-shard list
//!    of engine operations in global event order, plus one [`ExchangeRec`]
//!    per delivered probe.
//! 2. **Execute (parallel).** Worker `w` owns every node with
//!    `index % threads == w` (across all named configurations) and runs its
//!    operation list in order. The only cross-shard data flow is a probe
//!    response travelling from the responder's shard to the prober's shard;
//!    it moves through a slab of epoch-versioned [`SlotCell`]s with
//!    acquire/release handshakes, so the steady state recycles response
//!    buffers exactly like the serial path and never locks.
//!
//! Because phase 1 performs byte-identical schedule decisions and phase 2
//! performs byte-identical engine calls in a per-node order equal to the
//! serial interleaving, the resulting [`crate::metrics::SimReport`] is
//! byte-identical to serial execution — a contract enforced by the
//! regression and property-test suites.
//!
//! The mirror is sufficient because the engine influences the schedule
//! through exactly three facts (see `StableNode`): whether a timeout
//! correlates with a pending probe, whether a loss streak reaches the
//! eviction threshold, and which sequence number a probe carries. All three
//! are pure functions of the mirrored state. Uniform eviction thresholds
//! across configurations are required (the same condition the
//! per-configuration parallel path already imposes); `Simulator::run` falls
//! back to the serial path otherwise.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

use nc_proto::{Event, NodeSnapshot, ProbeRequest, ProbeResponse};
use nc_query::CoordinateIndex;
use rand::Rng;
use stable_nc::{FxHashMap, NodeConfig, StableNode};

use crate::adversary::{apply_lie, CoordinateLie};
use crate::metrics::{NodeMetrics, TrackedCoordinate};
use crate::scenario::ScenarioAction;
use crate::sim::{
    feed_query_index, fold_events, EngineState, EventQueue, PartitionWindow, ScheduleState, SimEnv,
    SimEvent,
};

/// One engine operation for one node, emitted by the planner in global
/// event order. Node-addressed variants carry the global node index; probe
/// exchanges are addressed through their [`ExchangeRec`].
#[derive(Debug, Clone, Copy)]
enum PlanOp {
    /// `probe_request_for(dst, now_ms)` on every configuration's `node`.
    Issue { node: u32, dst: u32, now_ms: u64 },
    /// The responder's side of exchange `rec`: build the responses and
    /// publish them to the prober's shard.
    Respond { rec: u32 },
    /// The prober's side of exchange `rec`: digest the published responses.
    Digest { rec: u32, now: f64, measuring: bool },
    /// `handle_timeout_into(seq)` on every configuration's `node`.
    Timeout { node: u32, seq: u64 },
    /// Take crash snapshots of every configuration's `node`.
    Crash { node: u32 },
    /// Revive `node`: fresh engines on a join, snapshot restores on a
    /// restart, expiring pre-crash pending probes either way.
    Restore {
        node: u32,
        fresh: bool,
        now: f64,
        now_ms: u64,
    },
    /// Sample `node`'s coordinates for the trajectory metrics.
    Track {
        node: u32,
        sample: u32,
        order: u32,
        now: f64,
    },
}

/// One delivered probe exchange: everything both shards need to replay it
/// without touching each other's engines. The request is reconstructed on
/// the responder's shard from `(dst, seq, sent_at_ms)` — simulator probes
/// carry no other payload.
struct ExchangeRec {
    src: u32,
    dst: u32,
    seq: u64,
    sent_at_ms: u64,
    rtt_ms: f64,
    /// Index into the executor's [`SlotCell`] slab.
    slot: u32,
    /// 1-based use counter of `slot`; gates the publish/consume handshake.
    epoch: u32,
    /// False when the reply never reaches the prober (reverse loss, crash,
    /// partition): the responder then consumes its own slot use.
    has_digest: bool,
    /// The coordinate lie drawn for this exchange (adversarial responder),
    /// applied to every configuration's response at `Respond` time —
    /// exactly where the serial loop applies it.
    lie: Option<CoordinateLie>,
}

/// The planner's output: per-shard operation lists (each in global event
/// order), the exchange records they reference, and the slot-slab size.
struct Plan {
    shard_ops: Vec<Vec<PlanOp>>,
    recs: Vec<ExchangeRec>,
    slot_count: usize,
    scenario_actions: u64,
}

/// The per-node mirror of the engine state that feeds back into the shared
/// schedule. Mirrors `StableNode`'s pending-probe table, loss streaks and
/// probe sequence counter — nothing else, because nothing else the engine
/// does can alter who gets probed when.
#[derive(Debug, Default, Clone)]
struct MirrorNode {
    probe_seq: u64,
    pending: Vec<MirrorPending>,
    streaks: FxHashMap<usize, u32>,
}

#[derive(Debug, Clone, Copy)]
struct MirrorPending {
    seq: u64,
    target: usize,
}

impl MirrorNode {
    /// Mirrors `probe_request_for`: registers the pending probe and returns
    /// the sequence number the engines will assign.
    fn issue(&mut self, target: usize) -> u64 {
        let seq = self.probe_seq;
        self.probe_seq = self.probe_seq.wrapping_add(1);
        self.pending.push(MirrorPending { seq, target });
        seq
    }

    /// Mirrors the pending/streak effects of `handle_response_into`: a
    /// correlated reply settles its pending entry and clears the streak; an
    /// uncorrelated one is ignored (once the node has ever issued a probe)
    /// and changes nothing.
    fn response(&mut self, responder: usize, seq: u64) {
        match self
            .pending
            .iter()
            .position(|probe| probe.seq == seq && probe.target == responder)
        {
            Some(position) => {
                self.pending.remove(position);
            }
            None if self.probe_seq > 0 => return,
            None => {}
        }
        self.streaks.remove(&responder);
    }

    /// Mirrors `handle_timeout_into`: returns the lost probe's target (if
    /// the timeout still correlates) and whether the loss streak evicted it.
    /// Eviction also releases every other pending probe of the same target,
    /// exactly as `StableNode::evict` does.
    fn timeout(&mut self, seq: u64, max_losses: Option<u32>) -> (Option<usize>, bool) {
        let Some(position) = self.pending.iter().position(|probe| probe.seq == seq) else {
            return (None, false);
        };
        let target = self.pending.remove(position).target;
        let streak = self.streaks.entry(target).or_insert(0);
        *streak = streak.saturating_add(1);
        let streak = *streak;
        let mut evicted = false;
        if let Some(max) = max_losses {
            if streak >= max {
                self.streaks.remove(&target);
                self.pending.retain(|probe| probe.target != target);
                evicted = true;
            }
        }
        (Some(target), evicted)
    }

    /// Mirrors `expire_pending(now, 0)` at a restart: every outstanding
    /// probe times out, oldest first; returns the targets evicted along the
    /// way in event order.
    fn expire_all(&mut self, max_losses: Option<u32>) -> Vec<usize> {
        let mut evicted = Vec::new();
        while let Some(first) = self.pending.first() {
            let seq = first.seq;
            let (target, did_evict) = self.timeout(seq, max_losses);
            if did_evict {
                if let Some(target) = target {
                    evicted.push(target);
                }
            }
        }
        evicted
    }
}

/// One slot of the cross-shard response slab. `data` holds one response per
/// named configuration and is reused across exchanges (epochs), keeping the
/// steady-state parallel path as allocation-free as the serial one.
///
/// Protocol: the responder of epoch `e` first waits for `consumed == e - 1`
/// (the previous use is fully digested), writes the responses, then either
/// stores `published = e` (a digest is coming) or `consumed = e` (the reply
/// was lost in flight; it consumes its own use). The prober waits for
/// `published == e`, reads, and stores `consumed = e`. Every wait is on an
/// operation strictly earlier in the planner's global order, so the
/// executor can never deadlock.
struct SlotCell {
    published: AtomicU32,
    consumed: AtomicU32,
    data: UnsafeCell<Vec<ProbeResponse<usize>>>,
}

// SAFETY: access to `data` is serialized by the published/consumed epoch
// handshake — at any instant at most one worker holds the right to touch
// the vector, and the Acquire/Release pairs order those accesses.
unsafe impl Sync for SlotCell {}

impl SlotCell {
    fn new() -> Self {
        SlotCell {
            published: AtomicU32::new(0),
            consumed: AtomicU32::new(0),
            data: UnsafeCell::new(Vec::new()),
        }
    }
}

/// One configuration's share of a worker: the engines, metrics and crash
/// snapshots of every node `i` with `i % threads == shard`, stored at local
/// index `i / threads`.
struct WorkerRun {
    config: NodeConfig,
    nodes: Vec<StableNode<usize>>,
    metrics: Vec<NodeMetrics>,
    snapshots: Vec<Option<NodeSnapshot<usize>>>,
    /// `(sample index, track-list position, sample)` — stitched back into
    /// the per-run `tracked` vector in serial order after the join.
    tracked: Vec<(u32, u32, TrackedCoordinate)>,
    /// This worker's slice of the run's optional coordinate query index.
    /// A coordinate update for node `i` is only ever digested by worker
    /// `i % threads`, so the per-worker indexes hold disjoint id sets and
    /// merge without conflicts after the join.
    index: Option<CoordinateIndex<usize>>,
}

/// One worker thread's state: its shard of every configuration plus a
/// reusable engine-event buffer.
struct Worker {
    threads: usize,
    runs: Vec<WorkerRun>,
    events: Vec<Event<usize>>,
}

impl Worker {
    fn execute(&mut self, ops: &[PlanOp], recs: &[ExchangeRec], cells: &[SlotCell]) {
        for op in ops {
            match *op {
                PlanOp::Issue { node, dst, now_ms } => {
                    let local = node as usize / self.threads;
                    for run in &mut self.runs {
                        let _ = run.nodes[local].probe_request_for(dst as usize, now_ms);
                        run.metrics[local].probes_sent += 1;
                    }
                }
                PlanOp::Respond { rec } => {
                    let rec = &recs[rec as usize];
                    let local = rec.dst as usize / self.threads;
                    let cell = &cells[rec.slot as usize];
                    while cell.consumed.load(Ordering::Acquire) != rec.epoch - 1 {
                        std::thread::yield_now();
                    }
                    // SAFETY: the epoch handshake above grants this worker
                    // exclusive access until it stores published/consumed.
                    let responses = unsafe { &mut *cell.data.get() };
                    let request = ProbeRequest::new(rec.dst as usize, rec.seq, rec.sent_at_ms);
                    for (index, run) in self.runs.iter_mut().enumerate() {
                        if responses.len() <= index {
                            let response = run.nodes[local].respond(&request);
                            responses.push(response);
                        } else {
                            run.nodes[local].respond_into(&request, &mut responses[index]);
                        }
                        responses[index].rtt_ms = rec.rtt_ms;
                        if let Some(lie) = &rec.lie {
                            apply_lie(&mut responses[index], lie);
                        }
                    }
                    if rec.has_digest {
                        cell.published.store(rec.epoch, Ordering::Release);
                    } else {
                        cell.consumed.store(rec.epoch, Ordering::Release);
                    }
                }
                PlanOp::Digest {
                    rec,
                    now,
                    measuring,
                } => {
                    let rec = &recs[rec as usize];
                    let local = rec.src as usize / self.threads;
                    let cell = &cells[rec.slot as usize];
                    while cell.published.load(Ordering::Acquire) != rec.epoch {
                        std::thread::yield_now();
                    }
                    // SAFETY: published == epoch means the responder is done
                    // writing; no one else touches the cell until we store
                    // `consumed`.
                    let responses = unsafe { &*cell.data.get() };
                    for (index, run) in self.runs.iter_mut().enumerate() {
                        self.events.clear();
                        run.nodes[local].handle_response_into(&responses[index], &mut self.events);
                        let ignored = self
                            .events
                            .iter()
                            .any(|event| matches!(event, Event::ResponseIgnored { .. }));
                        let node_metrics = &mut run.metrics[local];
                        if !ignored {
                            node_metrics.responses_received += 1;
                            if measuring {
                                node_metrics.observations += 1;
                            }
                        }
                        fold_events(node_metrics, now, measuring, &self.events);
                        feed_query_index(run.index.as_mut(), rec.src as usize, &self.events);
                    }
                    cell.consumed.store(rec.epoch, Ordering::Release);
                }
                PlanOp::Timeout { node, seq } => {
                    let local = node as usize / self.threads;
                    for run in &mut self.runs {
                        self.events.clear();
                        run.nodes[local].handle_timeout_into(seq, &mut self.events);
                        fold_events(&mut run.metrics[local], 0.0, false, &self.events);
                    }
                }
                PlanOp::Crash { node } => {
                    let local = node as usize / self.threads;
                    for run in &mut self.runs {
                        run.snapshots[local] = Some(run.nodes[local].snapshot());
                    }
                }
                PlanOp::Restore {
                    node,
                    fresh,
                    now,
                    now_ms,
                } => {
                    let local = node as usize / self.threads;
                    for run in &mut self.runs {
                        let snapshot = if fresh {
                            None
                        } else {
                            run.snapshots[local].take()
                        };
                        let mut revived = match snapshot {
                            Some(snapshot) => StableNode::restore(run.config.clone(), &snapshot)
                                // nc-lint: allow(panic) — restoring a snapshot
                                // this run took under the same config cannot
                                // fail; a failure is a sim bug.
                                .expect("a crash snapshot restores under its own configuration"),
                            None => StableNode::new(run.config.clone()),
                        };
                        let events = revived.expire_pending(now_ms, 0);
                        fold_events(&mut run.metrics[local], now, false, &events);
                        run.nodes[local] = revived;
                    }
                }
                PlanOp::Track {
                    node,
                    sample,
                    order,
                    now,
                } => {
                    let local = node as usize / self.threads;
                    for run in &mut self.runs {
                        run.tracked.push((
                            sample,
                            order,
                            TrackedCoordinate {
                                time_s: now,
                                node: node as usize,
                                system: run.nodes[local].system_coordinate().clone(),
                                application: run.nodes[local].application_coordinate().clone(),
                            },
                        ));
                    }
                }
            }
        }
    }
}

/// Runs the simulation to completion with engine work sharded across
/// `threads` workers, leaving `state` (metrics, engines, schedule, crash
/// snapshots) byte-identical to what serial execution would have produced.
pub(crate) fn run_sharded(env: &SimEnv, state: &mut EngineState, threads: usize) {
    let max_losses = state.runs[0].config.max_consecutive_losses;
    let plan = build_plan(env, &mut state.schedule, max_losses, threads);
    execute_plan(env, state, &plan, threads);
}

/// Phase 1: the serial schedule replay. Mutates `schedule` exactly as the
/// engine-driven loop would and returns the operation lists for phase 2.
fn build_plan(
    env: &SimEnv,
    schedule: &mut ScheduleState,
    max_losses: Option<u32>,
    threads: usize,
) -> Plan {
    let n = env.topology.len();
    let duration = env.sim_config.duration_s;
    let mut queue: EventQueue<SimEvent> = EventQueue::new();
    let mut mirrors: Vec<MirrorNode> = vec![MirrorNode::default(); n];
    let mut mirror_snapshots: Vec<Option<MirrorNode>> = vec![None; n];
    let mut shard_ops: Vec<Vec<PlanOp>> = (0..threads).map(|_| Vec::new()).collect();
    let mut recs: Vec<ExchangeRec> = Vec::new();
    let mut free_slots: Vec<u32> = Vec::new();
    let mut slot_epochs: Vec<u32> = Vec::new();
    let mut scenario_actions = 0u64;
    let mut track_sample = 0u32;

    for &node in env.scenario.initially_down() {
        schedule.alive[node] = false;
    }
    for (index, event) in env.scenario.events().iter().enumerate() {
        if event.at_s < duration {
            queue.schedule(event.at_s, SimEvent::ScenarioAction { index });
        }
    }
    for src in 0..n {
        if schedule.alive[src] {
            schedule.probe_cycle_active[src] = true;
            queue.schedule(0.0, SimEvent::ProbeSend { src });
        }
    }
    if !env.sim_config.track_nodes.is_empty() {
        queue.schedule(0.0, SimEvent::TrackSample);
    }

    while let Some((now, event)) = queue.pop() {
        if now >= duration {
            break;
        }
        match event {
            SimEvent::ProbeSend { src } => {
                schedule
                    .active_partitions
                    .retain(|window| window.heal_at_s > now);
                if !schedule.alive[src] {
                    schedule.probe_cycle_active[src] = false;
                    continue;
                }
                let next_tick = now + env.sim_config.probe_interval_s;
                if next_tick < duration {
                    queue.schedule(next_tick, SimEvent::ProbeSend { src });
                } else {
                    schedule.probe_cycle_active[src] = false;
                }
                let neighbor_count = schedule.neighbor_sets[src].len();
                if neighbor_count == 0 {
                    continue;
                }
                // bounds: the cursor is reduced modulo neighbor_count == len.
                let dst = schedule.neighbor_sets[src][schedule.round_robin[src] % neighbor_count];
                schedule.round_robin[src] = schedule.round_robin[src].wrapping_add(1);
                if dst == src {
                    continue;
                }
                let draw = schedule.sample_exchange(env, src, dst, now);
                let now_ms = (now * 1_000.0) as u64;
                let seq = mirrors[src].issue(dst);
                // bounds: src % threads < threads == shard_ops.len().
                shard_ops[src % threads].push(PlanOp::Issue {
                    node: src as u32,
                    dst: dst as u32,
                    now_ms,
                });
                queue.schedule(
                    now + env.sim_config.probe_timeout_s,
                    SimEvent::ProbeTimeout { src, seq },
                );
                if draw.forward_lost || schedule.partitioned(src, dst, now) {
                    continue;
                }
                // The record is created only for probes that actually reach
                // their target; the ProbeDeliver event carries its index in
                // the `slot` field.
                let rec_index = recs.len();
                recs.push(ExchangeRec {
                    src: src as u32,
                    dst: dst as u32,
                    seq,
                    sent_at_ms: now_ms,
                    rtt_ms: draw.rtt_ms,
                    slot: u32::MAX,
                    epoch: 0,
                    has_digest: false,
                    lie: None,
                });
                queue.schedule(
                    now + draw.forward_delay_s,
                    SimEvent::ProbeDeliver {
                        src,
                        dst,
                        slot: rec_index,
                        rtt_ms: draw.rtt_ms,
                        reverse_delay_s: draw.reverse_delay_s,
                        reverse_lost: draw.reverse_lost,
                    },
                );
            }
            SimEvent::ProbeDeliver {
                src,
                dst,
                slot: rec_index,
                reverse_delay_s,
                reverse_lost,
                ..
            } => {
                if !schedule.alive[dst] || schedule.partitioned(src, dst, now) {
                    continue;
                }
                // Adversary draw: same point of the schedule as the serial
                // loop's `on_probe_deliver`, so the dedicated adversary RNG
                // advances identically and serial/sharded runs stay
                // byte-identical.
                let adversary = schedule.sample_adversary(dst);
                let reverse_delay_s = match &adversary {
                    Some(draw) => reverse_delay_s + draw.extra_delay_ms / 1_000.0,
                    None => reverse_delay_s,
                };
                let slot = free_slots.pop().unwrap_or_else(|| {
                    slot_epochs.push(0);
                    (slot_epochs.len() - 1) as u32
                });
                slot_epochs[slot as usize] += 1;
                let rec = &mut recs[rec_index];
                rec.slot = slot;
                rec.epoch = slot_epochs[slot as usize];
                if let Some(draw) = adversary {
                    rec.rtt_ms += draw.extra_delay_ms;
                    rec.lie = draw.lie;
                }
                // bounds: dst % threads < threads == shard_ops.len().
                shard_ops[dst % threads].push(PlanOp::Respond {
                    rec: rec_index as u32,
                });
                if reverse_lost {
                    free_slots.push(slot);
                    continue;
                }
                queue.schedule(
                    now + reverse_delay_s,
                    SimEvent::ResponseDeliver {
                        src,
                        dst,
                        slot: rec_index,
                    },
                );
            }
            SimEvent::ResponseDeliver {
                src,
                dst,
                slot: rec_index,
            } => {
                let slot = recs[rec_index].slot;
                if !schedule.alive[src] || schedule.partitioned(src, dst, now) {
                    free_slots.push(slot);
                    continue;
                }
                let measuring = now >= env.sim_config.measurement_start_s;
                recs[rec_index].has_digest = true;
                mirrors[src].response(dst, recs[rec_index].seq);
                // bounds: src % threads < threads == shard_ops.len().
                shard_ops[src % threads].push(PlanOp::Digest {
                    rec: rec_index as u32,
                    now,
                    measuring,
                });
                free_slots.push(slot);
                if env.sim_config.gossip && !schedule.neighbor_sets[dst].is_empty() {
                    let idx = schedule
                        .protocol_rng
                        .gen_range(0..schedule.neighbor_sets[dst].len());
                    let learned = schedule.neighbor_sets[dst][idx];
                    if learned != src {
                        schedule.neighbor_add(src, learned);
                    }
                }
            }
            SimEvent::ProbeTimeout { src, seq } => {
                if !schedule.alive[src] {
                    continue;
                }
                // bounds: src % threads < threads == shard_ops.len().
                shard_ops[src % threads].push(PlanOp::Timeout {
                    node: src as u32,
                    seq,
                });
                let (target, evicted) = mirrors[src].timeout(seq, max_losses);
                if evicted {
                    if let Some(dst) = target {
                        schedule.neighbor_remove(src, dst);
                    }
                }
            }
            SimEvent::TrackSample => {
                for (order, &node) in env.sim_config.track_nodes.iter().enumerate() {
                    // bounds: node % threads < threads == shard_ops.len().
                    shard_ops[node % threads].push(PlanOp::Track {
                        node: node as u32,
                        sample: track_sample,
                        order: order as u32,
                        now,
                    });
                }
                track_sample += 1;
                let next = now + env.sim_config.track_interval_s;
                if next < duration {
                    queue.schedule(next, SimEvent::TrackSample);
                }
            }
            SimEvent::ScenarioAction { index } => {
                scenario_actions += 1;
                let action = env.scenario.events()[index].action.clone();
                match action {
                    ScenarioAction::Join { nodes } => {
                        for node in nodes {
                            plan_bring_up(
                                env,
                                schedule,
                                &mut mirrors,
                                &mut mirror_snapshots,
                                &mut shard_ops,
                                max_losses,
                                threads,
                                now,
                                node,
                                true,
                                &mut queue,
                            );
                        }
                    }
                    ScenarioAction::Leave { nodes } => {
                        for node in nodes {
                            schedule.alive[node] = false;
                            for other in 0..schedule.neighbor_sets.len() {
                                schedule.neighbor_remove(other, node);
                            }
                        }
                    }
                    ScenarioAction::Crash { nodes } => {
                        for node in nodes {
                            if !schedule.alive[node] {
                                continue;
                            }
                            schedule.alive[node] = false;
                            mirror_snapshots[node] = Some(mirrors[node].clone());
                            // bounds: node % threads < threads == shard_ops.len().
                            shard_ops[node % threads].push(PlanOp::Crash { node: node as u32 });
                        }
                    }
                    ScenarioAction::Restart { nodes } => {
                        for node in nodes {
                            plan_bring_up(
                                env,
                                schedule,
                                &mut mirrors,
                                &mut mirror_snapshots,
                                &mut shard_ops,
                                max_losses,
                                threads,
                                now,
                                node,
                                false,
                                &mut queue,
                            );
                        }
                    }
                    ScenarioAction::Partition { group, heal_at_s } => {
                        plan_partition(env, schedule, &group, heal_at_s);
                    }
                    ScenarioAction::PartitionRegions { regions, heal_at_s } => {
                        let group: Vec<usize> = regions
                            .iter()
                            .flat_map(|&region| env.topology.nodes_in_region(region))
                            .collect();
                        plan_partition(env, schedule, &group, heal_at_s);
                    }
                    ScenarioAction::SetAdversary { nodes, model } => {
                        for node in nodes {
                            schedule.adversaries[node] = model.clone();
                        }
                    }
                }
            }
        }
    }

    Plan {
        shard_ops,
        recs,
        slot_count: slot_epochs.len(),
        scenario_actions,
    }
}

/// The planner's mirror of `EngineState::bring_up`: identical schedule
/// mutations (including the restart-expiry evictions), a `Restore` op
/// instead of the engine work.
#[allow(clippy::too_many_arguments)] // the planner's full mutable context; bundling it into a struct would just rename the borrows
fn plan_bring_up(
    env: &SimEnv,
    schedule: &mut ScheduleState,
    mirrors: &mut [MirrorNode],
    mirror_snapshots: &mut [Option<MirrorNode>],
    shard_ops: &mut [Vec<PlanOp>],
    max_losses: Option<u32>,
    threads: usize,
    now: f64,
    node: usize,
    fresh: bool,
    queue: &mut EventQueue<SimEvent>,
) {
    if schedule.alive[node] {
        return;
    }
    schedule.alive[node] = true;
    let now_ms = (now * 1_000.0) as u64;
    let mut revived = if fresh {
        MirrorNode::default()
    } else {
        mirror_snapshots[node].take().unwrap_or_default()
    };
    let evicted = revived.expire_all(max_losses);
    mirrors[node] = revived;
    // bounds: node % threads < threads == shard_ops.len().
    shard_ops[node % threads].push(PlanOp::Restore {
        node: node as u32,
        fresh,
        now,
        now_ms,
    });
    for target in evicted {
        schedule.neighbor_remove(node, target);
    }
    if fresh {
        schedule.round_robin[node] = 0;
        let n = env.topology.len();
        let want = env.sim_config.initial_neighbors.min(
            schedule
                .alive
                .iter()
                .filter(|&&up| up)
                .count()
                .saturating_sub(1),
        );
        let mut set = Vec::new();
        let mut attempts = 0;
        while set.len() < want && attempts < n * 16 {
            attempts += 1;
            let candidate = schedule.protocol_rng.gen_range(0..n);
            if candidate != node && schedule.alive[candidate] && !set.contains(&candidate) {
                set.push(candidate);
            }
        }
        for &seed in &set {
            schedule.neighbor_add(seed, node);
        }
        schedule.neighbor_replace(node, set);
    }
    if !schedule.probe_cycle_active[node] {
        schedule.probe_cycle_active[node] = true;
        queue.schedule(now, SimEvent::ProbeSend { src: node });
    }
}

fn plan_partition(env: &SimEnv, schedule: &mut ScheduleState, group: &[usize], heal_at_s: f64) {
    let mut members = vec![false; env.topology.len()];
    for &node in group {
        members[node] = true;
    }
    schedule
        .active_partitions
        .push(PartitionWindow { heal_at_s, members });
}

/// Phase 2: split the engines across workers, run every shard's operation
/// list in parallel, and reassemble `state` in the original order.
fn execute_plan(env: &SimEnv, state: &mut EngineState, plan: &Plan, threads: usize) {
    let n = env.topology.len();
    let run_count = state.runs.len();
    let cells: Vec<SlotCell> = (0..plan.slot_count).map(|_| SlotCell::new()).collect();

    // Deal node `i` (engines, metrics, crash snapshots — every
    // configuration) to worker `i % threads`; local index is `i / threads`.
    let mut workers: Vec<Worker> = (0..threads)
        .map(|_| Worker {
            threads,
            runs: Vec::with_capacity(run_count),
            events: Vec::new(),
        })
        .collect();
    for (run_index, run) in state.runs.iter_mut().enumerate() {
        let nodes = std::mem::take(&mut run.nodes);
        let metrics = std::mem::take(&mut run.metrics.nodes);
        let snapshots = std::mem::take(&mut state.crash_snapshots[run_index]);
        for worker in workers.iter_mut() {
            worker.runs.push(WorkerRun {
                config: run.config.clone(),
                nodes: Vec::with_capacity(n / threads + 1),
                metrics: Vec::with_capacity(n / threads + 1),
                snapshots: Vec::with_capacity(n / threads + 1),
                tracked: Vec::new(),
                index: run.index.as_ref().map(|index| {
                    CoordinateIndex::new(index.config().clone())
                        // nc-lint: allow(panic) — the config validated when
                        // the run's index was built; revalidation is free.
                        .expect("a validated query config rebuilds")
                }),
            });
        }
        for (i, ((node, metric), snapshot)) in
            nodes.into_iter().zip(metrics).zip(snapshots).enumerate()
        {
            // bounds: i % threads < threads == workers.len().
            let slot = &mut workers[i % threads].runs[run_index];
            slot.nodes.push(node);
            slot.metrics.push(metric);
            slot.snapshots.push(snapshot);
        }
    }

    let recs = &plan.recs;
    let cells_ref = &cells;
    let finished: Vec<Worker> = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .zip(plan.shard_ops.iter())
            .map(|(mut worker, ops)| {
                scope.spawn(move || {
                    worker.execute(ops, recs, cells_ref);
                    worker
                })
            })
            .collect();
        handles
            .into_iter()
            // nc-lint: allow(panic) — a panicking worker already poisoned
            // the run; re-raising it here is the contract.
            .map(|handle| handle.join().expect("sharded simulation worker panicked"))
            .collect()
    });

    // Reassemble in global node order, stitch tracked samples back into the
    // serial emission order, and restore unclaimed crash snapshots.
    let mut per_worker: Vec<Vec<WorkerRun>> =
        finished.into_iter().map(|worker| worker.runs).collect();
    for run_index in (0..run_count).rev() {
        let mut shards: Vec<WorkerRun> = per_worker
            .iter_mut()
            // nc-lint: allow(panic) — every worker was built with run_count
            // runs a few lines up; parity is structural.
            .map(|runs| runs.pop().expect("one WorkerRun per configuration"))
            .collect();
        let run = &mut state.runs[run_index];
        let mut nodes_iters: Vec<_> = Vec::with_capacity(threads);
        let mut metrics_iters: Vec<_> = Vec::with_capacity(threads);
        let mut snapshot_iters: Vec<_> = Vec::with_capacity(threads);
        let mut tracked: Vec<(u32, u32, TrackedCoordinate)> = Vec::new();
        let mut index_parts: Vec<CoordinateIndex<usize>> = Vec::new();
        for shard in shards.drain(..) {
            nodes_iters.push(shard.nodes.into_iter());
            metrics_iters.push(shard.metrics.into_iter());
            snapshot_iters.push(shard.snapshots.into_iter());
            tracked.extend(shard.tracked);
            index_parts.extend(shard.index);
        }
        let mut nodes = Vec::with_capacity(n);
        let mut metrics = Vec::with_capacity(n);
        let mut snapshots = Vec::with_capacity(n);
        // Shard k holds exactly the nodes `i` with `i % threads == k`, in
        // ascending order, so draining the iterators round-robin restores
        // the global node order; running one dry is a planner bug worth
        // crashing on.
        for i in 0..n {
            // bounds: i % threads < threads, one iterator per worker shard.
            // nc-lint: allow(panic) — structural parity, see loop comment.
            nodes.push(nodes_iters[i % threads].next().expect("node count parity"));
            // bounds: i % threads < threads, one iterator per worker shard.
            // nc-lint: allow(panic) — structural parity, see loop comment.
            metrics.push(metrics_iters[i % threads].next().expect("metric parity"));
            // bounds: i % threads < threads, one iterator per worker shard.
            // nc-lint: allow(panic) — structural parity, see loop comment.
            snapshots.push(snapshot_iters[i % threads].next().expect("snapshot parity"));
        }
        run.nodes = nodes;
        run.metrics.nodes = metrics;
        state.crash_snapshots[run_index] = snapshots;
        tracked.sort_by_key(|&(sample, order, _)| (sample, order));
        run.metrics
            .tracked
            .extend(tracked.into_iter().map(|(_, _, sample)| sample));
        run.metrics.scenario_ops += plan.scenario_actions;
        // Fold the per-worker query-index slices back into the run's index.
        // Each worker digested a disjoint set of node ids, so the upserts
        // never collide and the merged contents equal a serial run's
        // (rebalance counters are layout diagnostics and may differ).
        if let Some(target) = run.index.as_mut() {
            for part in &index_parts {
                for (id, coordinate) in part.iter() {
                    let _ = target.update(*id, coordinate);
                }
            }
        }
    }
}
