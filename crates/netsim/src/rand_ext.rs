//! Probability distributions built on top of a [`rand::Rng`].
//!
//! The workload models need normal, lognormal, Pareto and exponential
//! variates. Rather than adding `rand_distr` to the dependency set, the few
//! samplers required are implemented here (Box–Muller for the normal family,
//! inverse-transform for Pareto and exponential).

use rand::Rng;

/// Draws a standard normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would take ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics when `std_dev` is negative or either parameter is non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0);
    mean + std_dev * standard_normal(rng)
}

/// Draws a lognormal variate: `exp(N(mu, sigma))`.
///
/// # Panics
///
/// Panics when `sigma` is negative or either parameter is non-finite.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
    (mu + sigma * standard_normal(rng)).exp()
}

/// Draws a Pareto variate with the given scale (minimum value) and shape
/// `alpha` via inverse-transform sampling. Smaller `alpha` produces heavier
/// tails; `alpha ≤ 1` has infinite mean, which is exactly the kind of tail
/// the raw latency streams exhibit.
///
/// # Panics
///
/// Panics when `scale` or `alpha` is not a positive finite number.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, alpha: f64) -> f64 {
    assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
    assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    scale * u.powf(-1.0 / alpha)
}

/// Draws an exponential variate with rate `lambda` (mean `1 / lambda`).
///
/// # Panics
///
/// Panics when `lambda` is not a positive finite number.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "lambda must be positive"
    );
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn standard_normal_has_roughly_zero_mean_unit_variance() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn normal_respects_mean_and_std() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 50.0, 5.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 50.0).abs() < 0.5);
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| lognormal(&mut r, 0.0, 1.0)).collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            mean > median,
            "lognormal is right-skewed: mean {mean} median {median}"
        );
    }

    #[test]
    fn pareto_never_below_scale_and_has_heavy_tail() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| pareto(&mut r, 100.0, 1.0)).collect();
        assert!(samples.iter().all(|&v| v >= 100.0));
        // With alpha = 1 roughly 1% of samples exceed 100x the scale.
        let extreme = samples.iter().filter(|&&v| v > 10_000.0).count();
        assert!(
            extreme > 100,
            "expected a heavy tail, got {extreme} extreme samples"
        );
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!(samples.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn samplers_are_deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(pareto(&mut a, 1.0, 1.2), pareto(&mut b, 1.0, 1.2));
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn pareto_rejects_bad_alpha() {
        let mut r = rng();
        let _ = pareto(&mut r, 1.0, 0.0);
    }
}
