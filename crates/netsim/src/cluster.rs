//! The low-latency cluster model of §IV-B (Figure 6).
//!
//! When the authors first ran Vivaldi on their local cluster they observed "a
//! fairly Normal spectrum of latency observations between 0.4 and 1.2 ms, and
//! then a tail of 5% of the observations above 1.2 ms", attributed to context
//! switches and background load — i.e. measurement noise *below the
//! software's ability to measure accurately*, which wrecks confidence unless
//! the confidence-building margin is applied. [`ClusterModel`] reproduces
//! exactly that distribution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rand_ext;

/// Observation model for links inside a low-latency cluster.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    node_count: usize,
    rng: StdRng,
}

impl ClusterModel {
    /// Creates a cluster of `node_count` nodes (the paper uses three).
    ///
    /// # Panics
    ///
    /// Panics when `node_count < 2`.
    pub fn new(node_count: usize, seed: u64) -> Self {
        assert!(node_count >= 2, "a cluster needs at least two nodes");
        ClusterModel {
            node_count,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The three-node cluster of the paper's Figure 6 experiment.
    pub fn paper_cluster(seed: u64) -> Self {
        Self::new(3, seed)
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Draws one observed RTT (milliseconds) for any intra-cluster link. All
    /// links share the same distribution: 95 % of samples fall roughly
    /// uniformly-normally in 0.4–1.2 ms, 5 % extend beyond 1.2 ms (context
    /// switches, scheduling noise).
    pub fn sample(&mut self) -> f64 {
        if self.rng.gen_range(0.0..1.0) < 0.05 {
            // Tail above 1.2 ms: a couple of milliseconds of scheduling noise.
            1.2 + rand_ext::exponential(&mut self.rng, 1.0 / 1.2)
        } else {
            rand_ext::normal(&mut self.rng, 0.8, 0.15).clamp(0.4, 1.2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_single_node_cluster() {
        let _ = ClusterModel::new(1, 0);
    }

    #[test]
    fn paper_cluster_has_three_nodes() {
        assert_eq!(ClusterModel::paper_cluster(0).node_count(), 3);
    }

    #[test]
    fn distribution_matches_the_papers_description() {
        let mut m = ClusterModel::paper_cluster(42);
        let samples: Vec<f64> = (0..50_000).map(|_| m.sample()).collect();
        assert!(samples.iter().all(|&v| v >= 0.4), "never below 0.4 ms");
        let in_band = samples.iter().filter(|&&v| v <= 1.2).count() as f64 / samples.len() as f64;
        assert!(
            (in_band - 0.95).abs() < 0.02,
            "about 95% of samples within 0.4–1.2 ms, got {in_band:.3}"
        );
        let tail_max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(tail_max > 1.5, "the tail should reach a few milliseconds");
        assert!(tail_max < 60.0, "but not wide-area magnitudes");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = ClusterModel::paper_cluster(9);
        let mut b = ClusterModel::paper_cluster(9);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }
}
