//! Byzantine node behaviours injected at the schedule layer.
//!
//! The paper's stability filters were motivated by a hostile, noisy
//! internet; this module supplies the hostility. An [`AdversaryModel`] is
//! attached to a node (statically via
//! [`crate::SimConfig::with_adversaries`], or mid-run via
//! [`crate::scenario::ScenarioAction::SetAdversary`]) and corrupts every
//! probe *reply* that node sends. The corruption happens in the shared
//! schedule, outside the protocol engines, so all side-by-side
//! configurations of one run observe the same attack and the engines under
//! test receive exactly what a real victim would receive off the wire.
//!
//! Three attacker families cover the classic failure axes of coordinate
//! systems:
//!
//! * [`AdversaryModel::CoordinateLiar`] — reports a displaced (and
//!   optionally inflated) coordinate with a bogus, over-confident error
//!   estimate, in both the reply body and its piggybacked gossip. Because
//!   Vivaldi weights a neighbour by `w_i / (w_i + w_j)`, a liar claiming
//!   near-zero error pulls its victims with near-maximal force.
//! * [`AdversaryModel::DelayAttacker`] — holds every reply back by a fixed
//!   extra delay, inflating the measured RTT to drag the victim's spring
//!   away from the true embedding (the reply is physically late, so it can
//!   also cross the prober's timeout and surface as a loss).
//! * [`AdversaryModel::JitterBomb`] — adds a uniformly random per-reply
//!   delay, aimed squarely at percentile-based history filters: enough
//!   variance defeats a short window's notion of "the common case".
//!
//! All randomness is drawn from a dedicated adversary RNG in the schedule,
//! at reply-delivery time, and only for nodes that currently have a model
//! attached — an adversary-free run consumes no extra randomness and keeps
//! its event stream byte-identical.

use nc_proto::ProbeResponse;
use nc_vivaldi::{Coordinate, MAX_DIMS};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::sim::ConfigError;

/// One node's adversarial behaviour, applied to every probe reply it sends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdversaryModel {
    /// Reports a displaced/inflated coordinate and a bogus error estimate
    /// (reply body and gossip alike). Each reply lies in a fresh uniformly
    /// random direction, so the victim sees a point cloud on a sphere of
    /// radius `displacement_ms` around the liar's true coordinate.
    CoordinateLiar {
        /// Distance of the reported coordinate from the true one, in
        /// milliseconds of predicted latency.
        displacement_ms: f64,
        /// Multiplier applied to the true coordinate before displacement
        /// (1.0 = pure displacement; larger values blow up the claimed
        /// embedding).
        inflate: f64,
        /// The claimed Vivaldi error estimate. Small values (e.g. 0.01)
        /// weaponise the `w_i / (w_i + w_j)` sample weight.
        error_estimate: f64,
    },
    /// Delays every reply by a fixed amount, inflating the measured RTT.
    DelayAttacker {
        /// Extra reverse-path delay added to each reply, in milliseconds.
        extra_delay_ms: f64,
    },
    /// Delays each reply by an independent uniform random amount in
    /// `[0, max_extra_delay_ms)`, defeating short percentile filters.
    JitterBomb {
        /// Upper bound of the per-reply uniform extra delay, milliseconds.
        max_extra_delay_ms: f64,
    },
}

impl AdversaryModel {
    /// Checks the model's parameters: magnitudes must be finite and
    /// non-negative (the liar's `inflate` strictly positive), and the
    /// claimed error estimate must be a finite value in `(0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let finite_nonneg = |v: f64| v.is_finite() && v >= 0.0;
        match self {
            AdversaryModel::CoordinateLiar {
                displacement_ms,
                inflate,
                error_estimate,
            } => {
                if !finite_nonneg(*displacement_ms) {
                    return Err(ConfigError::AdversaryMagnitudeNotFinite(*displacement_ms));
                }
                if !(inflate.is_finite() && *inflate > 0.0) {
                    return Err(ConfigError::AdversaryMagnitudeNotFinite(*inflate));
                }
                if !(error_estimate.is_finite() && *error_estimate > 0.0 && *error_estimate <= 1.0)
                {
                    return Err(ConfigError::AdversaryErrorEstimateOutOfRange(
                        *error_estimate,
                    ));
                }
                Ok(())
            }
            AdversaryModel::DelayAttacker { extra_delay_ms } => {
                if !finite_nonneg(*extra_delay_ms) {
                    return Err(ConfigError::AdversaryMagnitudeNotFinite(*extra_delay_ms));
                }
                Ok(())
            }
            AdversaryModel::JitterBomb { max_extra_delay_ms } => {
                if !finite_nonneg(*max_extra_delay_ms) {
                    return Err(ConfigError::AdversaryMagnitudeNotFinite(
                        *max_extra_delay_ms,
                    ));
                }
                Ok(())
            }
        }
    }

    /// Draws this model's per-reply action. The draw happens once per
    /// exchange, in the shared schedule, so every side-by-side
    /// configuration observes the identical attack.
    pub(crate) fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> AdversaryDraw {
        match self {
            AdversaryModel::CoordinateLiar {
                displacement_ms,
                inflate,
                error_estimate,
            } => {
                // Drawn in MAX_DIMS so the consumed randomness does not
                // depend on any particular stack's coordinate
                // dimensionality; truncated and renormalised at apply time.
                let mut direction = [0.0f64; MAX_DIMS];
                for component in direction.iter_mut() {
                    *component = rng.gen_range(-1.0..=1.0);
                }
                AdversaryDraw {
                    extra_delay_ms: 0.0,
                    lie: Some(CoordinateLie {
                        direction,
                        displacement_ms: *displacement_ms,
                        inflate: *inflate,
                        error_estimate: *error_estimate,
                    }),
                }
            }
            AdversaryModel::DelayAttacker { extra_delay_ms } => AdversaryDraw {
                extra_delay_ms: *extra_delay_ms,
                lie: None,
            },
            AdversaryModel::JitterBomb { max_extra_delay_ms } => AdversaryDraw {
                extra_delay_ms: if *max_extra_delay_ms > 0.0 {
                    rng.gen_range(0.0..*max_extra_delay_ms)
                } else {
                    0.0
                },
                lie: None,
            },
        }
    }
}

/// Static adversary assignment for a run: a seeded random `fraction` of the
/// population runs `model` from the start. Scenario scripts can change
/// individual nodes later via
/// [`crate::scenario::ScenarioAction::SetAdversary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryConfig {
    /// Fraction of nodes (rounded to the nearest count) made adversarial.
    pub fraction: f64,
    /// The behaviour assigned to every selected node.
    pub model: AdversaryModel,
    /// Seed of the dedicated adversary RNG (node selection and per-reply
    /// draws). Independent from the protocol and link streams, so the
    /// probe/gossip schedule is identical with and without adversaries.
    pub seed: u64,
}

impl AdversaryConfig {
    /// Builds an assignment with the default adversary seed.
    pub fn new(fraction: f64, model: AdversaryModel) -> Self {
        AdversaryConfig {
            fraction,
            model,
            seed: 0xBAD_5EED,
        }
    }

    /// Checks the fraction is a probability and the model well-formed.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.fraction.is_finite() && (0.0..=1.0).contains(&self.fraction)) {
            return Err(ConfigError::AdversaryFractionOutOfRange(self.fraction));
        }
        self.model.validate()
    }
}

/// One drawn adversarial action for a single reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct AdversaryDraw {
    /// Extra reverse-path delay in milliseconds, added to both the observed
    /// RTT and the reply's in-flight time (the reply really is late, so it
    /// can cross the prober's timeout).
    pub extra_delay_ms: f64,
    /// The coordinate lie to apply to the reply, if any.
    pub lie: Option<CoordinateLie>,
}

/// A drawn coordinate lie: direction plus the liar's static parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CoordinateLie {
    /// Un-normalised displacement direction in `MAX_DIMS` dimensions.
    pub direction: [f64; MAX_DIMS],
    /// Displacement magnitude in milliseconds.
    pub displacement_ms: f64,
    /// Multiplier applied to the true coordinate before displacement.
    pub inflate: f64,
    /// The claimed error estimate stamped on the reply and its gossip.
    pub error_estimate: f64,
}

/// Applies a drawn lie to a reply in place: body coordinate, body error
/// estimate, and every piggybacked gossip entry.
pub(crate) fn apply_lie<Id>(response: &mut ProbeResponse<Id>, lie: &CoordinateLie) {
    distort(&mut response.coordinate, lie);
    response.error_estimate = lie.error_estimate;
    for entry in &mut response.gossip {
        distort(&mut entry.coordinate, lie);
        entry.error_estimate = lie.error_estimate;
    }
}

fn distort(coordinate: &mut Coordinate, lie: &CoordinateLie) {
    let dims = coordinate.dimensions();
    if lie.inflate != 1.0 {
        coordinate.scale_in_place(lie.inflate);
    }
    if lie.displacement_ms == 0.0 || dims == 0 {
        return;
    }
    let mut components = [0.0f64; MAX_DIMS];
    components[..dims].copy_from_slice(&lie.direction[..dims]);
    let norm = components[..dims].iter().map(|c| c * c).sum::<f64>().sqrt();
    if norm <= 1e-12 {
        // Degenerate truncation: lie along the first axis instead.
        components[0] = lie.displacement_ms;
    } else {
        let scale = lie.displacement_ms / norm;
        for component in components[..dims].iter_mut() {
            *component *= scale;
        }
    }
    let displacement =
        Coordinate::new(&components[..dims]).expect("finite displacement components");
    coordinate.displace_by(&displacement);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_proto::{GossipEntry, ProbeRequest};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn liar() -> AdversaryModel {
        AdversaryModel::CoordinateLiar {
            displacement_ms: 1000.0,
            inflate: 1.0,
            error_estimate: 0.01,
        }
    }

    #[test]
    fn validate_accepts_sane_models() {
        assert!(liar().validate().is_ok());
        assert!(AdversaryModel::DelayAttacker {
            extra_delay_ms: 250.0
        }
        .validate()
        .is_ok());
        assert!(AdversaryModel::JitterBomb {
            max_extra_delay_ms: 400.0
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(matches!(
            AdversaryModel::DelayAttacker {
                extra_delay_ms: f64::NAN
            }
            .validate(),
            Err(ConfigError::AdversaryMagnitudeNotFinite(_))
        ));
        assert!(matches!(
            AdversaryModel::CoordinateLiar {
                displacement_ms: -1.0,
                inflate: 1.0,
                error_estimate: 0.1
            }
            .validate(),
            Err(ConfigError::AdversaryMagnitudeNotFinite(_))
        ));
        assert!(matches!(
            AdversaryModel::CoordinateLiar {
                displacement_ms: 10.0,
                inflate: 0.0,
                error_estimate: 0.1
            }
            .validate(),
            Err(ConfigError::AdversaryMagnitudeNotFinite(_))
        ));
        assert!(matches!(
            AdversaryModel::CoordinateLiar {
                displacement_ms: 10.0,
                inflate: 1.0,
                error_estimate: 0.0
            }
            .validate(),
            Err(ConfigError::AdversaryErrorEstimateOutOfRange(_))
        ));
        assert!(matches!(
            AdversaryConfig::new(1.5, liar()).validate(),
            Err(ConfigError::AdversaryFractionOutOfRange(_))
        ));
    }

    #[test]
    fn liar_draw_displaces_body_and_gossip_by_the_requested_distance() {
        let mut rng = StdRng::seed_from_u64(7);
        let draw = liar().draw(&mut rng);
        assert_eq!(draw.extra_delay_ms, 0.0);
        let lie = draw.lie.expect("liar always lies");

        let request = ProbeRequest::new(0usize, 1, 0);
        let truth = Coordinate::new([10.0, -4.0, 2.5]).unwrap();
        let mut response = ProbeResponse::new(1usize, &request, truth.clone(), 0.25);
        response.gossip.push(GossipEntry {
            id: 2usize,
            coordinate: Coordinate::new([1.0, 2.0, 3.0]).unwrap(),
            error_estimate: 0.3,
        });
        let gossip_truth = response.gossip[0].coordinate.clone();

        apply_lie(&mut response, &lie);
        assert!((response.coordinate.distance(&truth) - 1000.0).abs() < 1e-6);
        assert_eq!(response.error_estimate, 0.01);
        assert!((response.gossip[0].coordinate.distance(&gossip_truth) - 1000.0).abs() < 1e-6);
        assert_eq!(response.gossip[0].error_estimate, 0.01);
    }

    #[test]
    fn delay_attacker_draws_no_randomness() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let model = AdversaryModel::DelayAttacker {
            extra_delay_ms: 500.0,
        };
        let draw = model.draw(&mut a);
        assert_eq!(draw.extra_delay_ms, 500.0);
        assert!(draw.lie.is_none());
        // The RNG was untouched.
        assert_eq!(a.gen_range(0.0..1.0_f64), b.gen_range(0.0..1.0_f64));
    }

    #[test]
    fn jitter_bomb_spreads_delays_over_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = AdversaryModel::JitterBomb {
            max_extra_delay_ms: 300.0,
        };
        let draws: Vec<f64> = (0..200)
            .map(|_| model.draw(&mut rng).extra_delay_ms)
            .collect();
        assert!(draws.iter().all(|&d| (0.0..300.0).contains(&d)));
        assert!(draws.iter().any(|&d| d < 60.0));
        assert!(draws.iter().any(|&d| d > 240.0));
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            assert_eq!(liar().draw(&mut a), liar().draw(&mut b));
        }
    }
}
