//! Materialised ping traces.
//!
//! The paper's §III analysis (Figures 2–4) works on the raw trace itself —
//! histograms of all samples, the time series of one link, and the
//! predictive power of the MP filter replayed over each link's observation
//! sequence — before any coordinates are involved. [`TraceGenerator`]
//! produces such traces from the synthetic substrate: every record says who
//! pinged whom, when, and what RTT the probe observed.

use serde::{Deserialize, Serialize};

use crate::linkmodel::{LinkModel, LinkModelConfig};
use crate::planetlab::PlanetLabConfig;
use crate::topology::Topology;
use stable_nc::FxHashMap;

/// One ping observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Time of the observation, seconds from the start of the trace.
    pub time_s: f64,
    /// Index of the probing node.
    pub src: usize,
    /// Index of the probed node.
    pub dst: usize,
    /// Observed round-trip time in milliseconds.
    pub rtt_ms: f64,
}

/// Measurement schedule for a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// The network being measured.
    pub network: PlanetLabConfig,
    /// Length of the trace in seconds.
    pub duration_s: f64,
    /// Interval between successive probes sent by one node (seconds). The
    /// paper's trace used 1 s; its live deployment 5 s.
    pub probe_interval_s: f64,
}

impl TraceConfig {
    /// Creates a schedule over `network` lasting `duration_s` with one probe
    /// per node every `probe_interval_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics when duration or interval is not positive and finite.
    pub fn new(network: PlanetLabConfig, duration_s: f64, probe_interval_s: f64) -> Self {
        assert!(duration_s.is_finite() && duration_s > 0.0);
        assert!(probe_interval_s.is_finite() && probe_interval_s > 0.0);
        TraceConfig {
            network,
            duration_s,
            probe_interval_s,
        }
    }

    /// Total number of probe records the trace will contain.
    pub fn expected_records(&self) -> usize {
        let steps = (self.duration_s / self.probe_interval_s).floor() as usize;
        steps * self.network.node_count()
    }
}

/// Generates ping traces and per-link observation sequences from the
/// synthetic substrate.
///
/// Probing follows the paper's measurement discipline: each node probes its
/// neighbours in round-robin order, one probe per interval. For trace
/// generation the neighbour set is the full mesh (as in the PlanetLab
/// all-pairs trace).
#[derive(Debug)]
pub struct TraceGenerator {
    config: TraceConfig,
    topology: Topology,
    links: FxHashMap<(usize, usize), LinkModel>,
}

impl TraceGenerator {
    /// Builds the generator (topology and lazily populated link models).
    pub fn new(config: TraceConfig) -> Self {
        let topology = config.network.build_topology();
        TraceGenerator {
            config,
            topology,
            links: FxHashMap::default(),
        }
    }

    /// The trace configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The generated topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn link_config(&self) -> LinkModelConfig {
        self.config.network.link_config().clone()
    }

    fn link_seed(&self, a: usize, b: usize) -> u64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.config
            .network
            .seed()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((lo as u64) << 32 | hi as u64)
    }

    /// Samples one observation of the (unordered) link `a`–`b` at `time_s`.
    ///
    /// # Panics
    ///
    /// Panics when `a == b` or either index is out of range.
    pub fn sample_link(&mut self, a: usize, b: usize, time_s: f64) -> f64 {
        assert!(a != b, "a node does not ping itself");
        let key = if a < b { (a, b) } else { (b, a) };
        let seed = self.link_seed(a, b);
        let duration = self.config.duration_s;
        let link_config = self.link_config();
        let base = self.topology.base_rtt_ms(key.0, key.1);
        let model = self
            .links
            .entry(key)
            .or_insert_with(|| LinkModel::new(base, link_config, duration, seed));
        model.sample(time_s)
    }

    /// The underlying (noise-free) latency of link `a`–`b` at `time_s`.
    pub fn underlying_rtt_ms(&mut self, a: usize, b: usize, time_s: f64) -> f64 {
        let key = if a < b { (a, b) } else { (b, a) };
        let seed = self.link_seed(a, b);
        let duration = self.config.duration_s;
        let link_config = self.link_config();
        let base = self.topology.base_rtt_ms(key.0, key.1);
        let model = self
            .links
            .entry(key)
            .or_insert_with(|| LinkModel::new(base, link_config, duration, seed));
        model.underlying_rtt_ms(time_s)
    }

    /// Generates the full trace: at every probe interval each node probes the
    /// next target in its round-robin order over all other nodes. Records are
    /// ordered by time.
    pub fn generate(&mut self) -> Vec<TraceRecord> {
        let n = self.config.network.node_count();
        let steps = (self.config.duration_s / self.config.probe_interval_s).floor() as usize;
        let mut records = Vec::with_capacity(steps * n);
        for step in 0..steps {
            let time_s = step as f64 * self.config.probe_interval_s;
            for src in 0..n {
                // Round-robin target, skipping self.
                let mut dst = (src + 1 + step % (n - 1)) % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                let rtt_ms = self.sample_link(src, dst, time_s);
                records.push(TraceRecord {
                    time_s,
                    src,
                    dst,
                    rtt_ms,
                });
            }
        }
        records
    }

    /// Generates `count` consecutive observations of one link at the probe
    /// interval, starting at time zero — the per-link series used by the
    /// Figure 3 and Figure 4 analyses.
    pub fn link_observations(&mut self, a: usize, b: usize, count: usize) -> Vec<TraceRecord> {
        (0..count)
            .map(|i| {
                let time_s = i as f64 * self.config.probe_interval_s;
                TraceRecord {
                    time_s,
                    src: a,
                    dst: b,
                    rtt_ms: self.sample_link(a, b, time_s),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TraceConfig {
        TraceConfig::new(PlanetLabConfig::small(8).with_seed(21), 120.0, 1.0)
    }

    #[test]
    fn expected_records_matches_generate() {
        let config = small_config();
        let expected = config.expected_records();
        let mut generator = TraceGenerator::new(config);
        let records = generator.generate();
        assert_eq!(records.len(), expected);
    }

    #[test]
    fn records_are_time_ordered_and_valid() {
        let mut generator = TraceGenerator::new(small_config());
        let records = generator.generate();
        let n = generator.topology().len();
        let mut last_time = 0.0;
        for r in &records {
            assert!(r.time_s >= last_time);
            last_time = r.time_s;
            assert!(r.src < n);
            assert!(r.dst < n);
            assert_ne!(r.src, r.dst);
            assert!(r.rtt_ms > 0.0);
        }
    }

    #[test]
    fn round_robin_covers_many_destinations() {
        let mut generator = TraceGenerator::new(small_config());
        let records = generator.generate();
        let mut destinations: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for r in records.iter().filter(|r| r.src == 0) {
            destinations.insert(r.dst);
        }
        assert!(
            destinations.len() >= 6,
            "node 0 should probe most peers, got {destinations:?}"
        );
    }

    #[test]
    fn link_observations_are_reproducible() {
        let mut g1 = TraceGenerator::new(small_config());
        let mut g2 = TraceGenerator::new(small_config());
        let a = g1.link_observations(0, 3, 50);
        let b = g2.link_observations(0, 3, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn link_observations_cluster_near_underlying() {
        let mut g = TraceGenerator::new(small_config());
        let underlying = g.underlying_rtt_ms(1, 2, 0.0);
        let obs = g.link_observations(1, 2, 400);
        let near = obs
            .iter()
            .filter(|r| (r.rtt_ms - underlying).abs() < underlying * 0.5)
            .count();
        assert!(
            near as f64 / obs.len() as f64 > 0.9,
            "most samples sit near the underlying latency"
        );
    }

    #[test]
    #[should_panic(expected = "does not ping itself")]
    fn self_link_panics() {
        let mut g = TraceGenerator::new(small_config());
        let _ = g.sample_link(2, 2, 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_duration_panics() {
        let _ = TraceConfig::new(PlanetLabConfig::small(4), 0.0, 1.0);
    }
}
