//! The discrete-event coordinate-system simulator.
//!
//! The paper evaluates its enhancements in two ways that this simulator
//! unifies: a trace-driven simulator ("we built a simulator that accepted our
//! raw ping trace as input and mimicked the distributed behavior of
//! Vivaldi") and a live deployment in which the filtered and unfiltered
//! systems ran "on the same set of PlanetLab nodes at the same time, using
//! different ports". [`Simulator`] therefore runs **multiple named
//! configurations side by side on identical observation streams**: at every
//! probe the same raw RTT is handed to each configuration's node, so any
//! difference in the resulting metrics is attributable to the coordinate
//! stack alone.
//!
//! # The event model
//!
//! Time advances through a [`EventQueue`] of scheduled [`SimEvent`]s rather
//! than fixed steps, so probes are genuinely *in flight*: a probe sent at
//! `t` reaches its target half an RTT later (split asymmetrically when the
//! link model says so), the reply takes the other half back, and only then
//! does the prober's engine digest the observation. A probe or reply may be
//! dropped by the link's loss process or by an active network partition, in
//! which case the prober's timeout fires instead and the engine reports
//! [`Event::ProbeLost`] — the round-robin schedule keeps advancing either
//! way; nothing ever stalls on an unanswered probe.
//!
//! Probing follows the paper's protocol: every node samples its neighbour
//! set in round-robin order at a fixed interval, neighbour sets start small
//! and grow through gossip (each probe reply carries the address of one
//! other node the target knows about); a mid-run joiner announces itself to
//! its seed peers, as a deployment bootstrapping from a membership file
//! would.
//!
//! On top of the queue sits the [`Scenario`](crate::scenario) layer: nodes
//! can join mid-run (alone or as a flash crowd), leave gracefully, crash
//! and later restart from the [`NodeSnapshot`] taken at the instant of the
//! crash, and whole node groups or geographic regions can be partitioned
//! from the rest of the mesh until a heal time. Scenario actions apply
//! identically to every named configuration.
//!
//! The simulator is a *driver* of the sans-I/O engine: every probe runs the
//! full wire exchange — [`StableNode::probe_request_for`] →
//! [`StableNode::respond`] → stamp the sampled RTT into the
//! [`ProbeResponse`](nc_proto::ProbeResponse) →
//! [`StableNode::handle_response`] — and the metrics are folded from the
//! returned [`Event`] stream, exactly as a deployed daemon would consume
//! them. Timeouts run through [`StableNode::handle_timeout`], the same API a
//! daemon's timer wheel would call.

use std::cmp::Ordering;

use nc_proto::{Event, NodeSnapshot, ProbeRequest, ProbeResponse};
use nc_query::{CoordinateIndex, QueryConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stable_nc::{FxHashMap, NodeConfig, StableNode};

use crate::adversary::{apply_lie, AdversaryConfig, AdversaryDraw, AdversaryModel};
use crate::linkmodel::{LinkModel, LinkModelConfig};
use crate::metrics::{ConfigMetrics, NodeMetrics, SimReport, TrackedCoordinate};
use crate::planetlab::PlanetLabConfig;
use crate::scenario::{Scenario, ScenarioAction};
use crate::topology::Topology;

/// An invalid [`SimConfig`], reported by [`SimConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The total duration is not positive and finite.
    NonPositiveDuration(f64),
    /// The probe interval is not positive and finite.
    NonPositiveProbeInterval(f64),
    /// The probe interval exceeds the run duration (no node would probe).
    ProbeIntervalExceedsDuration {
        /// The configured interval.
        interval_s: f64,
        /// The configured duration.
        duration_s: f64,
    },
    /// The measurement window starts outside `[0, duration)`.
    MeasurementStartOutOfRange {
        /// The configured start.
        start_s: f64,
        /// The configured duration.
        duration_s: f64,
    },
    /// The trajectory-tracking interval is not positive and finite.
    NonPositiveTrackInterval(f64),
    /// The probe timeout is not positive and finite.
    NonPositiveProbeTimeout(f64),
    /// The adversary fraction is not a probability in `[0, 1]`.
    AdversaryFractionOutOfRange(f64),
    /// An adversary magnitude (displacement, inflation or delay) is not a
    /// finite non-negative number.
    AdversaryMagnitudeNotFinite(f64),
    /// A coordinate liar's claimed error estimate lies outside `(0, 1]`.
    AdversaryErrorEstimateOutOfRange(f64),
    /// The drift-walk step period is not positive and finite.
    DriftPeriodNotPositive(f64),
    /// The drift-walk magnitude is not a finite non-negative number.
    DriftMagnitudeNotFinite(f64),
    /// The per-direction loss probability is not in `[0, 1]`.
    LossProbabilityOutOfRange(f64),
    /// The delay-asymmetry fraction is not in `[0, 1)`.
    DelayAsymmetryOutOfRange(f64),
    /// A link-model tuning parameter has an unphysical value (wrong sign,
    /// NaN or infinity).
    LinkParameterInvalid {
        /// The field name, as written in [`crate::LinkModelConfig`].
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The initial neighbour count is zero: no node would ever probe.
    ZeroInitialNeighbors,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveDuration(d) => {
                write!(f, "duration must be positive and finite, got {d}")
            }
            ConfigError::NonPositiveProbeInterval(i) => {
                write!(f, "probe interval must be positive and finite, got {i}")
            }
            ConfigError::ProbeIntervalExceedsDuration {
                interval_s,
                duration_s,
            } => write!(
                f,
                "probe interval {interval_s} s exceeds the run duration {duration_s} s"
            ),
            ConfigError::MeasurementStartOutOfRange {
                start_s,
                duration_s,
            } => write!(
                f,
                "measurement start {start_s} s lies outside the run [0, {duration_s}) s"
            ),
            ConfigError::NonPositiveTrackInterval(i) => {
                write!(f, "track interval must be positive and finite, got {i}")
            }
            ConfigError::NonPositiveProbeTimeout(t) => {
                write!(f, "probe timeout must be positive and finite, got {t}")
            }
            ConfigError::AdversaryFractionOutOfRange(p) => {
                write!(f, "adversary fraction must be in [0, 1], got {p}")
            }
            ConfigError::AdversaryMagnitudeNotFinite(v) => write!(
                f,
                "adversary magnitude must be finite and non-negative, got {v}"
            ),
            ConfigError::AdversaryErrorEstimateOutOfRange(e) => {
                write!(f, "adversary error estimate must lie in (0, 1], got {e}")
            }
            ConfigError::DriftPeriodNotPositive(p) => {
                write!(f, "drift-walk period must be positive and finite, got {p}")
            }
            ConfigError::DriftMagnitudeNotFinite(s) => write!(
                f,
                "drift-walk magnitude must be finite and non-negative, got {s}"
            ),
            ConfigError::LossProbabilityOutOfRange(p) => {
                write!(f, "loss probability must be in [0, 1], got {p}")
            }
            ConfigError::DelayAsymmetryOutOfRange(a) => {
                write!(f, "delay asymmetry must be in [0, 1), got {a}")
            }
            ConfigError::LinkParameterInvalid { name, value } => {
                write!(
                    f,
                    "link-model parameter {name} has unphysical value {value}"
                )
            }
            ConfigError::ZeroInitialNeighbors => {
                write!(f, "initial neighbour count must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Measurement schedule and protocol parameters of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated time in seconds.
    pub duration_s: f64,
    /// Interval between successive probes sent by one node (seconds); the
    /// paper's trace used 1 s, its deployment 5 s.
    pub probe_interval_s: f64,
    /// Metrics are only accumulated from this time onward (warm-up
    /// exclusion); the paper reports the second half of its runs.
    pub measurement_start_s: f64,
    /// How many other nodes each node knows at start-up.
    pub initial_neighbors: usize,
    /// Whether probe replies gossip one additional neighbour address.
    pub gossip: bool,
    /// Node indices whose coordinates are sampled over time (Figure 7).
    pub track_nodes: Vec<usize>,
    /// Interval between trajectory samples for tracked nodes (seconds).
    pub track_interval_s: f64,
    /// Seed for protocol-level randomness (gossip choices, initial neighbour
    /// sets). Independent of the workload seed.
    pub protocol_seed: u64,
    /// How long a prober waits for a reply before declaring the probe lost
    /// (seconds). Defaults to three probe intervals — far above any
    /// in-flight delay, so timeouts fire only for genuinely dropped packets
    /// and dead peers.
    pub probe_timeout_s: f64,
    /// Optional Byzantine assignment: a seeded random fraction of the
    /// population runs an [`AdversaryModel`](crate::adversary::AdversaryModel)
    /// from the start. `None` (the default) and a fraction of `0.0` are
    /// byte-identical to an adversary-free run — the adversary layer draws
    /// from its own RNG and only for nodes that actually misbehave.
    pub adversary: Option<AdversaryConfig>,
    /// Maintains a per-configuration [`nc_query::CoordinateIndex`] fed from
    /// the engines' application-coordinate updates, queryable after the run
    /// via [`Simulator::query_index`]. Off by default: the index is pure
    /// read-path state and never influences the probe schedule or the
    /// [`SimReport`], so enabling it cannot change simulation results.
    pub query_index: bool,
}

impl SimConfig {
    /// Creates a schedule with the given duration and probe interval; the
    /// measurement window defaults to the second half of the run, neighbour
    /// sets start with 8 members, gossip is enabled, and probes time out
    /// after three intervals.
    ///
    /// # Panics
    ///
    /// Panics when the combination fails [`SimConfig::validate`]. Build the
    /// struct literally and call `validate()` for a non-panicking path.
    pub fn new(duration_s: f64, probe_interval_s: f64) -> Self {
        SimConfig {
            duration_s,
            probe_interval_s,
            measurement_start_s: duration_s / 2.0,
            initial_neighbors: 8,
            gossip: true,
            track_nodes: Vec::new(),
            track_interval_s: 60.0,
            protocol_seed: 0xF00D,
            probe_timeout_s: probe_interval_s * 3.0,
            adversary: None,
            query_index: false,
        }
        .validate()
        .unwrap_or_else(|error| panic!("invalid simulation schedule: {error}"))
    }

    /// The schedule of the paper's PlanetLab deployment: four hours, one
    /// probe per node every five seconds, second half measured.
    pub fn paper_deployment() -> Self {
        Self::new(4.0 * 3600.0, 5.0)
    }

    /// Checks every invariant of the schedule and returns the config
    /// unchanged when it is runnable.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: non-positive duration,
    /// interval, track interval or timeout; an interval longer than the
    /// run; a measurement start outside `[0, duration)`; or a zero initial
    /// neighbour count.
    pub fn validate(self) -> Result<Self, ConfigError> {
        if !(self.duration_s.is_finite() && self.duration_s > 0.0) {
            return Err(ConfigError::NonPositiveDuration(self.duration_s));
        }
        if !(self.probe_interval_s.is_finite() && self.probe_interval_s > 0.0) {
            return Err(ConfigError::NonPositiveProbeInterval(self.probe_interval_s));
        }
        if self.probe_interval_s > self.duration_s {
            return Err(ConfigError::ProbeIntervalExceedsDuration {
                interval_s: self.probe_interval_s,
                duration_s: self.duration_s,
            });
        }
        if !(self.measurement_start_s.is_finite()
            && self.measurement_start_s >= 0.0
            && self.measurement_start_s < self.duration_s)
        {
            return Err(ConfigError::MeasurementStartOutOfRange {
                start_s: self.measurement_start_s,
                duration_s: self.duration_s,
            });
        }
        if !(self.track_interval_s.is_finite() && self.track_interval_s > 0.0) {
            return Err(ConfigError::NonPositiveTrackInterval(self.track_interval_s));
        }
        if !(self.probe_timeout_s.is_finite() && self.probe_timeout_s > 0.0) {
            return Err(ConfigError::NonPositiveProbeTimeout(self.probe_timeout_s));
        }
        if self.initial_neighbors == 0 {
            return Err(ConfigError::ZeroInitialNeighbors);
        }
        if let Some(adversary) = &self.adversary {
            adversary.validate()?;
        }
        Ok(self)
    }

    /// Sets the measurement start time.
    pub fn with_measurement_start(mut self, start_s: f64) -> Self {
        self.measurement_start_s = start_s;
        self
    }

    /// Sets the initial neighbour count.
    ///
    /// The setter records the value as given; a count of zero (nodes that
    /// know nobody can never probe) is reported as
    /// [`ConfigError::ZeroInitialNeighbors`] by [`SimConfig::validate`].
    /// (This setter used to silently round zero up to one; the
    /// workspace-wide builder unification moved the rule into `validate`.)
    pub fn with_initial_neighbors(mut self, count: usize) -> Self {
        self.initial_neighbors = count;
        self
    }

    /// Enables or disables gossip.
    pub fn with_gossip(mut self, gossip: bool) -> Self {
        self.gossip = gossip;
        self
    }

    /// Requests coordinate tracking for the given nodes.
    pub fn with_tracked_nodes(mut self, nodes: Vec<usize>, interval_s: f64) -> Self {
        self.track_nodes = nodes;
        self.track_interval_s = interval_s;
        self
    }

    /// Sets the protocol randomness seed.
    pub fn with_protocol_seed(mut self, seed: u64) -> Self {
        self.protocol_seed = seed;
        self
    }

    /// Sets the probe timeout.
    pub fn with_probe_timeout(mut self, timeout_s: f64) -> Self {
        self.probe_timeout_s = timeout_s;
        self
    }

    /// Makes a seeded random `fraction` of the population run `model`
    /// (see [`AdversaryConfig`] for the seed default).
    pub fn with_adversaries(mut self, fraction: f64, model: AdversaryModel) -> Self {
        self.adversary = Some(AdversaryConfig::new(fraction, model));
        self
    }

    /// Sets the full adversary assignment, including its RNG seed.
    pub fn with_adversary_config(mut self, adversary: AdversaryConfig) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Enables the coordinate query index (see [`SimConfig::query_index`]).
    pub fn with_query_index(mut self) -> Self {
        self.query_index = true;
        self
    }

    /// Length of the measurement window.
    pub fn measurement_duration_s(&self) -> f64 {
        self.duration_s - self.measurement_start_s
    }
}

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

/// A heap entry, ordered by `(time_s, insertion)`: earliest time first,
/// FIFO among equal times. Insertion numbers are unique, so the order is a
/// *strict* total order — every correct min-heap pops the exact same
/// sequence, which is what lets the heap layout change without touching
/// simulation results.
#[derive(Debug)]
struct QueueEntry<T> {
    time_s: f64,
    insertion: u64,
    item: T,
}

/// Heap arity. A 4-ary heap halves the tree depth of a binary heap and
/// packs each node's children into one or two cache lines; with tens of
/// thousands of in-flight events (large meshes push the queue well past
/// L2), the fewer, more local levels measurably cut per-pop cost.
const HEAP_ARITY: usize = 4;

/// A deterministic discrete-event queue: events pop in nondecreasing time
/// order, and events scheduled for the same instant pop in insertion order
/// (FIFO), so a simulation's behaviour is a pure function of its inputs.
#[derive(Debug, Default)]
pub struct EventQueue<T> {
    heap: Vec<QueueEntry<T>>,
    insertions: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            insertions: 0,
        }
    }

    /// Strict `(time, insertion)` ordering; `insertion` uniqueness means
    /// `Ordering::Equal` never decides between distinct entries.
    fn earlier(a: &QueueEntry<T>, b: &QueueEntry<T>) -> bool {
        match a.time_s.total_cmp(&b.time_s) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a.insertion < b.insertion,
        }
    }

    fn sift_up(&mut self, mut index: usize) {
        while index > 0 {
            let parent = (index - 1) / HEAP_ARITY;
            if Self::earlier(&self.heap[index], &self.heap[parent]) {
                self.heap.swap(index, parent);
                index = parent;
            } else {
                return;
            }
        }
    }

    fn sift_down(&mut self, mut index: usize) {
        let len = self.heap.len();
        loop {
            let first_child = index * HEAP_ARITY + 1;
            if first_child >= len {
                return;
            }
            let mut earliest = first_child;
            for child in first_child + 1..(first_child + HEAP_ARITY).min(len) {
                if Self::earlier(&self.heap[child], &self.heap[earliest]) {
                    earliest = child;
                }
            }
            if Self::earlier(&self.heap[earliest], &self.heap[index]) {
                self.heap.swap(index, earliest);
                index = earliest;
            } else {
                return;
            }
        }
    }

    /// Schedules `item` at `time_s`.
    ///
    /// # Panics
    ///
    /// Panics when `time_s` is not finite (an event at NaN-o'clock would
    /// never pop in a defined order).
    pub fn schedule(&mut self, time_s: f64, item: T) {
        assert!(time_s.is_finite(), "event times must be finite");
        let insertion = self.insertions;
        self.insertions += 1;
        self.heap.push(QueueEntry {
            time_s,
            insertion,
            item,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event as `(time, item)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let last = self.heap.pop()?;
        let entry = if self.heap.is_empty() {
            last
        } else {
            let entry = std::mem::replace(&mut self.heap[0], last);
            self.sift_down(0);
            entry
        };
        Some((entry.time_s, entry.item))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.first().map(|entry| entry.time_s)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

/// What the simulator does when the clock reaches an event.
///
/// Per-probe wire payloads live in an index-addressed slab of reusable
/// buffers ([`ExchangeSlot`]); events carry only the slab index plus plain
/// scalars, so scheduling and delivering a probe moves a few machine words
/// through the queue instead of cloning coordinates and messages per event.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SimEvent {
    /// A node's probe tick: pick the next round-robin target and launch the
    /// exchange. Reschedules itself every probe interval while the node is
    /// up.
    ProbeSend { src: usize },
    /// A probe reaches its target, which answers it (the reply may then be
    /// lost on the way back). The per-configuration requests live in the
    /// exchange slot.
    ProbeDeliver {
        src: usize,
        dst: usize,
        slot: usize,
        rtt_ms: f64,
        reverse_delay_s: f64,
        reverse_lost: bool,
    },
    /// A reply reaches the prober, which digests the observation held in the
    /// exchange slot.
    ResponseDeliver { src: usize, dst: usize, slot: usize },
    /// The prober's timer for one probe fires; a no-op when the reply
    /// arrived first.
    ProbeTimeout { src: usize, seq: u64 },
    /// Sample the tracked nodes' coordinates (Figure 7 trajectories).
    TrackSample,
    /// Apply the next scripted scenario action.
    ScenarioAction { index: usize },
}

/// One in-run network partition: packets crossing the boundary between
/// `members` and everyone else are dropped until `heal_at_s`.
#[derive(Clone)]
pub(crate) struct PartitionWindow {
    pub(crate) heal_at_s: f64,
    pub(crate) members: Vec<bool>,
}

/// One coordinate stack (a full set of [`StableNode`]s, one per host) run by
/// the simulator.
pub(crate) struct ConfigRun {
    pub(crate) name: String,
    pub(crate) config: NodeConfig,
    pub(crate) nodes: Vec<StableNode<usize>>,
    pub(crate) metrics: ConfigMetrics,
    /// Read-path index over published application coordinates, present when
    /// [`SimConfig::query_index`] is set. Fed from `ApplicationUpdated`
    /// events only — it never influences the schedule or the report.
    pub(crate) index: Option<CoordinateIndex<usize>>,
}

/// Reusable per-exchange wire buffers: one request and one response per
/// named configuration. Slots are recycled through a free list and the
/// vectors (including each response's gossip payload) keep their capacity
/// across reuses, so the steady-state exchange path performs no heap
/// allocation.
#[derive(Default)]
struct ExchangeSlot {
    requests: Vec<ProbeRequest<usize>>,
    responses: Vec<ProbeResponse<usize>>,
}

/// Everything that stays immutable while a simulation runs: the workload,
/// the schedule, the ground-truth topology and the scripted scenario.
/// Shared by reference with every worker thread of a parallel run.
pub(crate) struct SimEnv {
    pub(crate) workload: PlanetLabConfig,
    pub(crate) sim_config: SimConfig,
    pub(crate) topology: Topology,
    pub(crate) scenario: Scenario,
}

/// Protocol-level schedule state: who knows whom, liveness, link models and
/// the protocol RNG. Probe targets, link draws, gossip picks and scenario
/// effects are a pure function of this state plus the seeds — never of the
/// coordinate stacks — which is what lets the per-configuration workers and
/// the node-sharded executor replay the byte-identical schedule.
#[derive(Clone)]
pub(crate) struct ScheduleState {
    /// Per-link models, keyed by the packed `(lo << 32) | hi` node pair.
    /// FxHash keeps the one map lookup per exchange a few shifts and
    /// multiplies instead of SipHash rounds.
    pub(crate) links: FxHashMap<u64, LinkModel>,
    /// The shared link-model tuning, hoisted out of the per-exchange path.
    pub(crate) link_config: LinkModelConfig,
    pub(crate) neighbor_sets: Vec<Vec<usize>>,
    /// Per-node membership bitmaps mirroring `neighbor_sets`, so the
    /// per-gossip "already known?" check is one bit test instead of a scan
    /// of a growing vector.
    pub(crate) neighbor_bits: Vec<Vec<u64>>,
    pub(crate) round_robin: Vec<usize>,
    pub(crate) protocol_rng: StdRng,
    /// Liveness per node; down nodes neither probe nor answer.
    pub(crate) alive: Vec<bool>,
    /// Whether a future `ProbeSend` for the node is already in the queue
    /// (guards against double-scheduling across crash/restart cycles).
    pub(crate) probe_cycle_active: Vec<bool>,
    pub(crate) active_partitions: Vec<PartitionWindow>,
    /// Per-node Byzantine behaviour; `None` everywhere in honest runs.
    pub(crate) adversaries: Vec<Option<AdversaryModel>>,
    /// Dedicated RNG for adversary selection and per-reply draws, separate
    /// from `protocol_rng` and the link streams so an adversary-free config
    /// keeps its schedule byte-identical.
    pub(crate) adversary_rng: StdRng,
}

impl ScheduleState {
    /// True when `node` already has `peer` in its probe rotation.
    pub(crate) fn knows(&self, node: usize, peer: usize) -> bool {
        // bounds: peer < n, so peer / 64 < ceil(n / 64), the row's word count.
        self.neighbor_bits[node][peer / 64] >> (peer % 64) & 1 == 1
    }

    /// Adds `peer` to `node`'s probe rotation unless already present.
    pub(crate) fn neighbor_add(&mut self, node: usize, peer: usize) {
        if !self.knows(node, peer) {
            // bounds: peer < n, so peer / 64 < ceil(n / 64), the row's word count.
            self.neighbor_bits[node][peer / 64] |= 1 << (peer % 64);
            self.neighbor_sets[node].push(peer);
        }
    }

    /// Removes `peer` from `node`'s probe rotation if present.
    pub(crate) fn neighbor_remove(&mut self, node: usize, peer: usize) {
        if self.knows(node, peer) {
            // bounds: peer < n, so peer / 64 < ceil(n / 64), the row's word count.
            self.neighbor_bits[node][peer / 64] &= !(1 << (peer % 64));
            self.neighbor_sets[node].retain(|&member| member != peer);
        }
    }

    /// Replaces `node`'s probe rotation wholesale (joiner bootstrap).
    pub(crate) fn neighbor_replace(&mut self, node: usize, set: Vec<usize>) {
        for word in self.neighbor_bits[node].iter_mut() {
            *word = 0;
        }
        for &peer in &set {
            // bounds: peer < n, so peer / 64 < ceil(n / 64), the row's word count.
            self.neighbor_bits[node][peer / 64] |= 1 << (peer % 64);
        }
        self.neighbor_sets[node] = set;
    }

    /// Draws one full exchange over the (unordered) link `src`–`dst`: the
    /// observed RTT, the per-direction loss decisions and the asymmetric
    /// one-way delays. The ground-truth base RTT is derived from the
    /// topology **once per link lifetime**, inside the insertion closure —
    /// no `n × n` matrix is materialised, and the steady-state path is one
    /// FxHash lookup instead of a guaranteed cache miss into a
    /// hundreds-of-megabytes matrix row.
    pub(crate) fn sample_exchange(
        &mut self,
        env: &SimEnv,
        src: usize,
        dst: usize,
        time_s: f64,
    ) -> LinkDraw {
        let (lo, hi) = if src < dst { (src, dst) } else { (dst, src) };
        let key = ((lo as u64) << 32) | hi as u64;
        let seed = env
            .workload
            .seed()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key);
        let duration = env.sim_config.duration_s;
        let link_config = &self.link_config;
        let topology = &env.topology;
        let link = self.links.entry(key).or_insert_with(|| {
            LinkModel::new(
                topology.base_rtt_ms(lo, hi),
                link_config.clone(),
                duration,
                seed,
            )
        });
        let rtt_ms = link.sample(time_s);
        let forward_lost = link.sample_loss();
        let reverse_lost = link.sample_loss();
        let (lo_to_hi_ms, hi_to_lo_ms) = link.one_way_split(rtt_ms);
        // The split is stored in (low, high) index order; orient it to the
        // actual probe direction.
        let (forward_ms, reverse_ms) = if src == lo {
            (lo_to_hi_ms, hi_to_lo_ms)
        } else {
            (hi_to_lo_ms, lo_to_hi_ms)
        };
        LinkDraw {
            rtt_ms,
            forward_delay_s: forward_ms / 1_000.0,
            reverse_delay_s: reverse_ms / 1_000.0,
            forward_lost,
            reverse_lost,
        }
    }

    /// Draws the adversarial action for a reply about to be sent by `node`,
    /// or `None` when the node is honest. Called at probe-delivery time —
    /// the same point of the schedule in the serial loop and the sharded
    /// planner — and consumes randomness only for actual adversaries.
    pub(crate) fn sample_adversary(&mut self, node: usize) -> Option<AdversaryDraw> {
        let model = self.adversaries[node].as_ref()?;
        Some(model.draw(&mut self.adversary_rng))
    }

    /// True when an active partition separates `a` from `b` at `time_s`.
    pub(crate) fn partitioned(&self, a: usize, b: usize, time_s: f64) -> bool {
        self.active_partitions
            .iter()
            .any(|window| time_s < window.heal_at_s && window.members[a] != window.members[b])
    }
}

/// The mutable half of a simulation: the protocol-level [`ScheduleState`],
/// the per-configuration node stacks, and the reusable exchange buffers. A
/// multi-configuration run is parallelised by cloning the schedule state per
/// configuration — every worker then replays the byte-identical schedule,
/// because probe targets, link draws and gossip choices never depend on the
/// coordinate stacks.
pub(crate) struct EngineState {
    pub(crate) schedule: ScheduleState,
    pub(crate) runs: Vec<ConfigRun>,
    /// Per-run, per-node snapshot taken at the instant of a crash, consumed
    /// by a later restart.
    pub(crate) crash_snapshots: Vec<Vec<Option<NodeSnapshot<usize>>>>,
    slots: Vec<ExchangeSlot>,
    free_slots: Vec<usize>,
    /// Reusable engine-event buffer, cleared before every
    /// `handle_response_into` / `handle_timeout_into` call.
    events_scratch: Vec<Event<usize>>,
}

/// Runs one or more coordinate-stack configurations over a synthetic
/// workload, optionally under a churn [`Scenario`]. See the
/// [crate-level documentation](crate) for an example.
///
/// Multi-configuration runs execute the configurations **in parallel**, one
/// OS thread per named configuration (`std::thread::scope`), whenever their
/// eviction thresholds agree — the only knob through which a coordinate
/// stack can influence the shared probe schedule. The resulting
/// [`SimReport`] is byte-identical to a serial run (verified by the
/// regression suite; see [`Simulator::with_serial_execution`]).
pub struct Simulator {
    env: SimEnv,
    state: EngineState,
    force_serial: bool,
    threads: Option<usize>,
}

impl Simulator {
    /// Builds a simulator over `workload` with the given schedule, running
    /// every named configuration side by side.
    ///
    /// # Panics
    ///
    /// Panics when `configs` is empty, when two configurations share a name,
    /// when a tracked node index is out of range, when
    /// [`SimConfig::query_index`] is enabled for a coordinate space the
    /// index cannot key (more than eight dimensions), or when the schedule
    /// fails
    /// [`SimConfig::validate`].
    pub fn new(
        workload: PlanetLabConfig,
        sim_config: SimConfig,
        configs: Vec<(String, NodeConfig)>,
    ) -> Self {
        let sim_config = sim_config
            .validate()
            .unwrap_or_else(|error| panic!("invalid simulation schedule: {error}"));
        assert!(
            !configs.is_empty(),
            "at least one configuration is required"
        );
        {
            let mut names: Vec<&str> = configs.iter().map(|(n, _)| n.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(
                names.len(),
                configs.len(),
                "configuration names must be unique"
            );
        }
        let topology = workload.build_topology();
        let n = topology.len();
        for &tracked in &sim_config.track_nodes {
            assert!(tracked < n, "tracked node {tracked} out of range");
        }
        let mut protocol_rng = StdRng::seed_from_u64(sim_config.protocol_seed);

        // Initial neighbour sets: a ring of successors plus a few random
        // members, mimicking "a node knows at least one other node when it
        // enters the system" seeded from a membership file.
        let mut neighbor_sets: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut set = Vec::new();
            let want = sim_config.initial_neighbors.min(n - 1);
            let mut k = 1;
            while set.len() < want {
                let candidate = if set.len() < want / 2 || n <= 3 {
                    (i + k) % n
                } else {
                    protocol_rng.gen_range(0..n)
                };
                k += 1;
                if candidate != i && !set.contains(&candidate) {
                    set.push(candidate);
                }
            }
            neighbor_sets.push(set);
        }

        let measurement_duration = sim_config.measurement_duration_s();
        let run_count = configs.len();
        let query_index = sim_config.query_index;
        let runs = configs
            .into_iter()
            .map(|(name, config)| ConfigRun {
                name,
                nodes: (0..n).map(|_| StableNode::new(config.clone())).collect(),
                metrics: ConfigMetrics::new(n, measurement_duration),
                index: query_index.then(|| {
                    CoordinateIndex::new(QueryConfig {
                        dimensions: config.vivaldi.dimensions(),
                        ..QueryConfig::default()
                    })
                    .unwrap_or_else(|error| panic!("query index unavailable: {error}"))
                }),
                config,
            })
            .collect();

        let words = n.div_ceil(64);
        let mut neighbor_bits = vec![vec![0u64; words]; n];
        for (node, set) in neighbor_sets.iter().enumerate() {
            for &peer in set {
                // bounds: peer < n, so peer / 64 < words = ceil(n / 64).
                neighbor_bits[node][peer / 64] |= 1 << (peer % 64);
            }
        }

        let link_config = workload.link_config().clone();
        if let Err(error) = link_config.validate() {
            panic!("invalid link model: {error}");
        }

        // Seeded adversary assignment: the dedicated RNG exists either way
        // (cheap), but is only *consumed* when adversaries are configured.
        let mut adversary_rng = StdRng::seed_from_u64(
            sim_config
                .adversary
                .as_ref()
                .map(|adversary| adversary.seed)
                .unwrap_or(0xBAD_5EED),
        );
        let mut adversaries: Vec<Option<AdversaryModel>> = vec![None; n];
        if let Some(adversary) = &sim_config.adversary {
            let count = ((adversary.fraction * n as f64).round() as usize).min(n);
            let mut chosen = 0;
            while chosen < count {
                let candidate = adversary_rng.gen_range(0..n);
                if adversaries[candidate].is_none() {
                    adversaries[candidate] = Some(adversary.model.clone());
                    chosen += 1;
                }
            }
        }

        Simulator {
            env: SimEnv {
                workload,
                sim_config,
                topology,
                scenario: Scenario::new(),
            },
            state: EngineState {
                schedule: ScheduleState {
                    links: FxHashMap::default(),
                    link_config,
                    neighbor_sets,
                    neighbor_bits,
                    round_robin: vec![0; n],
                    protocol_rng,
                    alive: vec![true; n],
                    probe_cycle_active: vec![false; n],
                    active_partitions: Vec::new(),
                    adversaries,
                    adversary_rng,
                },
                runs,
                crash_snapshots: vec![vec![None; n]; run_count],
                slots: Vec::new(),
                free_slots: Vec::new(),
                events_scratch: Vec::new(),
            },
            force_serial: false,
            threads: None,
        }
    }

    /// Attaches a churn scenario to the run. Applied identically to every
    /// named configuration.
    ///
    /// # Panics
    ///
    /// Panics when the scenario references a node index outside the
    /// workload.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        if let Some(max) = scenario.max_node() {
            assert!(
                max < self.env.topology.len(),
                "scenario references node {max}, workload has {} nodes",
                self.env.topology.len()
            );
        }
        self.env.scenario = scenario;
        self
    }

    /// Forces single-threaded execution even for multi-configuration runs.
    ///
    /// The parallel per-configuration path produces a byte-identical
    /// [`SimReport`] (each configuration's schedule and observation stream
    /// is independent, and the regression suite asserts equality); this
    /// knob exists so tests and debugging sessions can compare the two
    /// execution modes directly.
    pub fn with_serial_execution(mut self, serial: bool) -> Self {
        self.force_serial = serial;
        self
    }

    /// Shards this simulation's event processing across `threads` worker
    /// threads (node-sharded: engine work for node `i` runs on worker
    /// `i % threads`), producing a [`SimReport`] byte-identical to serial
    /// execution.
    ///
    /// The schedule itself (probe targets, link draws, losses, gossip,
    /// scenario effects) is always replayed serially — it is cheap and
    /// inherently sequential through the protocol RNG — while the expensive
    /// engine work (coordinate updates, filters, response digestion) fans
    /// out. `threads = 1` still exercises the plan/execute split on a single
    /// worker. Requires uniform eviction thresholds across configurations;
    /// otherwise, and under [`Simulator::with_serial_execution`], the run
    /// falls back to the engine-driven serial path.
    ///
    /// # Panics
    ///
    /// Panics when `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = Some(threads);
        self
    }

    /// The generated topology (ground-truth base RTTs).
    pub fn topology(&self) -> &Topology {
        &self.env.topology
    }

    /// The named configuration's coordinate query index — the read path
    /// over the application coordinates its engines have published so far.
    /// Populated during [`Simulator::run`]; query it afterwards (or between
    /// staged runs) for k-nearest-node, closest-replica and centroid
    /// answers. Returns `None` for an unknown name or when
    /// [`SimConfig::query_index`] was not enabled.
    ///
    /// A node appears in the index once it publishes its first application
    /// coordinate update and keeps its last published coordinate through
    /// crashes and restarts — the index mirrors a lookup service that
    /// serves the last-known coordinate of an unreachable node until it
    /// re-announces.
    pub fn query_index(&self, name: &str) -> Option<&CoordinateIndex<usize>> {
        self.state
            .runs
            .iter()
            .find(|run| run.name == name)
            .and_then(|run| run.index.as_ref())
    }

    /// Indices of the nodes made adversarial by the static
    /// [`SimConfig::adversary`] assignment, in ascending order. Scenario
    /// scripts can change assignments later; this reflects the state at
    /// construction, which is what experiments need to exclude attackers
    /// from victim-side accuracy metrics.
    pub fn adversaries(&self) -> Vec<usize> {
        self.state
            .schedule
            .adversaries
            .iter()
            .enumerate()
            .filter_map(|(node, model)| model.as_ref().map(|_| node))
            .collect()
    }

    /// Runs the simulation to completion and returns the collected metrics.
    ///
    /// A run with several named configurations whose eviction thresholds
    /// agree executes one worker thread per configuration; otherwise (or
    /// after [`Simulator::with_serial_execution`]) all configurations are
    /// interleaved on the calling thread. Both paths produce the identical
    /// report.
    pub fn run(&mut self) -> SimReport {
        // The only way a coordinate stack can influence the shared probe
        // schedule is eviction. With matching thresholds every configuration
        // evicts on the same timeout, so per-configuration workers replay
        // the byte-identical schedule; with differing thresholds the serial
        // path's unanimity rule is required.
        let uniform_eviction = self.state.runs.windows(2).all(|pair| {
            pair[0].config.max_consecutive_losses == pair[1].config.max_consecutive_losses
        });
        if let Some(threads) = self
            .threads
            .filter(|_| uniform_eviction && !self.force_serial)
        {
            crate::shard::run_sharded(&self.env, &mut self.state, threads);
        } else if self.state.runs.len() > 1 && uniform_eviction && !self.force_serial {
            let env = &self.env;
            let state = std::mem::replace(&mut self.state, EngineState::placeholder());
            let workers = state.split_per_config();
            let finished: Vec<EngineState> = std::thread::scope(|scope| {
                let handles: Vec<_> = workers
                    .into_iter()
                    .map(|mut worker| {
                        scope.spawn(move || {
                            worker.run_to_completion(env);
                            worker
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // nc-lint: allow(panic) — a panicking worker already
                    // poisoned the run; re-raising it here is the contract.
                    .map(|handle| handle.join().expect("simulation worker panicked"))
                    .collect()
            });
            self.state = EngineState::merge(finished);
        } else {
            self.state.run_to_completion(&self.env);
        }

        // Results merge in the stable configuration order (the report's
        // serialization sorts by name), so parallel and serial runs encode
        // identically.
        let mut configs = FxHashMap::default();
        for run in &self.state.runs {
            configs.insert(run.name.clone(), run.metrics.clone());
        }
        SimReport::new(
            configs,
            self.env.sim_config.duration_s,
            self.env.sim_config.measurement_start_s,
        )
    }
}

/// Feeds a run's optional coordinate query index from one engine event
/// stream: every `ApplicationUpdated` upserts the publishing node's new
/// application coordinate. Both executors (the serial event loop and the
/// node-sharded planner) call this from their response-digest step — the
/// only place the engines publish coordinates — so the final index contents
/// are identical across execution modes.
pub(crate) fn feed_query_index(
    index: Option<&mut CoordinateIndex<usize>>,
    node: usize,
    events: &[Event<usize>],
) {
    let Some(index) = index else {
        return;
    };
    for event in events {
        if let Event::ApplicationUpdated { update } = event {
            // The engine only publishes finite coordinates of the
            // dimensionality the index was sized for, so this cannot fail.
            let _ = index.update(node, &update.current);
        }
    }
}

/// Folds one engine event stream into a node's metric accumulators.
/// Losses are counted over the whole run (a dead link produces nothing
/// to gate a measurement window on); everything else respects the
/// warm-up exclusion.
pub(crate) fn fold_events(
    metrics: &mut NodeMetrics,
    time_s: f64,
    measuring: bool,
    events: &[Event<usize>],
) {
    for event in events {
        match event {
            Event::SystemMoved {
                displacement_ms,
                relative_error,
                application_relative_error,
                ..
            } if measuring => {
                metrics.system_errors.push((time_s, *relative_error));
                metrics
                    .application_errors
                    .push((time_s, *application_relative_error));
                if *displacement_ms > 0.0 {
                    metrics
                        .system_displacements
                        .push((time_s, *displacement_ms));
                }
            }
            Event::ApplicationUpdated { update } if measuring => {
                metrics
                    .application_displacements
                    .push((time_s, update.displacement_ms));
            }
            Event::ProbeLost { .. } => {
                metrics.probes_lost += 1;
            }
            Event::ResponseIgnored { .. } => {
                metrics.responses_ignored += 1;
            }
            Event::ObservationRejected { .. } => {
                metrics.observations_rejected += 1;
            }
            Event::NeighborEvicted { .. } => {
                metrics.neighbors_evicted += 1;
            }
            _ => {}
        }
    }
}

impl EngineState {
    /// An empty state used only as the `mem::replace` placeholder while the
    /// real state is split across worker threads.
    fn placeholder() -> Self {
        EngineState {
            schedule: ScheduleState {
                links: FxHashMap::default(),
                link_config: LinkModelConfig::default(),
                neighbor_sets: Vec::new(),
                neighbor_bits: Vec::new(),
                round_robin: Vec::new(),
                protocol_rng: StdRng::seed_from_u64(0),
                alive: Vec::new(),
                probe_cycle_active: Vec::new(),
                active_partitions: Vec::new(),
                adversaries: Vec::new(),
                adversary_rng: StdRng::seed_from_u64(0),
            },
            runs: Vec::new(),
            crash_snapshots: Vec::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            events_scratch: Vec::new(),
        }
    }

    /// Splits a multi-configuration state into one single-configuration
    /// worker per run. Schedule state (neighbour sets, RNG, liveness) is
    /// cloned — it is a pure function of the seeds and the scenario, never
    /// of the coordinate stacks — while the node stacks move.
    fn split_per_config(self) -> Vec<EngineState> {
        let EngineState {
            schedule,
            runs,
            crash_snapshots,
            ..
        } = self;
        runs.into_iter()
            .zip(crash_snapshots)
            .map(|(run, snapshots)| EngineState {
                schedule: schedule.clone(),
                runs: vec![run],
                crash_snapshots: vec![snapshots],
                slots: Vec::new(),
                free_slots: Vec::new(),
                events_scratch: Vec::new(),
            })
            .collect()
    }

    /// Reassembles the post-run state from per-configuration workers: the
    /// runs concatenate in their original order; the schedule state is taken
    /// from the first worker (every worker ends with the identical
    /// schedule).
    fn merge(mut workers: Vec<EngineState>) -> EngineState {
        let mut merged = workers.remove(0);
        for worker in workers {
            merged.runs.extend(worker.runs);
            merged.crash_snapshots.extend(worker.crash_snapshots);
        }
        merged
    }

    /// Pops a free exchange slot or grows the slab by one.
    fn acquire_slot(&mut self) -> usize {
        match self.free_slots.pop() {
            Some(index) => index,
            None => {
                self.slots.push(ExchangeSlot::default());
                self.slots.len() - 1
            }
        }
    }

    /// Returns a slot (and its buffers' capacity) to the free list.
    fn release_slot(&mut self, index: usize) {
        self.free_slots.push(index);
    }

    /// Drives the event loop from `t = 0` to the configured duration.
    fn run_to_completion(&mut self, env: &SimEnv) {
        let duration = env.sim_config.duration_s;
        let mut queue: EventQueue<SimEvent> = EventQueue::new();

        for &node in env.scenario.initially_down() {
            self.schedule.alive[node] = false;
        }
        for (index, event) in env.scenario.events().iter().enumerate() {
            if event.at_s < duration {
                queue.schedule(event.at_s, SimEvent::ScenarioAction { index });
            }
        }
        for src in 0..env.topology.len() {
            if self.schedule.alive[src] {
                self.schedule.probe_cycle_active[src] = true;
                queue.schedule(0.0, SimEvent::ProbeSend { src });
            }
        }
        if !env.sim_config.track_nodes.is_empty() {
            queue.schedule(0.0, SimEvent::TrackSample);
        }

        while let Some((now, event)) = queue.pop() {
            if now >= duration {
                break;
            }
            match event {
                SimEvent::ProbeSend { src } => self.on_probe_send(env, now, src, &mut queue),
                SimEvent::ProbeDeliver {
                    src,
                    dst,
                    slot,
                    rtt_ms,
                    reverse_delay_s,
                    reverse_lost,
                } => self.on_probe_deliver(
                    now,
                    src,
                    dst,
                    slot,
                    rtt_ms,
                    reverse_delay_s,
                    reverse_lost,
                    &mut queue,
                ),
                SimEvent::ResponseDeliver { src, dst, slot } => {
                    self.on_response_deliver(env, now, src, dst, slot)
                }
                SimEvent::ProbeTimeout { src, seq } => self.on_probe_timeout(src, seq),
                SimEvent::TrackSample => self.on_track_sample(env, now, &mut queue),
                SimEvent::ScenarioAction { index } => self.on_scenario(env, now, index, &mut queue),
            }
        }
    }

    fn on_probe_send(
        &mut self,
        env: &SimEnv,
        now: f64,
        src: usize,
        queue: &mut EventQueue<SimEvent>,
    ) {
        // Healed partitions are dead weight for every later crossing check;
        // prune them as the clock passes their heal time.
        self.schedule
            .active_partitions
            .retain(|window| window.heal_at_s > now);
        if !self.schedule.alive[src] {
            // The cycle dies with the node; a restart schedules a new one.
            self.schedule.probe_cycle_active[src] = false;
            return;
        }
        let next_tick = now + env.sim_config.probe_interval_s;
        if next_tick < env.sim_config.duration_s {
            queue.schedule(next_tick, SimEvent::ProbeSend { src });
        } else {
            self.schedule.probe_cycle_active[src] = false;
        }

        let neighbor_count = self.schedule.neighbor_sets[src].len();
        if neighbor_count == 0 {
            return;
        }
        // bounds: the cursor is reduced modulo neighbor_count == the set's len.
        let dst = self.schedule.neighbor_sets[src][self.schedule.round_robin[src] % neighbor_count];
        self.schedule.round_robin[src] = self.schedule.round_robin[src].wrapping_add(1);
        if dst == src {
            return;
        }

        // One raw observation shared by every configuration; the requests go
        // into a reused exchange slot, not a fresh allocation.
        let draw = self.schedule.sample_exchange(env, src, dst, now);
        let now_ms = (now * 1_000.0) as u64;
        let slot = self.acquire_slot();
        let seq = {
            let slot_buffers = &mut self.slots[slot];
            slot_buffers.requests.clear();
            for run in self.runs.iter_mut() {
                slot_buffers
                    .requests
                    .push(run.nodes[src].probe_request_for(dst, now_ms));
                run.metrics.nodes[src].probes_sent += 1;
            }
            slot_buffers.requests[0].seq
        };

        // The timer is armed regardless of the probe's fate — exactly what a
        // deployed prober would do.
        queue.schedule(
            now + env.sim_config.probe_timeout_s,
            SimEvent::ProbeTimeout { src, seq },
        );

        if draw.forward_lost || self.schedule.partitioned(src, dst, now) {
            self.release_slot(slot);
            return;
        }
        queue.schedule(
            now + draw.forward_delay_s,
            SimEvent::ProbeDeliver {
                src,
                dst,
                slot,
                rtt_ms: draw.rtt_ms,
                reverse_delay_s: draw.reverse_delay_s,
                reverse_lost: draw.reverse_lost,
            },
        );
    }

    #[allow(clippy::too_many_arguments)] // one event's full wire context; a struct would be unpacked on the next line
    fn on_probe_deliver(
        &mut self,
        now: f64,
        src: usize,
        dst: usize,
        slot: usize,
        rtt_ms: f64,
        reverse_delay_s: f64,
        reverse_lost: bool,
        queue: &mut EventQueue<SimEvent>,
    ) {
        // A crash between send and delivery silently eats the probe; the
        // prober's timeout reports the loss.
        if !self.schedule.alive[dst] || self.schedule.partitioned(src, dst, now) {
            self.release_slot(slot);
            return;
        }
        // An adversarial responder corrupts the reply here, in the shared
        // schedule: delay attacks stretch both the observed RTT and the
        // reply's in-flight time (a held-back reply really is late and can
        // cross the prober's timeout), coordinate lies are drawn once and
        // applied identically to every configuration's response below. The
        // sharded planner draws at the exact same point of the schedule.
        let adversary = self.schedule.sample_adversary(dst);
        let (rtt_ms, reverse_delay_s) = match &adversary {
            Some(draw) => (
                rtt_ms + draw.extra_delay_ms,
                reverse_delay_s + draw.extra_delay_ms / 1_000.0,
            ),
            None => (rtt_ms, reverse_delay_s),
        };
        let lie = adversary.and_then(|draw| draw.lie);
        {
            let slot_buffers = &mut self.slots[slot];
            for (index, run) in self.runs.iter_mut().enumerate() {
                // First uses of a slot grow the response vector; afterwards
                // the existing message (and its gossip buffer) is rewritten
                // in place.
                if slot_buffers.responses.len() <= index {
                    let response = run.nodes[dst].respond(&slot_buffers.requests[index]);
                    slot_buffers.responses.push(response);
                } else {
                    run.nodes[dst].respond_into(
                        &slot_buffers.requests[index],
                        &mut slot_buffers.responses[index],
                    );
                }
                slot_buffers.responses[index].rtt_ms = rtt_ms;
                if let Some(lie) = &lie {
                    apply_lie(&mut slot_buffers.responses[index], lie);
                }
            }
        }
        if reverse_lost {
            self.release_slot(slot);
            return;
        }
        queue.schedule(
            now + reverse_delay_s,
            SimEvent::ResponseDeliver { src, dst, slot },
        );
    }

    fn on_response_deliver(&mut self, env: &SimEnv, now: f64, src: usize, dst: usize, slot: usize) {
        // A reply reaching a node that crashed meanwhile is dropped; the
        // pending entry survives in its crash snapshot and is expired as
        // lost if the node restarts. A reply crossing a partition that
        // activated while it was in flight is dropped too — every packet
        // across the boundary, in both directions, is lost until the heal.
        if !self.schedule.alive[src] || self.schedule.partitioned(src, dst, now) {
            self.release_slot(slot);
            return;
        }
        let measuring = now >= env.sim_config.measurement_start_s;
        {
            let EngineState {
                runs,
                slots,
                events_scratch,
                ..
            } = self;
            for (run, response) in runs.iter_mut().zip(slots[slot].responses.iter()) {
                events_scratch.clear();
                run.nodes[src].handle_response_into(response, events_scratch);
                // A reply the engine refused to correlate (it raced its own
                // timeout, or the peer was evicted meanwhile) is not an
                // observation — it was already accounted as a loss.
                let ignored = events_scratch
                    .iter()
                    .any(|event| matches!(event, Event::ResponseIgnored { .. }));
                let node_metrics = &mut run.metrics.nodes[src];
                if !ignored {
                    node_metrics.responses_received += 1;
                    if measuring {
                        node_metrics.observations += 1;
                    }
                }
                fold_events(node_metrics, now, measuring, events_scratch);
                feed_query_index(run.index.as_mut(), src, events_scratch);
            }
        }
        self.release_slot(slot);

        // Gossip: the probed node hands back one address from its own
        // neighbour set; the prober adds it. Identical across
        // configurations because it only affects the probe schedule.
        if env.sim_config.gossip && !self.schedule.neighbor_sets[dst].is_empty() {
            let idx = self
                .schedule
                .protocol_rng
                .gen_range(0..self.schedule.neighbor_sets[dst].len());
            let learned = self.schedule.neighbor_sets[dst][idx];
            if learned != src {
                self.schedule.neighbor_add(src, learned);
            }
        }
    }

    fn on_probe_timeout(&mut self, src: usize, seq: u64) {
        if !self.schedule.alive[src] {
            return;
        }
        // When a configuration's engine evicts the unresponsive peer
        // (`NodeConfig::max_consecutive_losses`), the shared probe rotation
        // honours it — but only once *every* configuration has evicted, so
        // the schedule stays identical across side-by-side stacks. With
        // matching eviction thresholds (the usual case) they all fire on
        // the same timeout.
        let mut target = None;
        let mut evicted_by_all = true;
        {
            let EngineState {
                runs,
                events_scratch,
                ..
            } = self;
            for run in runs.iter_mut() {
                events_scratch.clear();
                run.nodes[src].handle_timeout_into(seq, events_scratch);
                let mut evicted_here = false;
                for event in events_scratch.iter() {
                    match event {
                        Event::ProbeLost { id, .. } => target = Some(*id),
                        Event::NeighborEvicted { .. } => evicted_here = true,
                        _ => {}
                    }
                }
                fold_events(&mut run.metrics.nodes[src], 0.0, false, events_scratch);
                evicted_by_all &= evicted_here;
            }
        }
        if evicted_by_all {
            if let Some(dst) = target {
                self.schedule.neighbor_remove(src, dst);
            }
        }
    }

    fn on_track_sample(&mut self, env: &SimEnv, now: f64, queue: &mut EventQueue<SimEvent>) {
        for run in &mut self.runs {
            for &node in &env.sim_config.track_nodes {
                run.metrics.tracked.push(TrackedCoordinate {
                    time_s: now,
                    node,
                    system: run.nodes[node].system_coordinate().clone(),
                    application: run.nodes[node].application_coordinate().clone(),
                });
            }
        }
        let next = now + env.sim_config.track_interval_s;
        if next < env.sim_config.duration_s {
            queue.schedule(next, SimEvent::TrackSample);
        }
    }

    fn on_scenario(
        &mut self,
        env: &SimEnv,
        now: f64,
        index: usize,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let action = env.scenario.events()[index].action.clone();
        for run in &mut self.runs {
            run.metrics.scenario_ops += 1;
        }
        match action {
            ScenarioAction::Join { nodes } => {
                for node in nodes {
                    self.bring_up(env, now, node, true, queue);
                }
            }
            ScenarioAction::Leave { nodes } => {
                for node in nodes {
                    self.schedule.alive[node] = false;
                    // A graceful leaver says goodbye: every live node drops
                    // it from its probe rotation immediately.
                    for other in 0..self.schedule.neighbor_sets.len() {
                        self.schedule.neighbor_remove(other, node);
                    }
                }
            }
            ScenarioAction::Crash { nodes } => {
                for node in nodes {
                    if !self.schedule.alive[node] {
                        continue;
                    }
                    self.schedule.alive[node] = false;
                    for run_index in 0..self.runs.len() {
                        let snapshot = self.runs[run_index].nodes[node].snapshot();
                        self.crash_snapshots[run_index][node] = Some(snapshot);
                    }
                }
            }
            ScenarioAction::Restart { nodes } => {
                for node in nodes {
                    self.bring_up(env, now, node, false, queue);
                }
            }
            ScenarioAction::Partition { group, heal_at_s } => {
                self.start_partition(env, &group, heal_at_s);
            }
            ScenarioAction::PartitionRegions { regions, heal_at_s } => {
                let group: Vec<usize> = regions
                    .iter()
                    .flat_map(|&region| env.topology.nodes_in_region(region))
                    .collect();
                self.start_partition(env, &group, heal_at_s);
            }
            ScenarioAction::SetAdversary { nodes, model } => {
                for node in nodes {
                    self.schedule.adversaries[node] = model.clone();
                }
            }
        }
    }

    fn start_partition(&mut self, env: &SimEnv, group: &[usize], heal_at_s: f64) {
        let mut members = vec![false; env.topology.len()];
        for &node in group {
            members[node] = true;
        }
        self.schedule
            .active_partitions
            .push(PartitionWindow { heal_at_s, members });
    }

    /// Brings a down node back up: fresh engines on a join, crash-snapshot
    /// restores on a restart. Either way its probe cycle resumes
    /// immediately and any probes outstanding at the crash are expired as
    /// lost (a rebooted daemon stops waiting for pre-crash replies).
    fn bring_up(
        &mut self,
        env: &SimEnv,
        now: f64,
        node: usize,
        fresh: bool,
        queue: &mut EventQueue<SimEvent>,
    ) {
        if self.schedule.alive[node] {
            return;
        }
        self.schedule.alive[node] = true;
        let now_ms = (now * 1_000.0) as u64;
        // Expiring the probes that were outstanding at the crash can push a
        // loss streak over the eviction threshold. Those evictions must reach
        // the shared probe rotation under the same unanimity rule as timeout
        // evictions — otherwise the revived node keeps probing a peer every
        // engine already evicted, and its losses diverge from a deployment.
        let mut evicted_by_all: Option<Vec<usize>> = None;
        for run_index in 0..self.runs.len() {
            let snapshot = if fresh {
                None
            } else {
                self.crash_snapshots[run_index][node].take()
            };
            let run = &mut self.runs[run_index];
            let mut revived = match snapshot {
                Some(snapshot) => StableNode::restore(run.config.clone(), &snapshot)
                    // nc-lint: allow(panic) — restoring a snapshot this run
                    // took under the same config cannot fail; it is a sim bug.
                    .expect("a crash snapshot restores under its own configuration"),
                None => StableNode::new(run.config.clone()),
            };
            let events = revived.expire_pending(now_ms, 0);
            let evicted_here: Vec<usize> = events
                .iter()
                .filter_map(|event| match event {
                    Event::NeighborEvicted { id } => Some(*id),
                    _ => None,
                })
                .collect();
            evicted_by_all = Some(match evicted_by_all {
                None => evicted_here,
                Some(previous) => previous
                    .into_iter()
                    .filter(|id| evicted_here.contains(id))
                    .collect(),
            });
            fold_events(&mut run.metrics.nodes[node], now, false, &events);
            run.nodes[node] = revived;
        }
        for target in evicted_by_all.unwrap_or_default() {
            self.schedule.neighbor_remove(node, target);
        }
        if fresh {
            // A joiner bootstraps a fresh neighbour set of live peers, and
            // announces itself to them (the membership-file introduction of
            // the paper's deployments) so the mesh starts probing it back;
            // gossip spreads its address from there.
            self.schedule.round_robin[node] = 0;
            let n = env.topology.len();
            let want = env.sim_config.initial_neighbors.min(
                self.schedule
                    .alive
                    .iter()
                    .filter(|&&up| up)
                    .count()
                    .saturating_sub(1),
            );
            let mut set = Vec::new();
            let mut attempts = 0;
            while set.len() < want && attempts < n * 16 {
                attempts += 1;
                let candidate = self.schedule.protocol_rng.gen_range(0..n);
                if candidate != node && self.schedule.alive[candidate] && !set.contains(&candidate)
                {
                    set.push(candidate);
                }
            }
            for &seed in &set {
                self.schedule.neighbor_add(seed, node);
            }
            self.schedule.neighbor_replace(node, set);
        }
        if !self.schedule.probe_cycle_active[node] {
            self.schedule.probe_cycle_active[node] = true;
            queue.schedule(now, SimEvent::ProbeSend { src: node });
        }
    }
}

/// One sampled exchange over a link.
pub(crate) struct LinkDraw {
    pub(crate) rtt_ms: f64,
    pub(crate) forward_delay_s: f64,
    pub(crate) reverse_delay_s: f64,
    pub(crate) forward_lost: bool,
    pub(crate) reverse_lost: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkmodel::LinkModelConfig;
    use stable_nc::NodeConfig;

    fn quick_sim(configs: Vec<(String, NodeConfig)>) -> SimReport {
        let workload = PlanetLabConfig::small(12).with_seed(3);
        let sim_config = SimConfig::new(400.0, 5.0)
            .with_measurement_start(200.0)
            .with_initial_neighbors(4);
        Simulator::new(workload, sim_config, configs).run()
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn requires_a_configuration() {
        let _ = Simulator::new(PlanetLabConfig::small(4), SimConfig::new(10.0, 1.0), vec![]);
    }

    #[test]
    #[should_panic(expected = "names must be unique")]
    fn rejects_duplicate_names() {
        let _ = Simulator::new(
            PlanetLabConfig::small(4),
            SimConfig::new(10.0, 1.0),
            vec![
                ("a".into(), NodeConfig::paper_defaults()),
                ("a".into(), NodeConfig::original_vivaldi()),
            ],
        );
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        let good = SimConfig::new(100.0, 5.0);
        assert!(good.clone().validate().is_ok());
        let mut bad = good.clone();
        bad.duration_s = 0.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::NonPositiveDuration(_))
        ));
        let mut bad = good.clone();
        bad.probe_interval_s = f64::NAN;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::NonPositiveProbeInterval(_))
        ));
        let mut bad = good.clone();
        bad.probe_interval_s = 500.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::ProbeIntervalExceedsDuration { .. })
        ));
        let mut bad = good.clone();
        bad.measurement_start_s = 100.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::MeasurementStartOutOfRange { .. })
        ));
        let mut bad = good.clone();
        bad.track_interval_s = -1.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::NonPositiveTrackInterval(_))
        ));
        let mut bad = good.clone();
        bad.probe_timeout_s = 0.0;
        let error = bad.validate().unwrap_err();
        assert!(matches!(error, ConfigError::NonPositiveProbeTimeout(_)));
        assert!(!error.to_string().is_empty());
    }

    #[test]
    fn validate_rejects_each_bad_adversary_field() {
        let good = SimConfig::new(100.0, 5.0);
        let liar = AdversaryModel::CoordinateLiar {
            displacement_ms: 1_000.0,
            inflate: 1.0,
            error_estimate: 0.01,
        };
        assert!(good
            .clone()
            .with_adversary_config(AdversaryConfig::new(0.25, liar.clone()))
            .validate()
            .is_ok());

        let mut bad = good.clone();
        bad.adversary = Some(AdversaryConfig::new(0.25, liar.clone()));
        bad.adversary.as_mut().unwrap().fraction = 1.5;
        let error = bad.validate().unwrap_err();
        assert!(matches!(error, ConfigError::AdversaryFractionOutOfRange(_)));
        assert!(!error.to_string().is_empty());

        let mut bad = good.clone();
        bad.adversary = Some(AdversaryConfig::new(
            0.25,
            AdversaryModel::CoordinateLiar {
                displacement_ms: f64::NAN,
                inflate: 1.0,
                error_estimate: 0.01,
            },
        ));
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::AdversaryMagnitudeNotFinite(_))
        ));

        let mut bad = good.clone();
        bad.adversary = Some(AdversaryConfig::new(
            0.25,
            AdversaryModel::CoordinateLiar {
                displacement_ms: 1_000.0,
                inflate: 1.0,
                error_estimate: 0.0,
            },
        ));
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::AdversaryErrorEstimateOutOfRange(_))
        ));

        let mut bad = good.clone();
        bad.adversary = Some(AdversaryConfig::new(
            0.25,
            AdversaryModel::DelayAttacker {
                extra_delay_ms: f64::INFINITY,
            },
        ));
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::AdversaryMagnitudeNotFinite(_))
        ));
    }

    #[test]
    #[should_panic(expected = "invalid simulation schedule")]
    fn constructor_panics_through_validate() {
        let _ = SimConfig::new(0.0, 1.0);
    }

    #[test]
    fn event_queue_pops_in_time_then_fifo_order() {
        let mut queue: EventQueue<&str> = EventQueue::new();
        queue.schedule(5.0, "late");
        queue.schedule(1.0, "early-first");
        queue.schedule(1.0, "early-second");
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.peek_time(), Some(1.0));
        assert_eq!(queue.pop(), Some((1.0, "early-first")));
        assert_eq!(queue.pop(), Some((1.0, "early-second")));
        assert_eq!(queue.pop(), Some((5.0, "late")));
        assert!(queue.is_empty());
        assert_eq!(queue.pop(), None);
    }

    #[test]
    #[should_panic(expected = "event times must be finite")]
    fn event_queue_rejects_nan_times() {
        let mut queue: EventQueue<u8> = EventQueue::new();
        queue.schedule(f64::NAN, 0);
    }

    #[test]
    fn collects_metrics_for_every_node() {
        let report = quick_sim(vec![("mp".into(), NodeConfig::paper_defaults())]);
        let metrics = report.config("mp").unwrap();
        assert_eq!(metrics.nodes.len(), 12);
        let with_samples = metrics
            .nodes
            .iter()
            .filter(|n| !n.system_errors.is_empty())
            .count();
        assert!(
            with_samples >= 10,
            "most nodes should have measured samples"
        );
        assert!(metrics.aggregate_instability() > 0.0);
    }

    #[test]
    fn embedding_error_becomes_reasonable() {
        let report = quick_sim(vec![("mp".into(), NodeConfig::paper_defaults())]);
        let metrics = report.config("mp").unwrap();
        let median = metrics.median_of_median_relative_error();
        assert!(
            median < 0.6,
            "median relative error should drop well below 1.0, got {median:.2}"
        );
    }

    #[test]
    fn filtered_stack_is_more_stable_than_raw() {
        let report = quick_sim(vec![
            ("mp".into(), NodeConfig::paper_defaults()),
            ("raw".into(), NodeConfig::original_vivaldi()),
        ]);
        let mp = report.config("mp").unwrap();
        let raw = report.config("raw").unwrap();
        assert!(
            mp.aggregate_instability() < raw.aggregate_instability(),
            "MP filter should stabilise the space ({} vs {})",
            mp.aggregate_instability(),
            raw.aggregate_instability()
        );
    }

    #[test]
    fn tracking_produces_trajectories() {
        let workload = PlanetLabConfig::small(6).with_seed(5);
        let sim_config = SimConfig::new(120.0, 5.0)
            .with_measurement_start(60.0)
            .with_tracked_nodes(vec![0, 3], 20.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .run();
        let tracked = &report.config("mp").unwrap().tracked;
        assert!(!tracked.is_empty());
        assert!(tracked.iter().all(|t| t.node == 0 || t.node == 3));
    }

    #[test]
    fn gossip_grows_neighbor_sets() {
        let workload = PlanetLabConfig::small(16).with_seed(9);
        let sim_config = SimConfig::new(300.0, 5.0)
            .with_initial_neighbors(2)
            .with_measurement_start(150.0);
        let mut sim = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        );
        let before: usize = sim
            .state
            .schedule
            .neighbor_sets
            .iter()
            .map(|s| s.len())
            .sum();
        sim.run();
        let after: usize = sim
            .state
            .schedule
            .neighbor_sets
            .iter()
            .map(|s| s.len())
            .sum();
        assert!(
            after > before,
            "gossip should add neighbours ({before} -> {after})"
        );
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let run = || {
            let report = quick_sim(vec![("mp".into(), NodeConfig::paper_defaults())]);
            report
                .config("mp")
                .unwrap()
                .median_of_median_relative_error()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sim_config_accessors() {
        let c = SimConfig::paper_deployment();
        assert_eq!(c.duration_s, 4.0 * 3600.0);
        assert_eq!(c.probe_interval_s, 5.0);
        assert_eq!(c.measurement_duration_s(), 2.0 * 3600.0);
        assert_eq!(c.probe_timeout_s, 15.0);
    }

    #[test]
    fn lossy_links_report_probe_losses_without_stalling() {
        let workload = PlanetLabConfig::small(10)
            .with_seed(4)
            .with_link_config(LinkModelConfig::default().with_loss_probability(0.05));
        let sim_config = SimConfig::new(600.0, 5.0)
            .with_measurement_start(100.0)
            .with_initial_neighbors(4);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .run();
        let metrics = report.config("mp").unwrap();
        assert!(
            metrics.total_probes_lost() > 0,
            "5% loss must produce ProbeLost events"
        );
        // The schedule never stalls: observations keep flowing and the
        // embedding still converges.
        let observed: u64 = metrics.nodes.iter().map(|n| n.observations).sum();
        assert!(observed > 500, "only {observed} observations got through");
        assert!(metrics.median_of_median_relative_error() < 0.8);
    }

    #[test]
    fn total_loss_yields_only_probe_losses() {
        let workload = PlanetLabConfig::small(6)
            .with_seed(8)
            .with_link_config(LinkModelConfig::default().with_loss_probability(1.0));
        let sim_config = SimConfig::new(200.0, 5.0).with_measurement_start(10.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .run();
        let metrics = report.config("mp").unwrap();
        assert!(metrics.total_probes_lost() > 0);
        for node in &metrics.nodes {
            assert!(node.system_errors.is_empty(), "no observation can arrive");
            assert_eq!(node.observations, 0);
        }
    }

    #[test]
    fn crash_restart_restores_state_and_recovers() {
        let workload = PlanetLabConfig::small(10).with_seed(6);
        let sim_config = SimConfig::new(1_200.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4);
        let crashed = vec![0, 1];
        let scenario = Scenario::crash_restart(crashed.clone(), 600.0, 700.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(scenario)
        .run();
        let metrics = report.config("mp").unwrap();
        for &node in &crashed {
            let times: Vec<f64> = metrics.nodes[node]
                .system_errors
                .iter()
                .map(|(t, _)| *t)
                .collect();
            assert!(
                times.iter().any(|&t| t < 600.0),
                "node {node} observed before the crash"
            );
            assert!(
                !times.iter().any(|&t| (600.0..700.0).contains(&t)),
                "node {node} must be silent while down"
            );
            assert!(
                times.iter().any(|&t| t > 700.0),
                "node {node} resumed after the restart"
            );
        }
        // Probes of the dead nodes timed out and were reported.
        assert!(metrics.total_probes_lost() > 0);
    }

    #[test]
    fn graceful_leavers_stop_being_probed() {
        let workload = PlanetLabConfig::small(8).with_seed(2);
        let sim_config = SimConfig::new(600.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(3);
        let scenario = Scenario::new().at(300.0, ScenarioAction::Leave { nodes: vec![5] });
        let mut sim = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(scenario);
        let report = sim.run();
        let metrics = report.config("mp").unwrap();
        assert!(
            metrics.nodes[5]
                .system_errors
                .iter()
                .all(|(t, _)| *t <= 300.5),
            "a leaver stops observing"
        );
        // Nobody keeps it in their rotation.
        for (i, set) in sim.state.schedule.neighbor_sets.iter().enumerate() {
            if i != 5 {
                assert!(!set.contains(&5), "node {i} still probes the leaver");
            }
        }
        // Announced departure: no timeouts needed to learn it.
        assert_eq!(metrics.total_probes_lost(), 0);
    }

    #[test]
    fn flash_crowd_joiners_participate_after_joining() {
        let workload = PlanetLabConfig::small(12).with_seed(5);
        let sim_config = SimConfig::new(900.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4);
        let crowd = vec![9, 10, 11];
        let scenario = Scenario::flash_crowd(crowd.clone(), 300.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(scenario)
        .run();
        let metrics = report.config("mp").unwrap();
        for &node in &crowd {
            let times: Vec<f64> = metrics.nodes[node]
                .system_errors
                .iter()
                .map(|(t, _)| *t)
                .collect();
            assert!(
                times.iter().all(|&t| t >= 300.0),
                "down nodes observe nothing"
            );
            assert!(
                times.len() > 10,
                "joiner {node} embeds after joining ({} samples)",
                times.len()
            );
        }
    }

    #[test]
    fn partitions_drop_cross_group_probes_until_heal() {
        let workload = PlanetLabConfig::small(8).with_seed(12);
        let sim_config = SimConfig::new(700.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4);
        let scenario = Scenario::new().at(
            200.0,
            ScenarioAction::Partition {
                group: vec![0, 1, 2, 3],
                heal_at_s: 400.0,
            },
        );
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(scenario)
        .run();
        let metrics = report.config("mp").unwrap();
        assert!(
            metrics.total_probes_lost() > 0,
            "cross-partition probes must time out"
        );
        // After the heal, observations keep accruing for everyone.
        for node in &metrics.nodes {
            assert!(node.system_errors.iter().any(|(t, _)| *t > 450.0));
        }
    }

    #[test]
    fn scenarios_apply_identically_to_every_configuration() {
        // The schedule (who probes whom, when, what is lost) must not depend
        // on the coordinate stack: under churn, both configurations see the
        // same probe counts per node.
        let run = || {
            let workload = PlanetLabConfig::small(10)
                .with_seed(7)
                .with_link_config(LinkModelConfig::default().with_loss_probability(0.03));
            let sim_config = SimConfig::new(800.0, 5.0)
                .with_measurement_start(0.0)
                .with_initial_neighbors(4);
            Simulator::new(
                workload,
                sim_config,
                vec![
                    ("mp".into(), NodeConfig::paper_defaults()),
                    ("raw".into(), NodeConfig::original_vivaldi()),
                ],
            )
            .with_scenario(Scenario::crash_restart(vec![2, 3], 300.0, 450.0))
            .run()
        };
        let report = run();
        let mp = report.config("mp").unwrap();
        let raw = report.config("raw").unwrap();
        for (a, b) in mp.nodes.iter().zip(raw.nodes.iter()) {
            assert_eq!(a.observations, b.observations);
            assert_eq!(a.probes_lost, b.probes_lost);
        }
    }

    #[test]
    fn engine_eviction_removes_dead_peers_from_the_rotation() {
        // With eviction configured, a crashed node is dropped from every
        // survivor's shared rotation after `max_consecutive_losses` straight
        // timeouts — losses stop accruing instead of repeating forever.
        // Gossip is off so the evicted address cannot be re-learned.
        let workload = PlanetLabConfig::small(8).with_seed(3);
        let sim_config = SimConfig::new(900.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4)
            .with_gossip(false);
        let config = NodeConfig::builder().max_consecutive_losses(3).build();
        let scenario = Scenario::new().at(200.0, ScenarioAction::Crash { nodes: vec![5] });
        let mut sim = Simulator::new(workload, sim_config, vec![("mp".into(), config)])
            .with_scenario(scenario);
        let report = sim.run();
        let metrics = report.config("mp").unwrap();
        assert!(metrics.total_probes_lost() > 0, "timeouts fired");
        for (node, set) in sim.state.schedule.neighbor_sets.iter().enumerate() {
            if node != 5 {
                assert!(
                    !set.contains(&5),
                    "node {node} still probes the evicted peer"
                );
                assert!(
                    metrics.nodes[node].probes_lost <= 3,
                    "node {node} lost {} probes — eviction should cap the streak at 3",
                    metrics.nodes[node].probes_lost
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "scenario references node")]
    fn scenario_node_indices_are_validated() {
        let _ = Simulator::new(
            PlanetLabConfig::small(4),
            SimConfig::new(100.0, 5.0),
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(Scenario::crash_restart(vec![9], 10.0, 20.0));
    }
}
